#!/usr/bin/env python3
"""Multi-app Amulet session with the Insight #3 debugging tools.

Installs three apps in one firmware image -- the SIFT detector (Reduced
build), a pedometer on the internal accelerometer, and a heart-rate
display -- then drives a monitoring session with the debug tracer and
display recorder attached.  Shows what the paper's authors were missing:
a desktop simulator where you can see every dispatch, every cycle, and
every frame the screen ever drew, without re-flashing hardware.

Run:  python examples/multi_app_debugging.py
"""

import numpy as np

from repro.amulet import (
    Accelerometer,
    AmuletOS,
    DebugTracer,
    DisplayRecorder,
    FirmwareToolchain,
    render_memory_map,
)
from repro.apps import HeartRateApp, PedometerApp
from repro.attacks import AttackScenario, ReplacementAttack
from repro.core import SIFTDetector
from repro.signals import SyntheticFantasia
from repro.sift_app import DeviceWindow, SIFTDetectorApp
from repro.sift_app.harness import deploy_model


def main() -> None:
    data = SyntheticFantasia()
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]

    detector = SIFTDetector(version="reduced")
    detector.fit(
        data.training_record(victim, duration=360.0),
        [data.record(s, 120.0, "train") for s in others[:3]],
    )

    sift = SIFTDetectorApp(detector.version, deploy_model(detector))
    pedometer = PedometerApp()
    heart_rate = HeartRateApp()
    image = FirmwareToolchain().build([sift, pedometer, heart_rate])
    print(render_memory_map(image))

    os = AmuletOS(image)
    tracer = DebugTracer(os)
    recorder = DisplayRecorder(os)

    # A one-minute session; the ECG stream is hijacked halfway through.
    test = data.test_record(victim, duration=60.0)
    attack = ReplacementAttack([data.record(s, 60.0, "test") for s in others[3:5]])
    stream = AttackScenario(attack, altered_fraction=0.5).build(
        test, np.random.default_rng(2)
    )
    accel = Accelerometer(cadence_hz=1.9)
    rng = np.random.default_rng(3)
    for i, window in enumerate(stream.windows):
        payload = DeviceWindow.from_signal_window(window)
        os.deliver_sensor_window(sift.name, payload)
        os.deliver_sensor_window(heart_rate.name, payload)
        os.deliver_sensor_window(pedometer.name, accel.sample(3.0 * i, 3.0, rng))
    os.run_until_idle()

    print(f"\nsession: {sift.windows_processed} windows classified, "
          f"{sum(sift.predictions)} alerts | {pedometer.steps} steps | "
          f"HR {heart_rate.heart_rate_bpm:.0f} bpm")

    print("\n--- debug trace (last 6 dispatches) ---")
    print(tracer.format_trace(last=6))

    print("\n--- where the cycles went ---")
    for signal, cycles in sorted(
        tracer.cycles_by_signal().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {signal:12s} {cycles / 1e6:8.2f} M cycles")
    hottest = tracer.hottest_dispatches(1)[0]
    print(f"  hottest dispatch: #{hottest.sequence} "
          f"({hottest.app_name}, {hottest.cycles} cycles)")

    print("\n--- per-app energy attribution ---")
    for app_name, cycles in sorted(
        os.ledger.cycles_by_app.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {app_name:14s} {cycles / 1e6:8.2f} M cycles")

    print(f"\n--- display history ({recorder.n_frames} frames recorded) ---")
    alerts = recorder.frames_containing("ALTERED")
    print(f"frames showing an ECG alert: {len(alerts)}")
    print("final screen:")
    for line in os.display.lines:
        if line:
            print(f"  | {line}")


if __name__ == "__main__":
    main()
