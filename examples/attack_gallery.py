#!/usr/bin/env python3
"""Attack gallery: SIFT against every class of sensor hijacking.

The paper defines sensor-hijacking broadly -- "attacks that prevent
sensors from accurately collecting or reporting their measurements" --
and lists four compromise avenues.  This example pits one trained
detector against four concrete attack behaviours and shows per-attack
detection rates, probing the "attack-agnostic" claim:

* replacement -- another person's ECG (the paper's evaluated attack);
* replay      -- the victim's own ECG, recorded earlier;
* interference -- EMI-style in-band sinusoidal injection (Ghost Talk);
* morphology  -- time-shift plus amplitude warp of the live signal.

Run:  python examples/attack_gallery.py
"""

import numpy as np

from repro.attacks import (
    AttackScenario,
    InterferenceInjectionAttack,
    MorphologyInjectionAttack,
    ReplacementAttack,
    ReplayAttack,
)
from repro.core import SIFTDetector
from repro.signals import SyntheticFantasia


def main() -> None:
    data = SyntheticFantasia()
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]

    detector = SIFTDetector(version="simplified")
    detector.fit(
        data.training_record(victim),
        [data.record(s, 120.0, "train") for s in others[:3]],
    )

    test_record = data.test_record(victim)
    attacks = {
        "replacement": ReplacementAttack(
            [data.record(s, 120.0, "test") for s in others[3:6]]
        ),
        "replay": ReplayAttack(data.record(victim, 120.0, "extra")),
        "interference (0.8 mV)": InterferenceInjectionAttack(amplitude=0.8),
        "interference (4 mV)": InterferenceInjectionAttack(amplitude=4.0),
        "morphology": MorphologyInjectionAttack(),
    }

    print(f"detector: simplified build trained for {victim.subject_id}\n")
    print(f"{'attack':22s} {'FP':>7s} {'FN':>7s} {'Acc':>8s} {'F1':>8s}")
    for name, attack in attacks.items():
        scenario = AttackScenario(attack, window_s=3.0, altered_fraction=0.5)
        stream = scenario.build(test_record, np.random.default_rng(1))
        report = detector.evaluate(stream)
        fp, fn, acc, f1 = report.as_percent_row()
        print(f"{name:22s} {fp:6.2f}% {fn:6.2f}% {acc:7.2f}% {f1:7.2f}%")

    print(
        "\nTwo honest findings the sweep surfaces:\n"
        "  * replay is hard -- the morphology is the victim's own, so only\n"
        "    the broken beat alignment with the live ABP gives it away;\n"
        "  * low-amplitude in-band interference is a blind spot: it leaves\n"
        "    QRS detection (and hence the portrait's peaks) intact, so a\n"
        "    detector trained only on replacement largely misses it until\n"
        "    the injected amplitude rivals the R wave."
    )


if __name__ == "__main__":
    main()
