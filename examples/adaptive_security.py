#!/usr/bin/env python3
"""Adaptive security: the paper's Insight #4, running.

The paper observes that flashing a single fixed SIFT version is
impractical and envisions a decision engine that "automatically adjust[s]
the security level by switching between different versions of one security
app based on the available resources".  This example builds that engine:

1. profile all three builds (accuracy + ARP resource profile);
2. detect static constraints by pushing each build through the firmware
   toolchain;
3. simulate a full battery discharge under three policies and compare
   lifetime vs time-weighted detection accuracy.

Run:  python examples/adaptive_security.py
"""

import numpy as np

from repro.adaptive import (
    AccuracyFirstPolicy,
    DecisionEngine,
    LifetimeTargetPolicy,
    SocThresholdPolicy,
)
from repro.adaptive.policy import VersionProfile
from repro.attacks import AttackScenario, ReplacementAttack
from repro.core import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.signals import SyntheticFantasia
from repro.sift_app import AmuletSIFTRunner


def build_candidates() -> dict[DetectorVersion, VersionProfile]:
    """Measure accuracy and resources for every build."""
    data = SyntheticFantasia()
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]
    training_record = data.training_record(victim)
    train_donors = [data.record(s, 120.0, "train") for s in others[:3]]
    test_record = data.test_record(victim)
    attack = ReplacementAttack([data.record(s, 120.0, "test") for s in others[3:6]])
    stream = AttackScenario(attack).build(test_record, np.random.default_rng(42))

    candidates = {}
    for version in DetectorVersion:
        detector = SIFTDetector(version=version).fit(training_record, train_donors)
        runner = AmuletSIFTRunner(detector)
        result = runner.run_stream(stream)
        candidates[version] = VersionProfile(
            version=version,
            accuracy=result.report.accuracy,
            profile=runner.profile(period_s=3.0),
        )
        print(f"  {version.value:10s} accuracy {100 * result.report.accuracy:5.1f}%  "
              f"{candidates[version].average_current_ma:.4f} mA  "
              f"{candidates[version].profile.lifetime_days:.0f} days standalone")
    return candidates


def main() -> None:
    print("profiling the three builds...")
    candidates = build_candidates()

    policies = {
        "accuracy-first (static best)": AccuracyFirstPolicy(),
        "SoC thresholds (50% / 20%)": SocThresholdPolicy(),
        "lifetime target (30 days)": LifetimeTargetPolicy(),
    }
    print("\npolicy comparison over one battery discharge:")
    for name, policy in policies.items():
        engine = DecisionEngine(candidates, policy)
        timeline = engine.simulate_deployment(
            step_h=6.0,
            hours_needed=30 * 24.0 if "lifetime" in name else 0.0,
        )
        versions = " -> ".join(v.value for v in timeline.versions_used())
        print(f"  {name:30s} lifetime {timeline.lifetime_days:5.1f} days | "
              f"avg accuracy {100 * timeline.time_weighted_accuracy:5.2f}% | "
              f"{timeline.n_switches} switches | {versions}")

    print("\ntimeline of the SoC-threshold policy:")
    engine = DecisionEngine(candidates, SocThresholdPolicy())
    timeline = engine.simulate_deployment(step_h=24.0)
    for point in timeline.points[::4]:
        print(f"  day {point.time_h / 24:5.1f}  soc {100 * point.battery_soc:5.1f}%  "
              f"running {point.version.value}")


if __name__ == "__main__":
    main()
