#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Runs the full 12-subject protocol (Table II), the resource profiling
(Table III) and the ARP-view snapshot (Fig. 3), printing each next to the
paper's reported values.  Expect a few minutes of runtime; pass --quick
for a reduced cohort.

Run:  python examples/reproduce_tables.py [--quick]
"""

import argparse
import time

from repro.core.versions import DetectorVersion
from repro.experiments import (
    ExperimentConfig,
    format_fig3,
    format_table2,
    format_table3,
    run_fig3,
    run_table2,
    run_table3,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="reduced cohort for a fast pass"
    )
    args = parser.parse_args()
    config = ExperimentConfig.quick() if args.quick else ExperimentConfig()

    start = time.time()
    print(format_table2(run_table2(config)))
    print(f"\n[Table II regenerated in {time.time() - start:.0f} s]\n")

    start = time.time()
    result3 = run_table3(config)
    print(format_table3(result3))
    reduction = result3.lifetime_ratio(
        DetectorVersion.ORIGINAL, DetectorVersion.REDUCED
    )
    print(f"\nReduced outlasts Original by {reduction:.1f}x "
          f"(paper: {55 / 23:.1f}x)")
    print(f"[Table III regenerated in {time.time() - start:.0f} s]\n")

    start = time.time()
    print(format_fig3(run_fig3(config)))
    print(f"\n[Fig. 3 regenerated in {time.time() - start:.0f} s]")


if __name__ == "__main__":
    main()
