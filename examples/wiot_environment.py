#!/usr/bin/env python3
"""A live WIoT environment under attack (paper Fig. 1).

Wires the full three-tier architecture: body sensors stream ECG and ABP
packets over a lossy wireless channel to the Amulet base station, which
assembles windows, runs the SIFT app, raises alerts, and forwards verdicts
to the resource-rich sink.  Halfway through the session the ECG sensor is
hijacked (firmware-implant style) and starts replaying a *different
person's* ECG; the run shows how quickly the base station notices.

Run:  python examples/wiot_environment.py
"""

import numpy as np

from repro.attacks import ReplacementAttack
from repro.core import SIFTDetector
from repro.signals import SyntheticFantasia
from repro.wiot import WIoTEnvironment, WirelessChannel


def main() -> None:
    data = SyntheticFantasia()
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]

    print("training the base station's user-specific model...")
    detector = SIFTDetector(version="simplified")
    detector.fit(
        data.training_record(victim),
        [data.record(s, 120.0, "train") for s in others[:3]],
    )

    # A 3-minute monitoring session; the compromise activates at t = 90 s.
    session = data.record(victim, duration=180.0, purpose="test")
    attack = ReplacementAttack(
        [data.record(s, 180.0, "test") for s in others[3:6]]
    )
    environment = WIoTEnvironment(
        detector,
        channel=WirelessChannel(loss_probability=0.02, seed=7),
    )
    summary = environment.run(
        session,
        attack=attack,
        attack_after_s=90.0,
        rng=np.random.default_rng(1),
    )

    print(f"\nwindows sent:       {summary.n_windows_sent}")
    print(f"windows classified: {summary.n_windows_classified} "
          f"(channel delivery rate {100 * summary.channel_delivery_rate:.1f}%, "
          f"{summary.n_windows_lost} windows lost a half)")
    print(f"attack active from: t = {summary.attack_active_after_s:.0f} s")
    print(f"alerts raised:      {summary.alert_count}")
    if summary.first_alert_time_s is not None:
        print(f"first alert at:     t = {summary.first_alert_time_s:.0f} s "
              f"(detection latency {summary.detection_latency_s:.0f} s)")
    if summary.report is not None:
        fp, fn, acc, f1 = summary.report.as_percent_row()
        print(f"session metrics:    FP {fp:.1f}%  FN {fn:.1f}%  "
              f"Acc {acc:.1f}%  F1 {f1:.1f}%")

    sink = environment.sink
    print(f"\nsink stored {sink.n_stored} verdicts; "
          f"alert fraction {100 * sink.alert_fraction:.1f}%")
    print("alerts in the attacked half:",
          len(sink.alerts_between(90.0, 180.0)))
    print("base station display:")
    for line in environment.base_station.os.display.lines:
        if line:
            print(f"  | {line}")


if __name__ == "__main__":
    main()
