#!/usr/bin/env python3
"""Deploy all three detector versions on the simulated Amulet.

Reproduces the paper's deployment story (Section III/IV): the same trained
model family is built into three firmware images -- Original (libm,
double precision), Simplified (no libm, single precision, fixed-point
classifier) and Reduced (geometric features only) -- each is streamed the
same evaluation windows, and the Amulet Resource Profiler reports the
memory layout, the energy breakdown and the projected battery lifetime.

Also prints the auto-generated C source of the fixed-point MLClassifier
decision function ("we then translate the prediction function of the
trained model into C code").

Run:  python examples/amulet_deployment.py
"""

import numpy as np

from repro.attacks import AttackScenario, ReplacementAttack
from repro.core import SIFTDetector
from repro.signals import SyntheticFantasia
from repro.sift_app import AmuletSIFTRunner


def main() -> None:
    data = SyntheticFantasia()
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]
    training_record = data.training_record(victim)
    train_donors = [data.record(s, 120.0, "train") for s in others[:3]]
    test_record = data.test_record(victim)
    attack = ReplacementAttack([data.record(s, 120.0, "test") for s in others[3:6]])
    stream = AttackScenario(attack).build(test_record, np.random.default_rng(42))

    for version in ("original", "simplified", "reduced"):
        detector = SIFTDetector(version=version).fit(training_record, train_donors)
        runner = AmuletSIFTRunner(detector)
        result = runner.run_stream(stream)
        profile = runner.profile(period_s=3.0)

        image = runner.image
        print(f"=== {version.upper()} build "
              f"({'libm linked' if image.links_libm else 'no libm'}) ===")
        print(f"  firmware: {image.total_fram_bytes / 1024:.2f} KB FRAM "
              f"({profile.system_fram_kb:.2f} system + "
              f"{profile.app_fram_kb:.2f} detector), "
              f"{image.total_sram_bytes} B SRAM peak")
        ref = detector.evaluate(stream)
        print(f"  accuracy: device {100 * result.report.accuracy:.2f}%  "
              f"reference {100 * ref.accuracy:.2f}%")
        print(f"  compute:  {profile.cycles_per_event / 1e6:.2f} M cycles "
              f"per 3 s window -> {profile.average_current_ma:.4f} mA avg "
              f"-> {profile.lifetime_days:.0f} days on 110 mAh")
        top = sorted(profile.current_breakdown.items(),
                     key=lambda item: item[1], reverse=True)[:3]
        consumers = ", ".join(f"{name} {current * 1e3:.1f} uA"
                              for name, current in top)
        print(f"  top consumers: {consumers}")
        print(f"  display now shows: {runner.os.display.lines[-1]!r}\n")

    # The deployment artifact: the generated C decision function.
    detector = SIFTDetector(version="simplified").fit(training_record, train_donors)
    print("=== generated MLClassifier C source (simplified build) ===")
    print(detector.deploy(frac_bits=14).to_c_source())


if __name__ == "__main__":
    main()
