#!/usr/bin/env python3
"""Quickstart: train SIFT for one wearer, hijack their ECG, catch it.

Covers the paper's Fig. 2 pipeline end to end on the reference
implementation:

1. generate a synthetic cohort (the stand-in for PhysioBank Fantasia);
2. train a user-specific detector on 20 minutes of the wearer's
   synchronized ECG + ABP, with other subjects' ECG as the positive class;
3. build the 2-minute, 50 %-altered evaluation stream from unseen data;
4. classify every 3-second window and report the paper's metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import AttackScenario, ReplacementAttack
from repro.core import SIFTDetector
from repro.signals import SyntheticFantasia


def main() -> None:
    # 1. The cohort: 12 synthetic subjects, half young / half elderly.
    data = SyntheticFantasia(n_subjects=12, seed=2017)
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]
    print(f"wearer: {victim.subject_id} (age {victim.age}, "
          f"{victim.mean_hr:.0f} bpm)")

    # 2. Offline training ("need not be done on amulet platform itself").
    detector = SIFTDetector(version="simplified", window_s=3.0, grid_n=50)
    training_record = data.training_record(victim)          # Delta = 20 min
    train_donors = [data.record(s, 120.0, "train") for s in others[:3]]
    detector.fit(training_record, train_donors)
    print(f"trained a {detector.version.value} detector: "
          f"{detector.extractor.n_features} features, "
          f"{len(detector.svc.dual_coef_)} support vectors")

    # 3. The attack: about half the unseen stream replaced with other
    #    subjects' ECG, at random locations.
    test_record = data.test_record(victim)                   # 2 min, unseen
    attack = ReplacementAttack([data.record(s, 120.0, "test") for s in others[3:6]])
    stream = AttackScenario(attack, window_s=3.0, altered_fraction=0.5).build(
        test_record, np.random.default_rng(42)
    )
    print(f"evaluation stream: {len(stream)} windows, "
          f"{stream.n_altered} altered")

    # 4. Detection.
    predictions, alerts = detector.inspect_stream(stream)
    report = detector.evaluate(stream)
    fp, fn, acc, f1 = report.as_percent_row()
    print(f"\nalerts raised: {len(alerts)}")
    for alert in list(alerts)[:5]:
        print(f"  t={alert.time_s:5.1f}s  decision={alert.decision_value:+.2f}")
    print(f"\nFP rate {fp:.2f}%   FN rate {fn:.2f}%   "
          f"accuracy {acc:.2f}%   F1 {f1:.2f}%")
    print("(paper, simplified version on MATLAB: "
          "FP 5.00%  FN 12.88%  Acc 91.06%  F1 90.28%)")


if __name__ == "__main__":
    main()
