"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (which require ``bdist_wheel``) fail.  This shim lets
``pip install -e . --no-use-pep517`` take the legacy ``setup.py develop``
path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
