"""Engine plumbing: registry, pragmas, module inference, baseline workflow."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import Analyzer, Baseline, all_rules, fingerprint
from repro.analysis.engine import module_name_for_path
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import LintContext, rules_for_codes

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


class TestRegistry:
    def test_all_rules_sorted_and_complete(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert {"DEV001", "DEV002", "DET001", "OVF001"} <= set(codes)

    def test_rules_for_codes_selects(self):
        rules = rules_for_codes(["DET001"])
        assert [rule.code for rule in rules] == ["DET001"]

    def test_family_prefix_expands(self):
        rules = rules_for_codes(["ASYNC"])
        assert [rule.code for rule in rules] == ["ASYNC001", "ASYNC002"]

    def test_prefix_and_member_deduplicate(self):
        rules = rules_for_codes(["ASYNC", "ASYNC001"])
        assert [rule.code for rule in rules] == ["ASYNC001", "ASYNC002"]

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            rules_for_codes(["NOPE999"])

    def test_unknown_prefix_rejected(self):
        with pytest.raises(KeyError):
            rules_for_codes(["ASY"])  # not a full family name

    def test_every_rule_is_documented(self):
        """CI's doc gate: an undocumented rule code fails this test."""
        repo = SRC_ROOT.parent
        docs = (
            (repo / "docs" / "ARCHITECTURE.md").read_text()
            + (repo / "README.md").read_text()
        )
        undocumented = [
            rule.code for rule in all_rules() if rule.code not in docs
        ]
        assert undocumented == []


class TestModuleInference:
    def test_package_file(self):
        path = SRC_ROOT / "repro" / "ml" / "model_codegen.py"
        assert module_name_for_path(path) == "repro.ml.model_codegen"

    def test_package_init(self):
        path = SRC_ROOT / "repro" / "amulet" / "__init__.py"
        assert module_name_for_path(path) == "repro.amulet"

    def test_loose_file(self, tmp_path):
        loose = tmp_path / "scratch.py"
        loose.write_text("x = 1\n")
        assert module_name_for_path(loose) is None


class TestPragmas:
    def test_suppression_is_per_code(self):
        context = LintContext.from_source(
            "import math\n"
            "y = math.sqrt(2)  # lint: allow DET001 -- wrong code\n",
            path="<t>",
            module="repro.sift_app.fixture",
        )
        assert context.is_suppressed(2, "DET001")
        assert not context.is_suppressed(2, "DEV001")

    def test_multiple_codes(self):
        context = LintContext.from_source(
            "x = 1  # lint: allow DEV001, DET001 -- both\n", path="<t>"
        )
        assert context.is_suppressed(1, "DEV001")
        assert context.is_suppressed(1, "DET001")

    def test_pragma_covers_multiline_statement(self):
        context = LintContext.from_source(
            textwrap.dedent(
                """
                value = compute(  # lint: allow DET001 -- spans the call
                    1,
                    2,
                )
                after = 1
                """
            ),
            path="<t>",
        )
        for line in (2, 3, 4, 5):
            assert context.is_suppressed(line, "DET001")
        assert not context.is_suppressed(6, "DET001")

    def test_pragma_covers_decorated_async_def_header(self):
        context = LintContext.from_source(
            textwrap.dedent(
                """
                @decorator  # lint: allow ASYNC001 -- header pragma
                async def serve(
                    wearer,
                ):
                    body = 1
                """
            ),
            path="<t>",
        )
        # The decorator pragma blankets the whole header...
        for line in (2, 3, 4, 5):
            assert context.is_suppressed(line, "ASYNC001")
        # ...but never leaks into the body.
        assert not context.is_suppressed(6, "ASYNC001")


class TestLintFile:
    def test_syntax_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = Analyzer().lint_file(bad)
        assert [f.code for f in findings] == ["SYN000"]
        assert findings[0].severity is Severity.ERROR

    def test_lint_paths_recurses(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "clean.py").write_text("x = 1\n")
        (package / "noisy.py").write_text(
            "import random\nJITTER = random.random()\n"
        )
        findings = Analyzer().lint_paths([tmp_path])
        assert [f.code for f in findings] == ["DET001"]


class TestFinding:
    def test_render_format(self):
        finding = Finding(
            path="src/x.py", line=3, col=4, code="DEV001",
            message="no", severity=Severity.ERROR, source_line="math.sqrt(2)",
        )
        assert finding.render() == "src/x.py:3:5: DEV001 error: no"

    def test_ordering_by_location(self):
        a = Finding(path="a.py", line=1, col=0, code="DET001", message="m")
        b = Finding(path="a.py", line=2, col=0, code="DET001", message="m")
        assert a < b

    def test_as_dict_round_trips_fields(self):
        finding = Finding(
            path="p.py", line=1, col=0, code="OVF001",
            message="m", severity=Severity.WARNING,
        )
        data = finding.as_dict()
        assert data["code"] == "OVF001"
        assert data["severity"] == "warning"


class TestBaseline:
    def _finding(self, line, source_line="np.random.seed(0)"):
        return Finding(
            path="tests/fixture.py", line=line, col=0, code="DET001",
            message="unseeded", severity=Severity.ERROR,
            source_line=source_line,
        )

    def test_fingerprint_ignores_line_number(self):
        assert fingerprint(self._finding(3)) == fingerprint(self._finding(99))

    def test_fingerprint_sees_content(self):
        assert fingerprint(self._finding(3)) != fingerprint(
            self._finding(3, source_line="np.random.seed(1)")
        )

    def test_filter_new_absorbs_once(self):
        baseline = Baseline.from_findings([self._finding(3)])
        # Two identical findings against a one-slot baseline: one is new.
        fresh = baseline.filter_new([self._finding(3), self._finding(80)])
        assert len(fresh) == 1

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline.from_findings([self._finding(3), self._finding(4)])
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == 2
        assert loaded.filter_new([self._finding(1)]) == []

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": {}}')
        with pytest.raises(ValueError):
            Baseline.load(path)


class TestRepoIsClean:
    """The acceptance gate: the shipped tree lints clean with all rules."""

    def test_src_repro_has_no_findings(self):
        findings = Analyzer().lint_paths([SRC_ROOT / "repro"])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestPlantedViolations:
    """End-to-end: one fixture tree with one violation per rule family."""

    def test_each_rule_fires_with_its_own_code(self, tmp_path):
        package = tmp_path / "repro" / "sift_app"
        package.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "planted.py").write_text(
            textwrap.dedent(
                """
                import math
                import random

                from repro.ml.model_codegen import FixedPointLinearModel

                JITTER = random.random()

                def device_extract_simplified(m, window):
                    return math.sqrt(window[0])

                MODEL = FixedPointLinearModel(
                    weights_q=[2000000000, 2000000000], bias_q=100, frac_bits=2
                )
                """
            )
        )
        findings = Analyzer().lint_paths([tmp_path])
        assert sorted(f.code for f in findings) == ["DET001", "DEV001", "OVF001"]
