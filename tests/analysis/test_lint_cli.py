"""The ``python -m repro lint`` surface: flags, formats, exit codes."""

import json
import subprocess
import textwrap

import pytest

from repro.cli import build_parser, main

CLEAN = "x = 1\n"

NOISY = textwrap.dedent(
    """
    import random

    JITTER = random.random()
    """
)


def write_fixture(tmp_path, source, name="fixture.py"):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert args.format == "text"
        assert args.baseline is None

    def test_format_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "xml"])


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write_fixture(tmp_path, CLEAN)
        assert main(["lint", str(path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_rendering(self, tmp_path, capsys):
        path = write_fixture(tmp_path, NOISY)
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "random.random()" in out

    def test_json_format(self, tmp_path, capsys):
        path = write_fixture(tmp_path, NOISY)
        assert main(["lint", str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["count"] == 1
        assert payload["findings"][0]["code"] == "DET001"

    def test_rule_selection(self, tmp_path):
        path = write_fixture(tmp_path, NOISY)
        assert main(["lint", str(path), "--rules", "DEV001"]) == 0
        assert main(["lint", str(path), "--rules", "DET001"]) == 1

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        path = write_fixture(tmp_path, CLEAN)
        assert main(["lint", str(path), "--rules", "NOPE999"]) == 2
        assert "NOPE999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_rule_family_prefix(self, tmp_path):
        racy = write_fixture(
            tmp_path,
            textwrap.dedent(
                """
                import time

                async def serve():
                    time.sleep(0.1)
                """
            ),
        )
        assert main(["lint", str(racy), "--rules", "ASYNC"]) == 1
        assert main(["lint", str(racy), "--rules", "PROC,SHM,RACE"]) == 0

    def test_unreadable_source_is_io_error(self, tmp_path, capsys):
        bad = tmp_path / "mojibake.py"
        bad.write_bytes(b"x = 1\n\xff\xfe broken\n")
        assert main(["lint", str(bad)]) == 2
        assert "cannot read source" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "DEV001", "DEV002", "DET001", "OVF001",
            "ASYNC001", "ASYNC002", "PROC001", "SHM001", "RACE001",
        ):
            assert code in out

    def test_default_target_is_package_and_clean(self, capsys):
        """The CI gate: no paths means lint the installed repro tree."""
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0


class TestChangedOnly:
    @staticmethod
    def _git(tmp_path, *argv):
        subprocess.run(
            ["git", "-c", "user.name=t", "-c", "user.email=t@t", *argv],
            cwd=tmp_path,
            check=True,
            capture_output=True,
        )

    @pytest.fixture()
    def repo(self, tmp_path, monkeypatch):
        self._git(tmp_path, "init", "-q")
        committed = write_fixture(tmp_path, NOISY, name="committed.py")
        self._git(tmp_path, "add", "committed.py")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path, committed

    def test_untracked_file_is_linted(self, repo):
        tmp_path, _ = repo
        write_fixture(tmp_path, NOISY, name="fresh.py")
        assert main(["lint", str(tmp_path), "--changed-only"]) == 1

    def test_committed_unchanged_file_is_skipped(self, repo, capsys):
        tmp_path, _ = repo
        # committed.py has a violation, but it did not change vs HEAD.
        assert main(["lint", str(tmp_path), "--changed-only"]) == 0
        assert "0 path(s)" in capsys.readouterr().out

    def test_modified_file_is_linted(self, repo):
        tmp_path, committed = repo
        committed.write_text(NOISY + "SALT = random.random()\n")
        assert main(["lint", str(tmp_path), "--changed-only", "HEAD"]) == 1

    def test_outside_git_is_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        path = write_fixture(tmp_path, CLEAN)
        assert main(["lint", str(path), "--changed-only"]) == 2
        assert "git failed" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_filter(self, tmp_path, capsys):
        noisy = write_fixture(tmp_path, NOISY)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", str(noisy), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert "wrote baseline with 1 finding(s)" in capsys.readouterr().out

        # Grandfathered: the same violation no longer fails the gate.
        assert main(["lint", str(noisy), "--baseline", str(baseline)]) == 0
        assert "(1 baselined)" in capsys.readouterr().out

        # A *new* violation alongside it still fails.
        noisy.write_text(NOISY + "SALT = random.random()\n")
        assert main(["lint", str(noisy), "--baseline", str(baseline)]) == 1

    def test_write_baseline_requires_file(self, tmp_path, capsys):
        path = write_fixture(tmp_path, NOISY)
        assert main(["lint", str(path), "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err


class TestCheckC:
    def test_clean_c_passes(self, tmp_path, capsys):
        clean_py = write_fixture(tmp_path, CLEAN)
        c_file = tmp_path / "gen.c"
        c_file.write_text("int32_t acc = 0;\n")
        assert main(["lint", str(clean_py), "--check-c", str(c_file)]) == 0

    def test_bad_c_fails(self, tmp_path, capsys):
        clean_py = write_fixture(tmp_path, CLEAN)
        c_file = tmp_path / "gen.c"
        c_file.write_text("double score = sqrt(2.0);\n")
        assert main(["lint", str(clean_py), "--check-c", str(c_file)]) == 1
        out = capsys.readouterr().out
        assert "CGEN001" in out
        assert "CGEN002" in out


class TestExportGate:
    def test_export_output_is_contract_checked(self, tmp_path, capsys):
        stem = tmp_path / "model"
        assert main(["export", "--version", "reduced", "--out", str(stem)]) == 0
        assert "contract-checked" in capsys.readouterr().out
        # The written artifact round-trips through the standalone checker.
        clean_py = write_fixture(tmp_path, CLEAN)
        assert main(
            ["lint", str(clean_py), "--check-c", str(tmp_path / "model.c")]
        ) == 0
