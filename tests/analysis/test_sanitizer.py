"""The event-loop stall sanitizer: detection, nesting, and bounds."""

import asyncio
import asyncio.events
import time

import pytest

from repro.analysis import LoopStallError, LoopStallSanitizer


def spin_loop(coroutine):
    asyncio.run(coroutine)


class TestDetection:
    def test_blocking_callback_is_recorded(self):
        async def offender():
            time.sleep(0.05)  # lint: allow ASYNC001 -- planted stall

        with LoopStallSanitizer(threshold_s=0.02) as sanitizer:
            spin_loop(offender())

        assert sanitizer.total_stalls >= 1
        assert sanitizer.max_stall_s >= 0.05
        with pytest.raises(LoopStallError) as excinfo:
            sanitizer.check()
        message = str(excinfo.value)
        assert "stalled" in message
        assert "ms" in message

    def test_cooperative_loop_is_clean(self):
        async def polite():
            for _ in range(5):
                await asyncio.sleep(0)

        with LoopStallSanitizer(threshold_s=10.0) as sanitizer:
            spin_loop(polite())

        assert sanitizer.total_stalls == 0
        sanitizer.check()  # must not raise

    def test_max_records_bounds_memory_but_not_the_count(self):
        async def offender():
            for _ in range(3):
                time.sleep(0.02)  # lint: allow ASYNC001 -- planted stall
                await asyncio.sleep(0)

        with LoopStallSanitizer(threshold_s=0.01, max_records=1) as sanitizer:
            spin_loop(offender())

        assert len(sanitizer.stalls) == 1
        assert sanitizer.total_stalls >= 3


class TestInstallation:
    def test_uninstall_restores_pristine_handle_run(self):
        original = asyncio.events.Handle._run
        sanitizer = LoopStallSanitizer()
        sanitizer.install()
        assert asyncio.events.Handle._run is not original
        sanitizer.uninstall()
        assert asyncio.events.Handle._run is original

    def test_nested_installs_unwind_in_any_order(self):
        original = asyncio.events.Handle._run
        outer = LoopStallSanitizer(threshold_s=0.02)
        inner = LoopStallSanitizer(threshold_s=0.02)
        outer.install()
        inner.install()
        assert asyncio.events.Handle._run is not original

        async def offender():
            time.sleep(0.05)  # lint: allow ASYNC001 -- planted stall

        spin_loop(offender())
        outer.uninstall()
        assert asyncio.events.Handle._run is not original  # inner still live
        inner.uninstall()
        assert asyncio.events.Handle._run is original
        # Both saw the stall while both were installed.
        assert outer.total_stalls >= 1
        assert inner.total_stalls >= 1

    def test_install_is_idempotent_per_sanitizer(self):
        original = asyncio.events.Handle._run
        sanitizer = LoopStallSanitizer()
        sanitizer.install()
        sanitizer.install()
        sanitizer.uninstall()
        assert asyncio.events.Handle._run is original

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LoopStallSanitizer(threshold_s=0.0)
        with pytest.raises(ValueError):
            LoopStallSanitizer(max_records=0)
