"""DEV001 (libm gate) and DEV002 (fixed-point float ban) rule tests."""

import textwrap

from repro.analysis import Analyzer
from repro.analysis.device_rules import DeviceFloatBanRule, DeviceLibmRule


def lint(source, module):
    analyzer = Analyzer([DeviceLibmRule(), DeviceFloatBanRule()])
    return analyzer.lint_source(textwrap.dedent(source), module=module)


def codes(findings):
    return [finding.code for finding in findings]


class TestDev001Positive:
    def test_stdlib_math_call(self):
        findings = lint(
            """
            import math

            def device_extract_simplified(m, w):
                return math.sqrt(2.0)
            """,
            module="repro.sift_app.fixture",
        )
        assert codes(findings) == ["DEV001"]
        assert "math.sqrt" in findings[0].message

    def test_math_member_import(self):
        findings = lint(
            """
            from math import atan2 as arctangent

            def helper():
                return arctangent(1.0, 2.0)
            """,
            module="repro.amulet.fixture",
        )
        assert codes(findings) == ["DEV001"]

    def test_numpy_transcendental_attribute(self):
        findings = lint(
            """
            import numpy as np

            def helper(x):
                return np.exp(x) + np.arctan2(x, x)
            """,
            module="repro.sift_app.fixture",
        )
        assert codes(findings) == ["DEV001", "DEV001"]

    def test_numpy_member_import(self):
        findings = lint(
            """
            from numpy import sqrt

            def helper(x):
                return sqrt(x)
            """,
            module="repro.amulet.fixture",
        )
        assert codes(findings) == ["DEV001"]

    def test_gated_method_outside_original_tier(self):
        findings = lint(
            """
            def device_extract_reduced(m, w):
                return m.sqrt(w)
            """,
            module="repro.sift_app.fixture",
        )
        assert codes(findings) == ["DEV001"]
        assert "Original-tier" in findings[0].message


class TestDev001Allowances:
    def test_original_tier_may_use_gated_ops(self):
        findings = lint(
            """
            def device_extract_original(m, w):
                def nested(v):
                    return m.atan2(v, v)
                return m.sqrt(nested(w))
            """,
            module="repro.sift_app.fixture",
        )
        assert findings == []

    def test_non_device_modules_unconstrained(self):
        findings = lint(
            """
            import math
            import numpy as np

            def reference(x):
                return math.sqrt(x) + np.exp(x)
            """,
            module="repro.core.features.fixture",
        )
        assert findings == []

    def test_gate_module_exempt(self):
        findings = lint(
            """
            import numpy as np

            def sqrt_impl(a):
                return np.sqrt(a)
            """,
            module="repro.amulet.restricted",
        )
        assert findings == []

    def test_math_constants_are_data(self):
        findings = lint(
            """
            import math

            HALF_TURN = math.pi
            """,
            module="repro.sift_app.fixture",
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings = lint(
            """
            import numpy as np

            def stimulus(t):
                return np.exp(-t)  # lint: allow DEV001 -- physical model
            """,
            module="repro.amulet.fixture",
        )
        assert findings == []

    def test_nontranscendental_numpy_is_fine(self):
        findings = lint(
            """
            import numpy as np

            def helper(x):
                return np.maximum(np.asarray(x), 0.0)
            """,
            module="repro.sift_app.fixture",
        )
        assert findings == []


class TestDev002:
    def test_float_literal_cast_and_division(self):
        findings = lint(
            """
            def decision_fixed(self, q):
                acc = float(self.bias_q)
                acc = acc + 0.5
                acc = acc / 2
                return acc
            """,
            module="repro.ml.model_codegen",
        )
        assert codes(findings) == ["DEV002", "DEV002", "DEV002"]

    def test_float_dtype(self):
        findings = lint(
            """
            import numpy as np

            def fixed_mac(self, w, x):
                return np.asarray(w, dtype=np.float32) @ x
            """,
            module="repro.amulet.restricted",
        )
        assert codes(findings) == ["DEV002"]

    def test_integer_code_passes(self):
        findings = lint(
            """
            def decision_fixed(self, q):
                acc = int(self.bias_q)
                for w, x in zip(self.weights, q):
                    acc += (w * x) >> self.frac_bits
                return acc
            """,
            module="repro.ml.model_codegen",
        )
        assert findings == []

    def test_non_fixed_functions_unconstrained(self):
        findings = lint(
            """
            def dequantize(self, q):
                return q / self.scale
            """,
            module="repro.ml.model_codegen",
        )
        assert findings == []

    def test_other_modules_unconstrained(self):
        findings = lint(
            """
            def decision_fixed(q):
                return q / 2.0
            """,
            module="repro.experiments.fixture",
        )
        assert findings == []


class TestRealModulesAreClean:
    def test_device_features_module(self):
        import repro.sift_app.device_features as mod
        from pathlib import Path

        analyzer = Analyzer([DeviceLibmRule(), DeviceFloatBanRule()])
        assert analyzer.lint_file(Path(mod.__file__)) == []

    def test_model_codegen_module(self):
        import repro.ml.model_codegen as mod
        from pathlib import Path

        analyzer = Analyzer([DeviceLibmRule(), DeviceFloatBanRule()])
        assert analyzer.lint_file(Path(mod.__file__)) == []
