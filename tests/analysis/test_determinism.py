"""DET001 determinism rule tests."""

import textwrap

from repro.analysis import Analyzer
from repro.analysis.determinism import DeterminismRule


def lint(source, module="repro.experiments.fixture"):
    analyzer = Analyzer([DeterminismRule()])
    return analyzer.lint_source(textwrap.dedent(source), module=module)


def codes(findings):
    return [finding.code for finding in findings]


class TestDet001Positive:
    def test_unseeded_default_rng(self):
        findings = lint(
            """
            import numpy as np

            def sample():
                return np.random.default_rng().normal()
            """
        )
        assert codes(findings) == ["DET001"]

    def test_none_seed(self):
        findings = lint(
            """
            import numpy as np

            rng = np.random.default_rng(None)
            """
        )
        assert codes(findings) == ["DET001"]

    def test_time_derived_seed(self):
        findings = lint(
            """
            import time
            import numpy as np

            rng = np.random.default_rng(int(time.time()))
            """
        )
        assert codes(findings) == ["DET001"]

    def test_legacy_global_numpy_random(self):
        findings = lint(
            """
            import numpy as np

            def noise(n):
                np.random.seed(0)
                return np.random.randn(n)
            """
        )
        assert codes(findings) == ["DET001", "DET001"]

    def test_module_level_stdlib_random(self):
        findings = lint(
            """
            import random

            JITTER = random.random()
            """
        )
        assert codes(findings) == ["DET001"]

    def test_unseeded_stdlib_random_instance(self):
        findings = lint(
            """
            import random

            rng = random.Random()
            """
        )
        assert codes(findings) == ["DET001"]


class TestDet001Negative:
    def test_seeded_default_rng(self):
        findings = lint(
            """
            import numpy as np

            def sample(seed):
                return np.random.default_rng(seed).normal()
            """
        )
        assert findings == []

    def test_literal_seed(self):
        findings = lint(
            """
            import numpy as np

            rng = np.random.default_rng(1234)
            """
        )
        assert findings == []

    def test_seeded_stdlib_random(self):
        findings = lint(
            """
            import random

            rng = random.Random(99)
            """
        )
        assert findings == []

    def test_pragma_suppression(self):
        findings = lint(
            """
            import numpy as np

            np.random.seed(0)  # lint: allow DET001 -- proves RNG isolation
            """
        )
        assert findings == []

    def test_non_random_calls_untouched(self):
        findings = lint(
            """
            import numpy as np

            def mean(x):
                return np.mean(np.asarray(x))
            """
        )
        assert findings == []
