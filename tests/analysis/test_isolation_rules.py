"""PROC001 (fork/pickle boundary), SHM001 (cleanup on all exit paths)
and RACE001 (cross-context writes to module state).

Each planted violation proves the detection fires; the negatives pin
the idioms the shipped subsystems rely on -- the dataplane's
helper-based cleanup and ``weakref.finalize`` registration, the
runner's module-level submit targets, the supervisor's pipe-carrying
``Process`` spawn -- so the rules stay silent on the real tree.
"""

import textwrap
from pathlib import Path

from repro.analysis import Analyzer
from repro.analysis.rules import rules_for_codes

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def lint(source, rules):
    analyzer = Analyzer(rules_for_codes(rules))
    return analyzer.lint_source(textwrap.dedent(source), path="<fixture>")


class TestForkBoundary:
    def test_lambda_closure_lock_and_handle(self):
        findings = lint(
            """
            import threading

            def work(x):
                return x

            def dispatch(pool):
                lock = threading.Lock()
                handle = open("f")

                def closure(x):
                    return x

                pool.submit(lambda v: v, 1)
                pool.submit(closure, 2)
                pool.submit(work, lock)
                pool.submit(work, handle)
            """,
            rules=["PROC001"],
        )
        assert [f.code for f in findings] == ["PROC001"] * 4
        messages = " | ".join(f.message for f in findings)
        assert "lambda" in messages
        assert "closure" in messages
        assert "Lock" in messages
        assert "open file handle" in messages

    def test_process_target_and_args(self):
        findings = lint(
            """
            import threading
            from multiprocessing import Process

            def dispatch():
                lock = threading.Lock()

                def closure():
                    pass

                Process(target=closure, args=(lock,))
            """,
            rules=["PROC001"],
        )
        assert [f.code for f in findings] == ["PROC001", "PROC001"]

    def test_shared_memory_handle_across_boundary(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def work(x):
                return x

            def dispatch(pool):
                shm = SharedMemory(name="seg")
                pool.submit(work, shm)
            """,
            rules=["PROC001"],
        )
        assert [f.code for f in findings] == ["PROC001"]
        assert "attach by name" in findings[0].message

    def test_module_function_and_plain_data_are_fine(self):
        findings = lint(
            """
            def work(x, y=0):
                return x + y

            def dispatch(pool, windows):
                pool.submit(work, windows, y=2)
                pool.submit(work, [1, 2, 3])
            """,
            rules=["PROC001"],
        )
        assert findings == []

    def test_shipped_runner_and_supervisor_are_clean(self):
        analyzer = Analyzer(rules_for_codes(["PROC001"]))
        findings = analyzer.lint_paths(
            [
                SRC_ROOT / "repro" / "experiments" / "runner.py",
                SRC_ROOT / "repro" / "gateway" / "supervisor.py",
            ]
        )
        assert findings == [], "\n".join(f.render() for f in findings)


class TestSharedResourceCleanup:
    def test_bare_create_is_flagged(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def publish():
                return SharedMemory(create=True, size=64)
            """,
            rules=["SHM001"],
        )
        assert [f.code for f in findings] == ["SHM001"]

    def test_orphan_tempfiles_are_flagged(self):
        findings = lint(
            """
            import tempfile

            def scratch():
                fd, path = tempfile.mkstemp()
                spool = tempfile.NamedTemporaryFile(delete=False)
                return path, spool
            """,
            rules=["SHM001"],
        )
        assert [f.code for f in findings] == ["SHM001", "SHM001"]

    def test_attach_without_create_is_fine(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name)
            """,
            rules=["SHM001"],
        )
        assert findings == []

    def test_try_finally_cleanup_is_evidence(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def publish(payload):
                shm = SharedMemory(create=True, size=64)
                try:
                    shm.buf[: len(payload)] = payload
                finally:
                    shm.close()
                    shm.unlink()
            """,
            rules=["SHM001"],
        )
        assert findings == []

    def test_except_reraise_through_module_helper_is_evidence(self):
        # The dataplane idiom: cleanup concentrated in one helper, the
        # creating function reraises after calling it.
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            def _cleanup_segment(shm):
                shm.close()
                shm.unlink()

            def publish(payload):
                shm = SharedMemory(create=True, size=64)
                try:
                    shm.buf[: len(payload)] = payload
                except BaseException:
                    _cleanup_segment(shm)
                    raise
                return shm
            """,
            rules=["SHM001"],
        )
        assert findings == []

    def test_weakref_finalize_is_evidence(self):
        findings = lint(
            """
            import weakref
            from multiprocessing.shared_memory import SharedMemory

            def _release(shm):
                shm.close()

            class Plane:
                def __init__(self):
                    self.shm = SharedMemory(create=True, size=64)
                    weakref.finalize(self, _release, self.shm)
            """,
            rules=["SHM001"],
        )
        assert findings == []

    def test_class_close_method_is_evidence(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            class Plane:
                def __init__(self):
                    self.shm = SharedMemory(create=True, size=64)

                def close(self):
                    self.shm.close()
                    self.shm.unlink()
            """,
            rules=["SHM001"],
        )
        assert findings == []

    def test_shipped_dataplane_and_snapshot_store_are_clean(self):
        analyzer = Analyzer(rules_for_codes(["SHM001"]))
        findings = analyzer.lint_paths(
            [
                SRC_ROOT / "repro" / "experiments" / "dataplane.py",
                SRC_ROOT / "repro" / "gateway" / "snapshot.py",
            ]
        )
        assert findings == [], "\n".join(f.render() for f in findings)


RACY = """
import asyncio
import threading

_CACHE = {}

def _worker():
    _CACHE["worker"] = 1

async def _serve():
    _CACHE["loop"] = 2

def main():
    threading.Thread(target=_worker).start()
    asyncio.run(_serve())
"""


class TestCrossContextRace:
    def test_async_plus_thread_writer_without_lock(self):
        findings = lint(RACY, rules=["RACE001"])
        assert [f.code for f in findings] == ["RACE001", "RACE001"]
        assert all("_CACHE" in f.message for f in findings)

    def test_child_entry_point_counts_as_worker(self):
        findings = lint(
            """
            _STATE = {}

            def _scorer_child_main(conn):
                _STATE["child"] = 1

            async def _serve():
                _STATE["loop"] = 2
            """,
            rules=["RACE001"],
        )
        assert [f.code for f in findings] == ["RACE001", "RACE001"]

    def test_lock_held_writes_are_fine(self):
        findings = lint(
            """
            import asyncio
            import threading

            _CACHE = {}
            _GUARD = threading.Lock()

            def _worker():
                with _GUARD:
                    _CACHE["worker"] = 1

            async def _serve():
                with _GUARD:
                    _CACHE["loop"] = 2

            def main():
                threading.Thread(target=_worker).start()
            """,
            rules=["RACE001"],
        )
        assert findings == []

    def test_single_context_writers_are_fine(self):
        findings = lint(
            """
            import threading

            _CACHE = {}

            def _worker():
                _CACHE["a"] = 1

            def _other_worker():
                _CACHE["b"] = 2

            async def _reader():
                return _CACHE.get("a")

            def main():
                threading.Thread(target=_worker).start()
                threading.Thread(target=_other_worker).start()
            """,
            rules=["RACE001"],
        )
        assert findings == []

    def test_single_writer_pragma_at_definition(self):
        source = RACY.replace(
            "_CACHE = {}",
            "_CACHE = {}  # lint: allow RACE001 -- single writer: the test",
        )
        assert lint(source, rules=["RACE001"]) == []

    def test_shipped_tree_is_clean(self):
        analyzer = Analyzer(rules_for_codes(["RACE001"]))
        findings = analyzer.lint_paths([SRC_ROOT / "repro"])
        assert findings == [], "\n".join(f.render() for f in findings)
