"""CGEN rules over C source, plus the to_c_source round-trip contract."""

import numpy as np
import pytest

from repro.amulet.restricted import LIBM_OPERATIONS
from repro.analysis.c_checker import (
    LIBM_C_FUNCTIONS,
    MAX_IDENTIFIER_LENGTH,
    check_c_source,
    tokenize_c,
)
from repro.core.versions import DetectorVersion
from repro.ml.model_codegen import FixedPointLinearModel


def codes(findings):
    return [finding.code for finding in findings]


class TestTokenizer:
    def test_comments_and_strings_blanked(self):
        tokens = tokenize_c(
            '/* double sqrt */\n'
            '// float too\n'
            'const char *s = "double trouble";\n'
        )
        texts = [t.text for t in tokens]
        assert "double" not in texts
        assert "sqrt" not in texts
        assert "float" not in texts

    def test_block_comment_preserves_lines(self):
        tokens = tokenize_c("/* one\n * two\n */\nint x;\n")
        assert tokens[0].text == "int"
        assert tokens[0].line == 4

    def test_positions(self):
        tokens = tokenize_c("int32_t acc = 0;\n")
        acc = next(t for t in tokens if t.text == "acc")
        assert (acc.line, acc.col) == (1, 8)


class TestCgenRules:
    def test_cgen001_double(self):
        findings = check_c_source("double score(int x) { return x * 0.5; }\n")
        assert "CGEN001" in codes(findings)

    def test_cgen001_float(self):
        findings = check_c_source("static float gain = 1.0f;\n")
        assert codes(findings) == ["CGEN001"]

    def test_cgen002_libm_call(self):
        findings = check_c_source("int32_t r = (int32_t)sqrt(v);\n")
        assert codes(findings) == ["CGEN002"]

    def test_cgen002_float_variant(self):
        findings = check_c_source("y = atan2f(a, b);\n")
        assert codes(findings) == ["CGEN002"]

    def test_cgen002_requires_call(self):
        # A bare identifier that happens to collide is not a call.
        findings = check_c_source("int exp = 3;\n")
        assert findings == []

    def test_cgen003_long_identifier(self):
        name = "a" * (MAX_IDENTIFIER_LENGTH + 1)
        findings = check_c_source(f"int {name} = 0;\n")
        assert codes(findings) == ["CGEN003"]
        assert name in findings[0].message

    def test_cgen003_boundary_ok(self):
        name = "a" * MAX_IDENTIFIER_LENGTH
        findings = check_c_source(f"int {name} = 0;\n")
        assert findings == []

    def test_cgen004_int64_storage(self):
        findings = check_c_source("int64_t wide_accumulator = 0;\n")
        assert codes(findings) == ["CGEN004"]

    def test_cgen004_long_long_storage(self):
        findings = check_c_source("long long product;\n")
        assert codes(findings) == ["CGEN004"]

    def test_cgen004_cast_allowed(self):
        findings = check_c_source(
            "acc += (int32_t)(((int64_t)w[i] * x[i]) >> 14);\n"
        )
        assert findings == []

    def test_findings_carry_location(self):
        findings = check_c_source("int x;\ndouble y;\n", path="gen.c")
        assert len(findings) == 1
        assert findings[0].path == "gen.c"
        assert findings[0].line == 2

    def test_gate_table_is_the_seed(self):
        # The canonical runtime allowlist and its f-variants must all be
        # rejected by the C checker -- single source of truth.
        for name in LIBM_OPERATIONS:
            assert name in LIBM_C_FUNCTIONS
            assert name + "f" in LIBM_C_FUNCTIONS


class TestToCSourceRoundTrip:
    """Generated C must pass the checker for every detector version."""

    @pytest.mark.parametrize("version", list(DetectorVersion))
    def test_generated_c_is_contract_clean(self, version):
        rng = np.random.default_rng(7)
        n = version.n_features
        model = FixedPointLinearModel(
            weights_q=rng.integers(-(1 << 20), 1 << 20, size=n).astype(np.int64),
            bias_q=int(rng.integers(-(1 << 20), 1 << 20)),
            frac_bits=14,
        )
        source = model.to_c_source()
        assert check_c_source(source) == []

    @pytest.mark.parametrize("frac_bits", [4, 14, 30])
    def test_all_formats_clean(self, frac_bits):
        model = FixedPointLinearModel(
            weights_q=np.array([-3, 5, 7], dtype=np.int64),
            bias_q=-11,
            frac_bits=frac_bits,
        )
        assert check_c_source(model.to_c_source()) == []

    def test_custom_function_name_checked(self):
        model = FixedPointLinearModel(
            weights_q=np.array([1], dtype=np.int64), bias_q=0, frac_bits=8
        )
        bad_name = "sift_classify_with_an_extremely_long_name"
        assert len(bad_name) > MAX_IDENTIFIER_LENGTH
        findings = check_c_source(model.to_c_source(bad_name))
        assert codes(findings) == ["CGEN003"]


class TestNativeProfile:
    """The 'native' profile: the gateway-side hot path runs on the host
    in double precision, so CGEN001 bans only 'float' and CGEN002
    allowlists sqrt; the identifier and 64-bit-storage rules carry over."""

    def test_double_allowed(self):
        assert check_c_source("double x = 0.0;", profile="native") == []

    def test_float_still_banned(self):
        findings = check_c_source("float x = 0.0f;", profile="native")
        assert codes(findings) == ["CGEN001"]

    def test_sqrt_allowed(self):
        assert check_c_source(
            "double y = sqrt(x);", profile="native"
        ) == []

    def test_other_libm_still_banned(self):
        findings = check_c_source("double y = atan2(a, b);", profile="native")
        assert codes(findings) == ["CGEN002"]

    def test_identifier_rule_carries_over(self):
        name = "a_truly_excessively_long_identifier_name"
        assert len(name) > MAX_IDENTIFIER_LENGTH
        findings = check_c_source(f"int {name};", profile="native")
        assert codes(findings) == ["CGEN003"]

    def test_wide_storage_rule_carries_over(self):
        findings = check_c_source("int64_t acc = 0;", profile="native")
        assert codes(findings) == ["CGEN004"]

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            check_c_source("int x;", profile="msp432")

    @pytest.mark.parametrize(
        "version", list(DetectorVersion), ids=lambda v: v.value
    )
    def test_generated_hot_path_is_clean(self, version):
        from repro.native.codegen import generate_hot_path_source

        n = version.n_features
        source = generate_hot_path_source(
            version,
            50,
            np.linspace(-1.0, 1.0, n),
            0.25,
            np.zeros(n),
            np.ones(n),
        )
        assert check_c_source(source, profile="native") == []

    def test_hot_path_fails_device_profile(self):
        """Sanity: the native C is *not* device C -- the device profile
        must reject it (doubles everywhere), so the two contracts cannot
        be confused."""
        from repro.native.codegen import generate_hot_path_source

        source = generate_hot_path_source(
            DetectorVersion.REDUCED,
            50,
            np.linspace(-1.0, 1.0, 5),
            0.25,
            np.zeros(5),
            np.ones(5),
        )
        findings = check_c_source(source)
        assert "CGEN001" in codes(findings)
