"""ASYNC001 (blocking on the loop) and ASYNC002 (task leaks).

Planted violations prove each detection fires; the negatives prove the
rules stay silent on the idioms the gateway actually uses (awaited
calls, ``asyncio.to_thread`` with the helper passed by reference, kept
task handles) -- and on the shipped gateway package itself.
"""

import textwrap
from pathlib import Path

from repro.analysis import Analyzer
from repro.analysis.rules import rules_for_codes

SRC_ROOT = Path(__file__).resolve().parents[2] / "src"


def lint(source, rules=("ASYNC001", "ASYNC002")):
    analyzer = Analyzer(rules_for_codes(rules))
    return analyzer.lint_source(textwrap.dedent(source), path="<fixture>")


class TestAsyncBlockingDirect:
    def test_time_sleep_in_coroutine(self):
        findings = lint(
            """
            import time

            async def serve():
                time.sleep(0.1)
            """
        )
        assert [f.code for f in findings] == ["ASYNC001"]
        assert "time.sleep" in findings[0].message

    def test_sleep_imported_by_name_and_aliased_module(self):
        findings = lint(
            """
            import time as clock
            from time import sleep as snooze

            async def serve():
                clock.sleep(0.1)
                snooze(0.1)
            """
        )
        assert [f.code for f in findings] == ["ASYNC001", "ASYNC001"]

    def test_fsync_open_pathio_subprocess_and_lock(self):
        findings = lint(
            """
            import os
            import subprocess
            import threading
            from pathlib import Path

            GUARD = threading.Lock()

            async def serve():
                os.fsync(3)
                open("x").read()
                Path("x").write_text("y")
                subprocess.run(["true"])
                GUARD.acquire()
            """
        )
        assert [f.code for f in findings] == ["ASYNC001"] * 5

    def test_shared_memory_construction(self):
        findings = lint(
            """
            from multiprocessing.shared_memory import SharedMemory

            async def attach():
                return SharedMemory(name="seg")
            """
        )
        assert [f.code for f in findings] == ["ASYNC001"]

    def test_snapshot_commit_points(self):
        findings = lint(
            """
            async def persist(gateway, store):
                store.write_epoch({}, [])
                store.compact()
            """
        )
        assert [f.code for f in findings] == ["ASYNC001", "ASYNC001"]

    def test_nested_async_def_is_checked(self):
        findings = lint(
            """
            import time

            def harness():
                async def inner():
                    time.sleep(0.1)
                return inner
            """
        )
        assert [f.code for f in findings] == ["ASYNC001"]


class TestAsyncBlockingReceiverTracking:
    def test_wrapped_helper_is_tracked(self):
        findings = lint(
            """
            import time

            def pause():
                time.sleep(1.0)

            def indirection():
                pause()

            async def serve():
                indirection()
            """
        )
        assert [f.code for f in findings] == ["ASYNC001"]
        assert "indirection()" in findings[0].message
        assert "time.sleep" in findings[0].message

    def test_self_method_chain_is_tracked(self):
        findings = lint(
            """
            import os

            class Store:
                def _commit(self):
                    os.fsync(3)

                def save(self):
                    self._commit()

                async def snapshot(self):
                    self.save()
            """
        )
        assert [f.code for f in findings] == ["ASYNC001"]


class TestAsyncBlockingNegatives:
    def test_awaited_calls_never_flag(self):
        findings = lint(
            """
            import asyncio

            async def serve(lock):
                await asyncio.sleep(0.1)
                await lock.acquire()
            """
        )
        assert findings == []

    def test_to_thread_by_reference_is_the_sanctioned_fix(self):
        findings = lint(
            """
            import asyncio
            import time

            def pause():
                time.sleep(1.0)

            async def serve(store):
                await asyncio.to_thread(pause)
                await asyncio.to_thread(store.write_epoch, {}, [])
            """
        )
        assert findings == []

    def test_blocking_in_sync_code_is_fine(self):
        findings = lint(
            """
            import time

            async def marker():
                pass

            def cli_entry():
                time.sleep(0.1)
            """
        )
        assert findings == []

    def test_nested_sync_def_inside_coroutine_not_flagged(self):
        # The inner def runs wherever it is *called* (e.g. shipped to a
        # thread); defining it on the loop blocks nothing.
        findings = lint(
            """
            import time

            async def serve():
                def for_the_thread():
                    time.sleep(1.0)
                return for_the_thread
            """
        )
        assert findings == []

    def test_shipped_gateway_package_is_clean(self):
        analyzer = Analyzer(rules_for_codes(["ASYNC"]))
        findings = analyzer.lint_paths([SRC_ROOT / "repro" / "gateway"])
        assert findings == [], "\n".join(f.render() for f in findings)


class TestTaskLeaks:
    def test_bare_coroutine_call(self):
        findings = lint(
            """
            async def work():
                pass

            def kick():
                work()
            """
        )
        assert [f.code for f in findings] == ["ASYNC002"]
        assert "neither awaited nor scheduled" in findings[0].message

    def test_bare_self_coroutine_call(self):
        findings = lint(
            """
            class Gateway:
                async def flush(self):
                    pass

                def shutdown(self):
                    self.flush()
            """
        )
        assert [f.code for f in findings] == ["ASYNC002"]

    def test_fire_and_forget_create_task(self):
        findings = lint(
            """
            import asyncio

            async def work():
                pass

            async def kick(loop):
                asyncio.create_task(work())
                loop.create_task(work())
                asyncio.ensure_future(work())
            """
        )
        assert [f.code for f in findings] == ["ASYNC002"] * 3

    def test_kept_and_awaited_tasks_are_fine(self):
        findings = lint(
            """
            import asyncio

            async def work():
                pass

            class Gateway:
                def start(self):
                    self._task = asyncio.get_running_loop().create_task(work())

            async def kick():
                task = asyncio.create_task(work())
                await task
                await work()
            """
        )
        assert findings == []

    def test_done_callback_chained_is_fine(self):
        findings = lint(
            """
            import asyncio

            async def work():
                pass

            def on_done(task):
                task.result()

            async def kick():
                asyncio.create_task(work()).add_done_callback(on_done)
            """
        )
        assert findings == []

    def test_calling_plain_function_is_fine(self):
        findings = lint(
            """
            async def marker():
                pass

            def helper():
                pass

            def kick():
                helper()
            """
        )
        assert findings == []
