"""OVF001 interval analysis: unit, AST-rule, and hypothesis property tests."""

import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import Analyzer, accumulator_interval, analyze_model, quantize_range
from repro.analysis.overflow import FixedPointOverflowRule, OverflowReport
from repro.ml.model_codegen import FixedPointLinearModel

INT32_MIN = -(2**31)
INT32_MAX = 2**31 - 1


class TestAccumulatorInterval:
    def test_tiny_model_is_safe(self):
        report = accumulator_interval(
            weights_q=[100, -200], bias_q=50, frac_bits=8,
            feature_bounds_q=[(-1000, 1000), (-1000, 1000)],
        )
        assert report.proven_safe
        assert report.lo <= report.hi
        assert report.worst_bits <= 32

    def test_saturating_model_detected(self):
        report = accumulator_interval(
            weights_q=[2_000_000_000, 2_000_000_000], bias_q=100, frac_bits=2,
            feature_bounds_q=[(INT32_MIN, INT32_MAX)] * 2,
        )
        assert report.saturation_reachable
        assert report.worst_bits > 32

    def test_transient_excursion_counts(self):
        # Prefix after feature 0 escapes int32; feature 1 pulls the final
        # sum back in range.  Per-step saturation means the clamp engages
        # mid-sum, so this must be flagged even though the final interval
        # fits.
        big = (INT32_MAX // 2) << 4
        report = accumulator_interval(
            weights_q=[16, -16], bias_q=0, frac_bits=4,
            feature_bounds_q=[(big, big), (big, big)],
        )
        assert report.lo == 0 and report.hi == 0
        assert report.saturation_reachable

    def test_bias_alone_can_overflow(self):
        report = accumulator_interval(
            weights_q=[], bias_q=INT32_MAX + 1, frac_bits=4, feature_bounds_q=[]
        )
        assert report.saturation_reachable

    def test_mismatched_bounds_rejected(self):
        with pytest.raises(ValueError):
            accumulator_interval([1, 2], 0, 4, [(0, 1)])

    def test_bad_frac_bits_rejected(self):
        with pytest.raises(ValueError):
            accumulator_interval([1], 0, 0, [(0, 1)])


class TestQuantizeRange:
    def test_brackets_np_round(self):
        frac = 10
        lo, hi = quantize_range(-3.37, 2.91, frac)
        scale = 1 << frac
        for x in np.linspace(-3.37, 2.91, 997):
            q = int(np.round(x * scale))
            assert lo <= q <= hi

    def test_saturates_to_int32(self):
        lo, hi = quantize_range(-1e12, 1e12, 20)
        assert (lo, hi) == (INT32_MIN, INT32_MAX)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            quantize_range(1.0, 0.0, 8)


class TestAnalyzeModel:
    def _model(self, weights, bias, frac_bits):
        return FixedPointLinearModel(
            weights_q=np.asarray(weights, dtype=np.int64),
            bias_q=int(bias),
            frac_bits=frac_bits,
        )

    def test_shared_range_broadcasts(self):
        model = self._model([1000, -2000, 1500], 250, 12)
        report = analyze_model(model, feature_ranges=(-4.0, 4.0))
        assert isinstance(report, OverflowReport)
        assert report.n_features == 3
        assert report.proven_safe

    def test_per_feature_ranges(self):
        model = self._model([1000, -2000], 250, 12)
        report = analyze_model(model, feature_ranges=[(-1.0, 1.0), (0.0, 8.0)])
        assert report.proven_safe

    def test_default_is_conservative(self):
        # With no declared range the analyzer assumes any int32 input, so
        # even modest weights can saturate.
        model = self._model([1 << 14, 1 << 14], 0, 14)
        report = analyze_model(model)
        assert report.saturation_reachable

    def test_wrong_range_count_rejected(self):
        model = self._model([1, 2], 0, 8)
        with pytest.raises(ValueError):
            analyze_model(model, feature_ranges=[(-1.0, 1.0)] * 3)


class TestOverflowAstRule:
    def lint(self, source):
        analyzer = Analyzer([FixedPointOverflowRule()])
        return analyzer.lint_source(
            textwrap.dedent(source), module="repro.experiments.fixture"
        )

    def test_planted_violation_detected(self):
        findings = self.lint(
            """
            from repro.ml.model_codegen import FixedPointLinearModel

            model = FixedPointLinearModel(
                weights_q=[2000000000, 2000000000], bias_q=100, frac_bits=2
            )
            """
        )
        assert [finding.code for finding in findings] == ["OVF001"]
        assert "saturate" in findings[0].message

    def test_declared_range_proves_safety(self):
        findings = self.lint(
            """
            from repro.ml.model_codegen import FixedPointLinearModel

            # ovf-range: -4.0..4.0
            model = FixedPointLinearModel(
                weights_q=[16384, -16384], bias_q=250, frac_bits=14
            )
            """
        )
        assert findings == []

    def test_declared_range_can_still_fail(self):
        findings = self.lint(
            """
            from repro.ml.model_codegen import FixedPointLinearModel

            # ovf-range: -100000.0..100000.0
            model = FixedPointLinearModel(
                weights_q=[2000000000], bias_q=0, frac_bits=4
            )
            """
        )
        assert [finding.code for finding in findings] == ["OVF001"]

    def test_np_array_wrapper_unwrapped(self):
        findings = self.lint(
            """
            import numpy as np
            from repro.ml.model_codegen import FixedPointLinearModel

            model = FixedPointLinearModel(
                weights_q=np.array([2000000000, 2000000000]),
                bias_q=100,
                frac_bits=2,
            )
            """
        )
        assert [finding.code for finding in findings] == ["OVF001"]

    def test_non_literal_construction_skipped(self):
        findings = self.lint(
            """
            from repro.ml.model_codegen import FixedPointLinearModel

            def build(weights, bias, frac):
                return FixedPointLinearModel(
                    weights_q=weights, bias_q=bias, frac_bits=frac
                )
            """
        )
        assert findings == []


@st.composite
def model_and_inputs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    frac = draw(st.integers(min_value=4, max_value=20))
    weights = draw(
        st.lists(
            st.integers(min_value=-(1 << 24), max_value=1 << 24),
            min_size=n, max_size=n,
        )
    )
    bias = draw(st.integers(min_value=-(1 << 28), max_value=1 << 28))
    lo = draw(st.floats(min_value=-64.0, max_value=63.0, allow_nan=False))
    width = draw(st.floats(min_value=0.0, max_value=32.0, allow_nan=False))
    hi = lo + width
    samples = draw(
        st.lists(
            st.lists(
                st.floats(min_value=lo, max_value=hi, allow_nan=False),
                min_size=n, max_size=n,
            ),
            min_size=1, max_size=8,
        )
    )
    return n, frac, weights, bias, (lo, hi), samples


class TestOverflowProperty:
    @settings(max_examples=200, deadline=None)
    @given(model_and_inputs())
    def test_analyzer_bound_dominates_runtime(self, case):
        """Soundness: the static interval contains every runtime prefix sum."""
        n, frac, weights, bias, (lo, hi), samples = case
        scale = 1 << frac
        bounds = [quantize_range(lo, hi, frac)] * n
        report = accumulator_interval(weights, bias, frac, bounds)

        # Track the prefix-wise envelope the analyzer promises.
        prefix_bounds = [(bias, bias)]
        plo = phi = bias
        for w, (flo, fhi) in zip(weights, bounds):
            products = (w * flo, w * fhi)
            plo += min(products) >> frac
            phi += max(products) >> frac
            prefix_bounds.append((plo, phi))
        assert (plo, phi) == (report.lo, report.hi)

        for raw in samples:
            # Replay decision_fixed's arithmetic without the saturation
            # clamp (the analysis characterizes the unsaturated sum).
            quantized = [
                max(INT32_MIN, min(INT32_MAX, int(np.round(x * scale))))
                for x in raw
            ]
            acc = bias
            for step, (w, q) in enumerate(zip(weights, quantized), start=1):
                acc += (w * q) >> frac
                step_lo, step_hi = prefix_bounds[step]
                assert step_lo <= acc <= step_hi
            assert report.lo <= acc <= report.hi
            if not (INT32_MIN <= acc <= INT32_MAX):
                assert report.saturation_reachable
