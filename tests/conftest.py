"""Shared fixtures: a small cohort and pre-trained detectors.

Expensive artifacts (recordings, trained models) are session-scoped; tests
must treat them as immutable.

Also hosts a SIGALRM-based per-test timeout (``--test-timeout``, default
180 s): the hardened-runner tests deliberately inject hangs and worker
crashes, and a bug there must fail the suite, not wedge it.  Implemented
in-tree because the execution environment has no pytest-timeout plugin.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.attacks import AttackScenario, ReplacementAttack
from repro.core import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.experiments import ExperimentConfig
from repro.signals import SyntheticFantasia


def pytest_addoption(parser):
    parser.addoption(
        "--test-timeout",
        type=float,
        default=180.0,
        metavar="S",
        help="per-test wall-clock limit in seconds (0 disables; "
        "default: 180)",
    )


def _timeout_supported() -> bool:
    # SIGALRM only exists on POSIX and only fires in the main thread;
    # anywhere else the guard silently disables itself.
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    limit = item.config.getoption("--test-timeout")
    if not limit or not _timeout_supported():
        return (yield)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the --test-timeout limit of {limit:g}s"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def dataset() -> SyntheticFantasia:
    return SyntheticFantasia(n_subjects=6, seed=2017)


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def victim(dataset):
    return dataset.subjects[0]


@pytest.fixture(scope="session")
def train_record(dataset, victim):
    """3 minutes of training data (fast stand-in for the paper's 20)."""
    return dataset.record(victim, 180.0, purpose="train")


@pytest.fixture(scope="session")
def train_donors(dataset, victim):
    others = [s for s in dataset.subjects if s is not victim]
    return [dataset.record(s, 60.0, purpose="train") for s in others[:3]]


@pytest.fixture(scope="session")
def test_record(dataset, victim):
    return dataset.record(victim, 60.0, purpose="test")


@pytest.fixture(scope="session")
def test_donor_records(dataset, victim):
    others = [s for s in dataset.subjects if s is not victim]
    return [dataset.record(s, 60.0, purpose="test") for s in others[3:5]]


@pytest.fixture(scope="session")
def trained_detectors(train_record, train_donors) -> dict[DetectorVersion, SIFTDetector]:
    """One fitted detector per version, trained on the same records."""
    detectors = {}
    for version in DetectorVersion:
        detector = SIFTDetector(version=version)
        detector.fit(train_record, train_donors)
        detectors[version] = detector
    return detectors


@pytest.fixture(scope="session")
def labeled_stream(test_record, test_donor_records):
    """A 20-window labelled evaluation stream (50 % altered)."""
    scenario = AttackScenario(
        ReplacementAttack(test_donor_records), window_s=3.0, altered_fraction=0.5
    )
    return scenario.build(test_record, np.random.default_rng(42))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(123)
