"""Tests for the evaluation scenario builder."""

import numpy as np
import pytest

from repro.attacks.replacement import ReplacementAttack
from repro.attacks.scenario import AttackScenario, LabeledStream
from repro.signals.dataset import SignalWindow


class TestAttackScenario:
    def test_paper_protocol_counts(self, test_record, test_donor_records, rng):
        """2 minutes at w = 3 s -> 40 windows; half altered -> 20."""
        scenario = AttackScenario(
            ReplacementAttack(test_donor_records),
            window_s=3.0,
            altered_fraction=0.5,
        )
        # Session fixture record is 60 s; emulate 120 s via fraction math.
        stream = scenario.build(test_record, rng)
        assert len(stream) == 20
        assert stream.n_altered == 10

    def test_labels_match_alterations(self, test_record, test_donor_records, rng):
        scenario = AttackScenario(ReplacementAttack(test_donor_records))
        stream = scenario.build(test_record, rng)
        for window, label in zip(stream.windows, stream.labels):
            assert window.altered == label
        # Unaltered windows are bit-identical to the source record.
        length = int(3.0 * test_record.sample_rate)
        for i, window in enumerate(stream.windows):
            original = test_record.window(i * length, length)
            if not window.altered:
                assert np.array_equal(window.ecg, original.ecg)
            assert np.array_equal(window.abp, original.abp)

    def test_altered_fraction_zero_and_one(
        self, test_record, test_donor_records, rng
    ):
        benign = AttackScenario(
            ReplacementAttack(test_donor_records), altered_fraction=0.0
        ).build(test_record, rng)
        assert benign.n_altered == 0
        hostile = AttackScenario(
            ReplacementAttack(test_donor_records), altered_fraction=1.0
        ).build(test_record, rng)
        assert hostile.n_altered == len(hostile)

    def test_random_locations_differ_by_seed(
        self, test_record, test_donor_records
    ):
        scenario = AttackScenario(ReplacementAttack(test_donor_records))
        a = scenario.build(test_record, np.random.default_rng(1))
        b = scenario.build(test_record, np.random.default_rng(2))
        assert not np.array_equal(a.labels, b.labels)

    def test_rejects_bad_parameters(self, test_donor_records):
        with pytest.raises(ValueError):
            AttackScenario(ReplacementAttack(test_donor_records), window_s=0.0)
        with pytest.raises(ValueError):
            AttackScenario(
                ReplacementAttack(test_donor_records), altered_fraction=1.5
            )

    def test_rejects_too_short_record(self, test_donor_records, rng, dataset, victim):
        scenario = AttackScenario(
            ReplacementAttack(test_donor_records), window_s=3.0
        )
        short = dataset.record(victim, 2.0, purpose="extra")
        with pytest.raises(ValueError, match="shorter"):
            scenario.build(short, rng)

    def test_attack_name_recorded(self, test_record, test_donor_records, rng):
        stream = AttackScenario(ReplacementAttack(test_donor_records)).build(
            test_record, rng
        )
        assert stream.attack_name == "replacement"
        assert stream.subject_id == test_record.subject_id


class TestLabeledStream:
    def test_rejects_unlabeled_windows(self):
        window = SignalWindow(
            ecg=np.zeros(10),
            abp=np.zeros(10),
            r_peaks=np.array([]),
            systolic_peaks=np.array([]),
            sample_rate=360.0,
            altered=None,
        )
        with pytest.raises(ValueError, match="label"):
            LabeledStream(windows=[window], subject_id="x", attack_name="a")
