"""Tests for the sensor-hijacking attack models."""

import numpy as np
import pytest

from repro.attacks.injection import (
    InterferenceInjectionAttack,
    MorphologyInjectionAttack,
)
from repro.attacks.replacement import ReplacementAttack
from repro.attacks.replay import ReplayAttack
from repro.signals.dataset import iter_windows


@pytest.fixture()
def victim_window(test_record):
    return test_record.window(0, 1080, altered=False)


class TestReplacementAttack:
    def test_replaces_ecg_keeps_abp(self, victim_window, test_donor_records, rng):
        attack = ReplacementAttack(test_donor_records)
        altered = attack.alter(victim_window, rng)
        assert altered.altered is True
        assert np.array_equal(altered.abp, victim_window.abp)
        assert np.array_equal(altered.systolic_peaks, victim_window.systolic_peaks)
        assert not np.array_equal(altered.ecg, victim_window.ecg)

    def test_donor_segment_matches_a_donor(
        self, victim_window, test_donor_records, rng
    ):
        attack = ReplacementAttack(test_donor_records)
        altered = attack.alter(victim_window, rng)
        found = any(
            np.abs(
                np.lib.stride_tricks.sliding_window_view(d.ecg, 1080)
                - altered.ecg
            ).sum(axis=1).min()
            < 1e-9
            for d in test_donor_records
        )
        assert found

    def test_peaks_in_window_range(self, victim_window, test_donor_records, rng):
        attack = ReplacementAttack(test_donor_records)
        altered = attack.alter(victim_window, rng)
        if altered.r_peaks.size:
            assert altered.r_peaks.min() >= 0
            assert altered.r_peaks.max() < altered.n_samples

    def test_rejects_self_donor(self, victim_window, test_record, rng):
        attack = ReplacementAttack([test_record])
        with pytest.raises(ValueError, match="victim"):
            attack.alter(victim_window, rng)

    def test_rejects_empty_donor_list(self):
        with pytest.raises(ValueError):
            ReplacementAttack([])

    def test_rejects_short_donor(self, victim_window, test_donor_records, rng):
        short = test_donor_records[0].__class__(
            subject_id="short",
            sample_rate=360.0,
            ecg=np.zeros(100),
            abp=np.zeros(100),
            r_peaks=np.array([], dtype=np.intp),
            systolic_peaks=np.array([], dtype=np.intp),
        )
        with pytest.raises(ValueError, match="shorter"):
            ReplacementAttack(short).alter(victim_window, rng)


class TestReplayAttack:
    def test_replays_victims_own_signal(self, victim_window, dataset, victim, rng):
        captured = dataset.record(victim, 30.0, purpose="extra")
        attack = ReplayAttack(captured)
        altered = attack.alter(victim_window, rng)
        assert altered.altered is True
        assert np.array_equal(altered.abp, victim_window.abp)
        # The replayed ECG is a contiguous slice of the captured record.
        view = np.lib.stride_tricks.sliding_window_view(captured.ecg, 1080)
        assert np.abs(view - altered.ecg).sum(axis=1).min() < 1e-9

    def test_rejects_cross_subject_source(
        self, victim_window, test_donor_records, rng
    ):
        attack = ReplayAttack(test_donor_records[0])
        with pytest.raises(ValueError, match="victim"):
            attack.alter(victim_window, rng)


class TestInterferenceInjectionAttack:
    def test_adds_interference_energy(self, victim_window, rng):
        attack = InterferenceInjectionAttack(amplitude=1.0, frequency=7.0)
        altered = attack.alter(victim_window, rng)
        residual = altered.ecg - victim_window.ecg
        assert np.std(residual) == pytest.approx(1.0 / np.sqrt(2), rel=0.1)
        assert np.array_equal(altered.abp, victim_window.abp)

    def test_re_detects_peaks_on_corrupted_signal(self, victim_window, rng):
        attack = InterferenceInjectionAttack(amplitude=3.0)
        altered = attack.alter(victim_window, rng)
        assert altered.r_peaks.dtype == np.intp
        if altered.r_peaks.size:
            assert altered.r_peaks.max() < altered.n_samples

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            InterferenceInjectionAttack(amplitude=-1.0)
        with pytest.raises(ValueError):
            InterferenceInjectionAttack(frequency=0.0)


class TestMorphologyInjectionAttack:
    def test_shifts_and_scales(self, victim_window, rng):
        attack = MorphologyInjectionAttack(max_shift_s=0.4, gain_range=(2.0, 2.0))
        altered = attack.alter(victim_window, rng)
        assert np.max(np.abs(altered.ecg)) == pytest.approx(
            2.0 * np.max(np.abs(victim_window.ecg)), rel=1e-6
        )
        assert altered.r_peaks.size == victim_window.r_peaks.size

    def test_peaks_shift_with_signal(self, victim_window, rng):
        attack = MorphologyInjectionAttack()
        altered = attack.alter(victim_window, rng)
        n = altered.n_samples
        # Each altered peak equals some original peak plus the shift mod n.
        if victim_window.r_peaks.size:
            diffs = (altered.r_peaks[:, None] - victim_window.r_peaks[None, :]) % n
            shift_candidates = set(diffs.flatten().tolist())
            assert any(
                np.all(np.isin((victim_window.r_peaks + s) % n, altered.r_peaks))
                for s in shift_candidates
            )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MorphologyInjectionAttack(max_shift_s=0.0)
        with pytest.raises(ValueError):
            MorphologyInjectionAttack(gain_range=(0.0, 1.0))
        with pytest.raises(ValueError):
            MorphologyInjectionAttack(gain_range=(2.0, 1.0))
