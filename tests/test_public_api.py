"""Quality gates on the public API surface.

Every name a subpackage exports must resolve, carry a docstring, and the
``__all__`` lists must be sorted (so diffs stay reviewable).
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.adaptive",
    "repro.amulet",
    "repro.apps",
    "repro.attacks",
    "repro.core",
    "repro.experiments",
    "repro.ml",
    "repro.native",
    "repro.signals",
    "repro.sift_app",
    "repro.wiot",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
class TestPublicSurface:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} must define __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_all_sorted(self, module_name):
        module = importlib.import_module(module_name)
        exported = list(module.__all__)
        assert exported == sorted(exported), (
            f"{module_name}.__all__ is not sorted"
        )

    def test_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_exports_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, (
            f"{module_name} exports without docstrings: {undocumented}"
        )

    def test_public_classes_have_documented_public_methods(self, module_name):
        """Every public method is documented somewhere in its MRO.

        An override of a documented base method (e.g. the QMApp resource
        declarations, an attack's ``alter``) inherits that contract; a
        method with no documented ancestor must carry its own docstring.
        """

        def documented_in_mro(cls, method_name) -> bool:
            for base in cls.__mro__:
                candidate = base.__dict__.get(method_name)
                if candidate is None:
                    continue
                doc = inspect.getdoc(candidate)
                if doc and doc.strip():
                    return True
            return False

        module = importlib.import_module(module_name)
        offenders = []
        for name in module.__all__:
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(
                obj, inspect.isfunction
            ):
                if method_name.startswith("_"):
                    continue
                if not documented_in_mro(obj, method_name):
                    offenders.append(f"{name}.{method_name}")
        assert not offenders, (
            f"{module_name}: public methods without docstrings anywhere in "
            f"their MRO: {sorted(set(offenders))}"
        )
