"""Tests for bounded-memory chunked scoring.

``iter_decision_values`` must be *bit-identical* to the one-shot batch
path at every chunk size -- including sizes that straddle the stream
length unevenly -- and every stream entry point built on it
(``classify_stream``, ``inspect_stream``, ``evaluate``,
``StreamingDetector.process_stream``) must inherit that equivalence.
"""

import numpy as np
import pytest

from repro.core import DEFAULT_CHUNK_SIZE, SIFTDetector
from repro.core.features.batched import iter_window_chunks
from repro.core.streaming import StreamingDetector
from repro.core.versions import DetectorVersion

CHUNK_SIZES = (1, 7, 256)


class TestIterWindowChunks:
    def test_chunks_cover_stream_in_order(self, labeled_stream):
        chunks = list(iter_window_chunks(labeled_stream, 7))
        assert [len(c) for c in chunks] == [7, 7, 6]
        flattened = [w for chunk in chunks for w in chunk]
        assert flattened == list(labeled_stream.windows)

    def test_lazy_source_not_materialized(self, labeled_stream):
        pulled = []

        def source():
            for window in labeled_stream.windows:
                pulled.append(window)
                yield window

        chunks = iter_window_chunks(source(), 5)
        first = next(chunks)
        assert len(first) == 5
        assert len(pulled) == 5  # only one chunk pulled so far

    def test_empty_stream_yields_nothing(self):
        assert list(iter_window_chunks([], 4)) == []

    def test_rejects_bad_chunk_size(self, labeled_stream):
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_window_chunks(labeled_stream, 0))


class TestChunkedDecisionValues:
    @pytest.mark.parametrize("version", list(DetectorVersion))
    def test_bit_identical_to_one_shot(
        self, trained_detectors, labeled_stream, version
    ):
        """Acceptance: every version, awkward chunk sizes included."""
        detector = trained_detectors[version]
        one_shot = detector.decision_values(labeled_stream)
        for chunk_size in CHUNK_SIZES + (len(labeled_stream),):
            chunks = list(
                detector.iter_decision_values(labeled_stream, chunk_size)
            )
            assert all(c.dtype == np.float64 for c in chunks)
            assert all(len(c) <= chunk_size for c in chunks)
            assert np.array_equal(np.concatenate(chunks), one_shot), (
                f"{version.value} diverges at chunk_size={chunk_size}"
            )

    def test_default_chunk_size(self, trained_detectors, labeled_stream):
        detector = trained_detectors[DetectorVersion.REDUCED]
        chunks = list(detector.iter_decision_values(labeled_stream))
        # The test stream is far below DEFAULT_CHUNK_SIZE: one chunk.
        assert len(labeled_stream) < DEFAULT_CHUNK_SIZE
        assert len(chunks) == 1

    def test_accepts_lazy_window_iterator(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        chunked = np.concatenate(
            list(
                detector.iter_decision_values(
                    iter(labeled_stream.windows), chunk_size=7
                )
            )
        )
        assert np.array_equal(chunked, detector.decision_values(labeled_stream))

    def test_empty_stream_yields_nothing(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.REDUCED]
        assert list(detector.iter_decision_values([])) == []

    def test_one_shot_empty_stream_dtype_pinned(self, trained_detectors):
        """Regression: np.empty(0) used to leak an implicit dtype."""
        detector = trained_detectors[DetectorVersion.REDUCED]
        values = detector.decision_values([])
        assert values.shape == (0,)
        assert values.dtype == np.float64

    def test_rejects_bad_chunk_size(self, trained_detectors, labeled_stream):
        detector = trained_detectors[DetectorVersion.REDUCED]
        with pytest.raises(ValueError, match="chunk_size"):
            list(detector.iter_decision_values(labeled_stream, 0))

    def test_requires_fit(self, labeled_stream):
        with pytest.raises(RuntimeError, match="not fitted"):
            next(SIFTDetector().iter_decision_values(labeled_stream))


class TestChunkedEntryPoints:
    def test_classify_stream_matches_one_shot(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        expected = detector.decision_values(labeled_stream) >= 0.0
        for chunk_size in CHUNK_SIZES:
            assert np.array_equal(
                detector.classify_stream(labeled_stream, chunk_size), expected
            )

    def test_classify_empty_stream(self, trained_detectors):
        predictions = trained_detectors[DetectorVersion.REDUCED].classify_stream([])
        assert predictions.shape == (0,)
        assert predictions.dtype == bool

    def test_inspect_stream_matches_one_shot(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        values = detector.decision_values(labeled_stream)
        predictions, log = detector.inspect_stream(labeled_stream, chunk_size=7)
        assert np.array_equal(predictions, values >= 0.0)
        positives = np.flatnonzero(values >= 0.0)
        assert [a.window_index for a in log.alerts] == positives.tolist()
        for alert in log.alerts:
            assert alert.decision_value == values[alert.window_index]
            assert alert.time_s == alert.window_index * detector.window_s

    def test_evaluate_chunk_size_invariant(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.ORIGINAL]
        baseline = detector.evaluate(labeled_stream)
        for chunk_size in CHUNK_SIZES:
            assert detector.evaluate(labeled_stream, chunk_size) == baseline


class TestChunkedStreamingDetector:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_process_stream_matches_window_loop(
        self, trained_detectors, labeled_stream, chunk_size
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        reference = StreamingDetector(detector, votes_needed=2, vote_window=3)
        for window in labeled_stream.windows:
            reference.process_window(window)
        reference.finish()

        chunked = StreamingDetector(detector, votes_needed=2, vote_window=3)
        chunked.process_stream(labeled_stream, chunk_size, flush=True)
        assert chunked.episodes == reference.episodes
        assert reference.episodes  # the 50%-altered stream must trigger


class _ScriptedDetector:
    """Stand-in detector yielding pre-scripted decision values."""

    window_s = 3.0

    def __init__(self, values, chunk_size=2):
        self._values = np.asarray(values, dtype=np.float64)
        self._chunk_size = chunk_size

    def iter_decision_values(self, stream, chunk_size=None):
        del stream, chunk_size
        for start in range(0, len(self._values), self._chunk_size):
            yield self._values[start : start + self._chunk_size]


class TestProcessStreamFlush:
    """Regression: a trailing open episode used to be silently dropped."""

    def test_without_flush_trailing_episode_stays_open(self):
        streaming = StreamingDetector(
            _ScriptedDetector([-1.0, 1.0, 1.0, 1.0]), votes_needed=2, vote_window=3
        )
        closed = streaming.process_stream(object())
        assert closed == []
        assert streaming.under_attack()
        assert streaming.episodes == []

    def test_flush_closes_trailing_episode(self):
        streaming = StreamingDetector(
            _ScriptedDetector([-1.0, 1.0, 1.0, 1.0]), votes_needed=2, vote_window=3
        )
        closed = streaming.process_stream(object(), flush=True)
        assert len(closed) == 1
        assert not streaming.under_attack()
        episode = closed[0]
        assert (episode.start_index, episode.end_index) == (1, 3)
        assert episode.peak_decision_value == 1.0

    def test_flush_on_clean_stream_is_a_noop(self):
        streaming = StreamingDetector(
            _ScriptedDetector([-1.0, -2.0, -0.5]), votes_needed=2, vote_window=3
        )
        assert streaming.process_stream(object(), flush=True) == []
        assert streaming.episodes == []

    def test_closed_and_trailing_episodes_both_returned(self):
        streaming = StreamingDetector(
            _ScriptedDetector([1.0, 1.0, -1.0, -1.0, -1.0, 2.0, 2.0]),
            votes_needed=2,
            vote_window=3,
        )
        closed = streaming.process_stream(object(), flush=True)
        # The first episode closes when votes drop to zero (at window 4),
        # so it ends at window 3; the second is still open at the end and
        # only flush=True surfaces it.
        assert [(e.start_index, e.end_index) for e in closed] == [(0, 3), (5, 6)]
        assert closed == streaming.episodes
