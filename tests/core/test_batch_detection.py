"""The batch detection path must match the scalar path bit-for-bit.

The batch path (``extract_stream`` -> one ``scaler.transform`` -> one
``decision_function``) exists purely for throughput; every score it
produces must equal the per-window scalar path *exactly* -- the scalar
path is the on-device reference, and the committed benchmark tables were
produced window by window.
"""

import numpy as np
import pytest

from repro.core.detector import SIFTDetector
from repro.core.features.batched import (
    build_portrait_batch,
    normalize_rows,
    spatial_filling_indices,
    stack_signals,
)
from repro.core.features.matrix import spatial_filling_index
from repro.core.portrait import build_portrait, normalize_signal
from repro.core.streaming import StreamingDetector
from repro.core.versions import DetectorVersion


class TestBatchedPrimitives:
    def test_normalize_rows_matches_normalize_signal(self, labeled_stream):
        signals = np.stack([w.ecg for w in labeled_stream.windows])
        batched = normalize_rows(signals)
        for i, window in enumerate(labeled_stream.windows):
            assert np.array_equal(batched[i], normalize_signal(window.ecg))

    def test_normalize_rows_flat_row(self):
        signals = np.array([[1.0, 2.0, 3.0], [5.0, 5.0, 5.0]])
        batched = normalize_rows(signals)
        assert np.array_equal(batched[1], np.full(3, 0.5))
        assert np.array_equal(batched[0], np.array([0.0, 0.5, 1.0]))

    def test_occupancy_matrices_match_scalar(self, labeled_stream):
        windows = labeled_stream.windows[:6]
        batch = build_portrait_batch(windows)
        matrices = batch.occupancy_matrices(50)
        for i, window in enumerate(windows):
            scalar = build_portrait(window).occupancy_matrix(50)
            assert np.array_equal(matrices[i], scalar)

    def test_spatial_filling_indices_match_scalar(self, labeled_stream):
        windows = labeled_stream.windows[:6]
        matrices = build_portrait_batch(windows).occupancy_matrices(50)
        batched = spatial_filling_indices(np.asarray(matrices, dtype=np.float64))
        for i in range(len(windows)):
            assert batched[i] == spatial_filling_index(matrices[i])

    def test_spatial_filling_indices_empty_matrix(self):
        matrices = np.zeros((2, 4, 4))
        matrices[1, 0, 0] = 8.0
        out = spatial_filling_indices(matrices)
        assert out[0] == 0.0
        assert out[1] == 16.0  # all mass in one cell -> n^2

    def test_stack_signals_ragged_returns_none(self, labeled_stream):
        windows = list(labeled_stream.windows[:3])
        short = windows[0].__class__(
            ecg=windows[0].ecg[:-7],
            abp=windows[0].abp[:-7],
            sample_rate=windows[0].sample_rate,
            r_peaks=np.array([], dtype=np.intp),
            systolic_peaks=np.array([], dtype=np.intp),
            altered=False,
        )
        assert stack_signals(windows + [short]) is None
        assert build_portrait_batch(windows + [short]) is None

    def test_portrait_batch_coordinates_match(self, labeled_stream):
        windows = labeled_stream.windows[:4]
        batch = build_portrait_batch(windows)
        for i, window in enumerate(windows):
            scalar = build_portrait(window)
            assert np.array_equal(batch.portraits[i].x, scalar.x)
            assert np.array_equal(batch.portraits[i].y, scalar.y)
            assert batch.portraits[i].peak_pairs == scalar.peak_pairs


class TestExtractStreamEquivalence:
    @pytest.mark.parametrize("version", list(DetectorVersion))
    def test_features_match_per_window_exactly(
        self, trained_detectors, labeled_stream, version
    ):
        extractor = trained_detectors[version].extractor
        batched = extractor.extract_stream(labeled_stream)
        assert batched.shape == (len(labeled_stream), extractor.n_features)
        for i, window in enumerate(labeled_stream.windows):
            assert np.array_equal(batched[i], extractor.extract_window(window))

    def test_extract_many_is_extract_stream(self, trained_detectors, labeled_stream):
        extractor = trained_detectors[DetectorVersion.SIMPLIFIED].extractor
        assert np.array_equal(
            extractor.extract_many(labeled_stream.windows),
            extractor.extract_stream(labeled_stream),
        )

    def test_empty_stream(self, trained_detectors):
        extractor = trained_detectors[DetectorVersion.REDUCED].extractor
        out = extractor.extract_stream([])
        assert out.shape == (0, extractor.n_features)

    def test_ragged_windows_fall_back(self, trained_detectors, labeled_stream):
        """Unequal window lengths route through the per-window loop."""
        extractor = trained_detectors[DetectorVersion.SIMPLIFIED].extractor
        full = labeled_stream.windows[0]
        record_like = full.__class__(
            ecg=full.ecg[:-11],
            abp=full.abp[:-11],
            sample_rate=full.sample_rate,
            r_peaks=full.r_peaks[full.r_peaks < full.ecg.size - 11],
            systolic_peaks=full.systolic_peaks[
                full.systolic_peaks < full.ecg.size - 11
            ],
            altered=False,
        )
        windows = [full, record_like]
        batched = extractor.extract_stream(windows)
        for i, window in enumerate(windows):
            assert np.array_equal(batched[i], extractor.extract_window(window))


class TestDecisionValuesEquivalence:
    @pytest.mark.parametrize("version", list(DetectorVersion))
    def test_scores_match_scalar_exactly(
        self, trained_detectors, labeled_stream, version
    ):
        """The acceptance criterion: exact float equality, all versions."""
        detector = trained_detectors[version]
        batched = detector.decision_values(labeled_stream)
        scalar = np.array(
            [detector.decision_value(w) for w in labeled_stream.windows]
        )
        assert np.array_equal(batched, scalar)

    def test_rbf_kernel_scores_match(self, train_record, train_donors, labeled_stream):
        detector = SIFTDetector(version="reduced", kernel="rbf")
        detector.fit(train_record, train_donors)
        batched = detector.decision_values(labeled_stream)
        scalar = np.array(
            [detector.decision_value(w) for w in labeled_stream.windows]
        )
        assert np.array_equal(batched, scalar)

    def test_classify_stream_thresholds_scores(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.ORIGINAL]
        assert np.array_equal(
            detector.classify_stream(labeled_stream),
            detector.decision_values(labeled_stream) >= 0.0,
        )

    def test_inspect_stream_alerts_carry_batch_values(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        predictions, log = detector.inspect_stream(labeled_stream)
        values = detector.decision_values(labeled_stream)
        assert np.array_equal(predictions, values >= 0.0)
        assert len(log) == int(predictions.sum())
        for alert in log.alerts:
            assert alert.decision_value == values[alert.window_index]
            assert alert.decision_value >= 0.0

    def test_evaluate_matches_per_window_path(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.REDUCED]
        report = detector.evaluate(labeled_stream)
        scalar_pred = np.array(
            [detector.classify_window(w) for w in labeled_stream.windows]
        )
        from repro.ml.metrics import score_predictions

        scalar_report = score_predictions(scalar_pred, labeled_stream.labels)
        assert report == scalar_report

    def test_empty_stream_scores(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.REDUCED]
        assert detector.decision_values([]).shape == (0,)


class TestProcessStreamEquivalence:
    def test_episodes_match_per_window_loop(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        serial = StreamingDetector(detector, votes_needed=2, vote_window=3)
        for window in labeled_stream.windows:
            serial.process_window(window)
        serial.finish()

        batched = StreamingDetector(detector, votes_needed=2, vote_window=3)
        batched.process_stream(labeled_stream)
        batched.finish()

        assert batched.episodes == serial.episodes
