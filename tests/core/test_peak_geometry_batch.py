"""Vectorized peak geometry must match the scalar extractors bit-for-bit.

Property-based equivalence suite for :class:`PeakGeometryBatch`: across
all three detector tiers, ragged peak counts (zero, one, many -- padded
matrices never blur the families together), and chunked vs one-shot
extraction, every batched value must equal the scalar helper's output
*exactly*.  The scalar path is the on-device reference.

The load-bearing contract is the sequential mean: both sides accumulate
left to right (``sequential_mean`` scalar-side, column-by-column
accumulation batch-side).  Pairwise ``np.mean`` would re-associate at
8+ peaks, so the hypothesis cases deliberately include windows with
more than eight peaks of a kind.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features.batched import (
    build_peak_geometry,
    build_portrait_batch,
    iter_window_chunks,
    masked_sequential_row_means,
)
from repro.core.features.geometric import (
    average_paired_distance,
    average_peak_angle,
    average_peak_distance,
    sequential_mean,
)
from repro.core.features.original import OriginalFeatureExtractor
from repro.core.features.reduced import ReducedFeatureExtractor
from repro.core.features.simplified import (
    SLOPE_EPSILON,
    SimplifiedFeatureExtractor,
    average_peak_slope,
    average_squared_paired_distance,
    average_squared_peak_distance,
)
from repro.core.portrait import build_portrait
from repro.signals.dataset import SignalWindow

EXTRACTORS = (
    OriginalFeatureExtractor,
    SimplifiedFeatureExtractor,
    ReducedFeatureExtractor,
)

#: Samples per generated window; small keeps hypothesis fast while still
#: leaving room for >8 peaks (the pairwise-summation regime).
N_SAMPLES = 64
SAMPLE_RATE = 360.0


@st.composite
def signal_windows(draw):
    """One window with arbitrary signals and ragged peak index sets."""
    ecg = draw(
        st.lists(
            st.floats(-10.0, 10.0, allow_nan=False, width=64),
            min_size=N_SAMPLES,
            max_size=N_SAMPLES,
        )
    )
    abp = draw(
        st.lists(
            st.floats(-10.0, 10.0, allow_nan=False, width=64),
            min_size=N_SAMPLES,
            max_size=N_SAMPLES,
        )
    )
    indices = st.integers(0, N_SAMPLES - 1)
    r_peaks = sorted(draw(st.sets(indices, min_size=0, max_size=12)))
    s_peaks = sorted(draw(st.sets(indices, min_size=0, max_size=12)))
    return SignalWindow(
        ecg=np.array(ecg),
        abp=np.array(abp),
        sample_rate=SAMPLE_RATE,
        r_peaks=np.array(r_peaks, dtype=np.intp),
        systolic_peaks=np.array(s_peaks, dtype=np.intp),
    )


def _window(rng, r_peaks, s_peaks):
    return SignalWindow(
        ecg=rng.random(N_SAMPLES),
        abp=rng.random(N_SAMPLES),
        sample_rate=SAMPLE_RATE,
        r_peaks=np.array(r_peaks, dtype=np.intp),
        systolic_peaks=np.array(s_peaks, dtype=np.intp),
    )


@pytest.fixture()
def edge_windows(rng):
    """Every ragged-count regime: zero, one, many, and mixed families."""
    dense = list(range(2, N_SAMPLES - 2, 5))  # 12 peaks: past pairwise cutoff
    return [
        _window(rng, [], []),
        _window(rng, [7], []),
        _window(rng, [], [11]),
        _window(rng, [7], [11]),
        _window(rng, dense, dense[1:]),
        _window(rng, [3], dense),
    ]


class TestSequentialMeanContract:
    @given(
        st.lists(st.floats(0.0, 100.0, allow_nan=False, width=64), min_size=1, max_size=40)
    )
    @settings(max_examples=50, deadline=None)
    def test_sequential_mean_is_the_left_to_right_loop(self, values):
        total = 0.0
        for value in values:
            total = total + value
        assert sequential_mean(np.array(values)) == total / len(values)

    @given(
        st.lists(
            st.lists(
                st.floats(0.0, 100.0, allow_nan=False, width=64),
                min_size=0,
                max_size=15,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_masked_row_means_match_sequential_mean_per_row(self, rows):
        k = max(len(row) for row in rows)
        values = np.zeros((len(rows), k))
        mask = np.zeros((len(rows), k), dtype=bool)
        for i, row in enumerate(rows):
            values[i, : len(row)] = row
            mask[i, : len(row)] = True
        counts = np.array([len(row) for row in rows])
        out = masked_sequential_row_means(values, mask, counts)
        for i, row in enumerate(rows):
            expected = sequential_mean(np.array(row)) if row else 0.0
            assert out[i] == expected

    def test_all_empty_rows_yield_zero_width_matrix_and_zeros(self):
        out = masked_sequential_row_means(
            np.empty((3, 0)), np.empty((3, 0), dtype=bool), np.zeros(3, dtype=int)
        )
        assert np.array_equal(out, np.zeros(3))


class TestScalarHelperContract:
    """Satellite: pin the zero-peak/single-peak scalar geometry contract."""

    def test_empty_points_yield_zero(self):
        empty = np.empty((0, 2))
        assert average_peak_angle(empty) == 0.0
        assert average_peak_distance(empty) == 0.0
        assert average_paired_distance(empty, empty) == 0.0
        assert average_peak_slope(empty) == 0.0
        assert average_squared_peak_distance(empty) == 0.0
        assert average_squared_paired_distance(empty, empty) == 0.0

    def test_single_point_is_its_own_mean(self):
        point = np.array([[0.25, 0.75]])
        assert average_peak_angle(point) == float(np.arctan2(0.75, 0.25))
        assert average_peak_distance(point) == float(np.sqrt(0.25**2 + 0.75**2))
        assert average_peak_slope(point) == 0.75 / 0.25
        assert average_squared_peak_distance(point) == 0.25**2 + 0.75**2

    def test_slope_clamps_on_the_y_axis(self):
        assert average_peak_slope(np.array([[0.0, 1.0]])) == 1.0 / SLOPE_EPSILON


class TestBatchGeometryEquivalence:
    @pytest.mark.parametrize("extractor_cls", EXTRACTORS)
    def test_edge_windows_bit_identical(self, extractor_cls, edge_windows):
        extractor = extractor_cls(grid_n=50)
        batched = extractor._extract_batch(edge_windows)
        for i, window in enumerate(edge_windows):
            scalar = extractor.extract(build_portrait(window))
            assert np.array_equal(batched[i], scalar), (extractor_cls, i)

    @pytest.mark.parametrize("extractor_cls", EXTRACTORS)
    @given(windows=st.lists(signal_windows(), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_windows_bit_identical(self, extractor_cls, windows):
        extractor = extractor_cls(grid_n=10)
        batched = extractor._extract_batch(windows)
        for i, window in enumerate(windows):
            scalar = extractor.extract(build_portrait(window))
            assert np.array_equal(batched[i], scalar)

    @pytest.mark.parametrize("extractor_cls", EXTRACTORS)
    def test_chunked_extraction_matches_one_shot(
        self, extractor_cls, edge_windows, labeled_stream
    ):
        """Chunk boundaries change the padding width (each chunk pads to
        its own max count) but never the values."""
        extractor = extractor_cls(grid_n=50)
        windows = list(labeled_stream.windows[:6]) + edge_windows
        one_shot = extractor.extract_stream(windows)
        for chunk_size in (1, 4, 5, len(windows)):
            chunked = np.vstack(
                [
                    extractor.extract_stream(chunk)
                    for chunk in iter_window_chunks(windows, chunk_size)
                ]
            )
            assert np.array_equal(chunked, one_shot), chunk_size

    def test_stream_windows_bit_identical_all_tiers(self, labeled_stream):
        for extractor_cls in EXTRACTORS:
            extractor = extractor_cls(grid_n=50)
            batched = extractor.extract_stream(labeled_stream)
            for i, window in enumerate(labeled_stream.windows):
                scalar = extractor.extract(build_portrait(window))
                assert np.array_equal(batched[i], scalar)


class TestPeakGeometryBatchShape:
    def test_padded_matrices_cover_the_ragged_counts(self, edge_windows):
        batch = build_portrait_batch(edge_windows)
        geometry = build_peak_geometry(batch)
        for i, portrait in enumerate(batch.portraits):
            assert geometry.r_counts[i] == len(portrait.r_peaks)
            assert geometry.s_counts[i] == len(portrait.systolic_peaks)
            assert geometry.pair_counts[i] == len(portrait.peak_pairs)
            assert geometry.r_mask[i].sum() == len(portrait.r_peaks)
        assert geometry.r_x.shape[1] == max(
            len(p.r_peaks) for p in batch.portraits
        )

    def test_gathered_coordinates_match_portrait_points(self, edge_windows):
        batch = build_portrait_batch(edge_windows)
        geometry = build_peak_geometry(batch)
        for i, portrait in enumerate(batch.portraits):
            points = portrait.r_peak_points()
            count = len(portrait.r_peaks)
            assert np.array_equal(geometry.r_x[i, :count], points[:, 0])
            assert np.array_equal(geometry.r_y[i, :count], points[:, 1])
            paired_r, paired_s = portrait.paired_peak_points()
            n_pairs = len(portrait.peak_pairs)
            assert np.array_equal(geometry.pr_x[i, :n_pairs], paired_r[:, 0])
            assert np.array_equal(geometry.ps_y[i, :n_pairs], paired_s[:, 1])
