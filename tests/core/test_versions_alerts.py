"""Tests for the version registry and the alert log."""

import pytest

from repro.core.alerts import Alert, AlertLog
from repro.core.versions import DetectorVersion


class TestDetectorVersion:
    def test_from_name_case_insensitive(self):
        assert DetectorVersion.from_name("Original") is DetectorVersion.ORIGINAL
        assert DetectorVersion.from_name("REDUCED") is DetectorVersion.REDUCED

    def test_from_name_invalid(self):
        with pytest.raises(ValueError, match="expected one of"):
            DetectorVersion.from_name("nano")

    def test_libm_only_original(self):
        assert DetectorVersion.ORIGINAL.requires_libm
        assert not DetectorVersion.SIMPLIFIED.requires_libm
        assert not DetectorVersion.REDUCED.requires_libm

    def test_matrix_features_flag(self):
        assert DetectorVersion.ORIGINAL.uses_matrix_features
        assert DetectorVersion.SIMPLIFIED.uses_matrix_features
        assert not DetectorVersion.REDUCED.uses_matrix_features

    def test_feature_counts(self):
        assert DetectorVersion.ORIGINAL.n_features == 8
        assert DetectorVersion.REDUCED.n_features == 5


class TestAlertLog:
    def _alert(self, index=0, time_s=0.0):
        return Alert(
            window_index=index,
            time_s=time_s,
            subject_id="s00",
            version="simplified",
            decision_value=1.5,
        )

    def test_append_and_iterate(self):
        log = AlertLog()
        log.raise_alert(self._alert(0, 0.0))
        log.raise_alert(self._alert(3, 9.0))
        assert len(log) == 2
        assert log.window_indices == [0, 3]
        assert [a.time_s for a in log] == [0.0, 9.0]

    def test_since_filters_by_time(self):
        log = AlertLog()
        for i in range(5):
            log.raise_alert(self._alert(i, 3.0 * i))
        assert len(log.since(6.0)) == 3

    def test_alert_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Alert(
                window_index=-1,
                time_s=0.0,
                subject_id="s",
                version="v",
                decision_value=0.0,
            )
