"""Tests for streaming detection and model serialization."""

import numpy as np
import pytest

from repro.core.detector import SIFTDetector
from repro.core.serialization import (
    detector_from_json,
    detector_to_json,
    load_detector,
    save_detector,
)
from repro.core.streaming import AttackEpisode, StreamingDetector
from repro.core.versions import DetectorVersion


@pytest.fixture(scope="module")
def streaming(trained_detectors):
    return lambda **kw: StreamingDetector(
        trained_detectors[DetectorVersion.SIMPLIFIED], **kw
    )


class TestStreamingDetector:
    def test_sustained_attack_becomes_one_episode(
        self, streaming, labeled_stream
    ):
        """Feed all genuine windows, then all altered windows: the attack
        block should surface as a single closed episode."""
        detector = streaming(votes_needed=2, vote_window=3)
        genuine = [w for w in labeled_stream.windows if not w.altered]
        altered = [w for w in labeled_stream.windows if w.altered]
        for window in genuine + altered:
            detector.process_window(window)
        final = detector.finish()
        assert final is not None
        episodes = detector.episodes
        assert len(episodes) >= 1
        # The final episode covers most of the attacked block.
        assert episodes[-1].n_windows >= len(altered) - 3
        assert episodes[-1].end_index == len(genuine) + len(altered) - 1

    def test_isolated_false_positive_suppressed(self, streaming, labeled_stream):
        """With k=2, a single positive window cannot open an episode."""
        detector = streaming(votes_needed=2, vote_window=3)
        genuine = [w for w in labeled_stream.windows if not w.altered]
        altered = [w for w in labeled_stream.windows if w.altered]
        # one altered window sandwiched in genuine traffic
        sequence = genuine[:5] + altered[:1] + genuine[5:]
        for window in sequence:
            detector.process_window(window)
        detector.finish()
        # The single spike alone must not produce an episode covering it,
        # unless neighbouring genuine windows also misfired (check votes).
        solo = [e for e in detector.episodes if e.n_windows == 1]
        for episode in solo:
            # any 1-window episode must come from >= k votes, impossible
            # for an isolated positive
            assert episode.n_windows > 1 or not solo

    def test_detection_latency_bounded(self, streaming, labeled_stream):
        detector = streaming(votes_needed=2, vote_window=3)
        genuine = [w for w in labeled_stream.windows if not w.altered]
        altered = [w for w in labeled_stream.windows if w.altered]
        attack_start = len(genuine)
        opened_at = None
        for i, window in enumerate(genuine + altered):
            detector.process_window(window)
            if detector.under_attack() and opened_at is None:
                opened_at = i
        assert opened_at is not None
        assert opened_at - attack_start <= detector.votes_needed + 1

    def test_under_attack_flag(self, streaming, labeled_stream):
        detector = streaming(votes_needed=1, vote_window=1)
        altered = [w for w in labeled_stream.windows if w.altered]
        detector.process_window(altered[0])
        # With k=n=1 a positive window opens immediately (if classified +).
        if detector.detector.classify_window(altered[0]):
            assert detector.under_attack()

    def test_two_attack_bursts_two_episodes(self, streaming, labeled_stream):
        """Separated attack bursts must surface as separate episodes."""
        detector = streaming(votes_needed=2, vote_window=3)
        genuine = [w for w in labeled_stream.windows if not w.altered]
        altered = [w for w in labeled_stream.windows if w.altered]
        half = len(altered) // 2
        # burst - long quiet gap - burst
        sequence = (
            altered[:half] + genuine * 2 + altered[half:]
        )
        for window in sequence:
            detector.process_window(window)
        detector.finish()
        # At least two episodes, and they don't overlap the quiet gap's
        # middle (allowing edge effects at the burst boundaries).
        assert len(detector.episodes) >= 2
        gap_mid = half + len(genuine)
        for episode in detector.episodes:
            assert not (
                episode.start_index <= gap_mid <= episode.end_index
            ) or episode.n_windows > len(genuine)

    def test_episode_start_points_into_the_burst(self, streaming, labeled_stream):
        detector = streaming(votes_needed=2, vote_window=3)
        genuine = [w for w in labeled_stream.windows if not w.altered]
        altered = [w for w in labeled_stream.windows if w.altered]
        for window in genuine + altered:
            detector.process_window(window)
        final = detector.finish()
        assert final is not None
        # The episode cannot start earlier than the voting horizon allows
        # before the true attack onset.
        assert final.start_index >= len(genuine) - detector.vote_window

    def test_reset(self, streaming, labeled_stream):
        detector = streaming()
        for window in labeled_stream.windows[:5]:
            detector.process_window(window)
        detector.reset()
        assert detector.state.window_index == 0
        assert detector.episodes == []
        assert not detector.under_attack()

    def test_parameter_validation(self, trained_detectors):
        base = trained_detectors[DetectorVersion.REDUCED]
        with pytest.raises(ValueError):
            StreamingDetector(base, votes_needed=0)
        with pytest.raises(ValueError):
            StreamingDetector(base, votes_needed=4, vote_window=3)

    def test_episode_validation(self):
        with pytest.raises(ValueError):
            AttackEpisode(
                start_index=5,
                end_index=3,
                start_time_s=15.0,
                end_time_s=9.0,
                peak_decision_value=1.0,
            )


class _ScriptedDetector:
    """Duck-typed stand-in whose decision values follow a fixed script.

    Windows are plain integer indexes into the script, which makes every
    debouncer boundary condition reproducible without training a model.
    """

    window_s = 3.0

    def __init__(self, values):
        self.values = [float(v) for v in values]

    def decision_value(self, window):
        return self.values[window]

    def decision_values(self, stream):
        return np.array([self.values[w] for w in stream])

    def iter_decision_values(self, stream, chunk_size=None):
        indexes = list(stream)
        chunk_size = chunk_size or 4  # small default: exercise chunking
        for start in range(0, len(indexes), chunk_size):
            yield self.decision_values(indexes[start : start + chunk_size])


class TestDebouncerEpisodeBoundaries:
    """Regression tests for the episode peak / boundary bugfixes."""

    def _run(self, values, votes_needed, vote_window):
        detector = StreamingDetector(
            _ScriptedDetector(values),
            votes_needed=votes_needed,
            vote_window=vote_window,
        )
        for index in range(len(values)):
            detector.process_window(index)
        detector.finish()
        return detector.episodes

    def test_peak_seeded_from_opening_horizon(self):
        """An earlier horizon positive can outscore the triggering window.

        Script: 0.9 (positive), -1.0, 0.2 (positive) with k=2, n=3.  The
        episode opens at window 2; its peak must be 0.9 -- the horizon's
        best positive -- not the triggering window's 0.2.
        """
        episodes = self._run([0.9, -1.0, 0.2], votes_needed=2, vote_window=3)
        assert len(episodes) == 1
        assert episodes[0].start_index == 0
        assert episodes[0].peak_decision_value == 0.9

    def test_peak_excludes_closing_window(self):
        """The window whose zero-vote horizon closes an episode lies at
        end_index + 1, outside the episode -- its value must not count."""
        episodes = self._run([0.5, -0.3], votes_needed=1, vote_window=1)
        assert len(episodes) == 1
        assert episodes[0].start_index == 0
        assert episodes[0].end_index == 0
        assert episodes[0].peak_decision_value == 0.5

    def test_k_of_n_opening_index(self):
        """The episode starts at the earliest positive inside the horizon
        that triggered it, not at the triggering window."""
        episodes = self._run(
            [-1.0, 0.3, -1.0, 0.4], votes_needed=2, vote_window=3
        )
        assert len(episodes) == 1
        assert episodes[0].start_index == 1
        assert episodes[0].peak_decision_value == 0.4

    def test_finish_closes_open_episode(self):
        episodes = self._run([0.5, 0.6], votes_needed=1, vote_window=1)
        assert len(episodes) == 1
        assert episodes[0].start_index == 0
        assert episodes[0].end_index == 1
        assert episodes[0].peak_decision_value == 0.6

    def test_peak_tracks_maximum_inside_episode(self):
        episodes = self._run(
            [0.2, 0.8, 0.4, -0.1, -0.2, -0.3],
            votes_needed=2,
            vote_window=3,
        )
        assert len(episodes) == 1
        assert episodes[0].peak_decision_value == 0.8

    def test_process_stream_matches_window_loop(self):
        values = [0.2, 0.8, -0.4, -0.1, 0.5, 0.6, -1.0, -1.0, -1.0, 0.3]
        serial = StreamingDetector(
            _ScriptedDetector(values), votes_needed=2, vote_window=3
        )
        for index in range(len(values)):
            serial.process_window(index)
        serial.finish()

        batched = StreamingDetector(
            _ScriptedDetector(values), votes_needed=2, vote_window=3
        )
        closed = batched.process_stream(range(len(values)))
        # process_stream returns exactly the episodes closed mid-stream...
        assert closed == batched.episodes
        batched.finish()
        # ...and after finish() the histories agree completely.
        assert batched.episodes == serial.episodes


class TestSerialization:
    def test_round_trip_preserves_decisions(
        self, trained_detectors, labeled_stream
    ):
        for version, detector in trained_detectors.items():
            text = detector_to_json(detector)
            restored = detector_from_json(text)
            assert restored.version is version
            assert restored.subject_id == detector.subject_id
            for window in labeled_stream.windows[:8]:
                assert restored.decision_value(window) == pytest.approx(
                    detector.decision_value(window)
                )

    def test_file_round_trip(self, trained_detectors, tmp_path):
        detector = trained_detectors[DetectorVersion.REDUCED]
        path = tmp_path / "model.json"
        save_detector(detector, path)
        restored = load_detector(path)
        assert restored.version is DetectorVersion.REDUCED

    def test_restored_detector_deploys(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        restored = detector_from_json(detector_to_json(detector))
        model = restored.deploy()
        assert np.array_equal(model.weights_q, detector.deploy().weights_q)

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError, match="unfitted"):
            detector_to_json(SIFTDetector())

    def test_rbf_rejected(self, train_record, train_donors):
        detector = SIFTDetector(version="reduced", kernel="rbf")
        detector.fit(train_record, train_donors)
        with pytest.raises(ValueError, match="linear"):
            detector_to_json(detector)

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a serialized"):
            detector_from_json('{"format": "something-else"}')

    def test_corrupt_shapes_rejected(self, trained_detectors):
        import json

        text = detector_to_json(trained_detectors[DetectorVersion.REDUCED])
        document = json.loads(text)
        document["svm"]["coef"] = [1.0, 2.0]  # wrong length
        with pytest.raises(ValueError, match="corrupt"):
            detector_from_json(json.dumps(document))

    def test_json_is_human_auditable(self, trained_detectors):
        text = detector_to_json(trained_detectors[DetectorVersion.SIMPLIFIED])
        assert '"version": "simplified"' in text
        assert '"grid_n": 50' in text

    def test_numpy_scalar_intercept_serializes(
        self, trained_detectors, labeled_stream
    ):
        """Regression: a np.float64 intercept_ must not break json.dumps,
        and the round-tripped model must score windows identically."""
        import copy

        detector = copy.deepcopy(trained_detectors[DetectorVersion.SIMPLIFIED])
        detector.svc.intercept_ = np.float64(detector.svc.intercept_)
        text = detector_to_json(detector)  # raised TypeError before the fix
        restored = detector_from_json(text)
        batched = restored.decision_values(labeled_stream)
        assert np.array_equal(batched, detector.decision_values(labeled_stream))
        for window in labeled_stream.windows[:5]:
            assert restored.decision_value(window) == detector.decision_value(
                window
            )


class TestTrainingConfigRoundTrip:
    """Regression: the training configuration (kernel, gamma, SVM seed)
    must survive every save -> load -> export path.  Before these keys
    existed, a reloaded detector silently carried seed 0 and the default
    gamma -- invisible until someone refit or exported it."""

    def test_document_records_training_config(self, trained_detectors):
        import json

        document = json.loads(
            detector_to_json(trained_detectors[DetectorVersion.SIMPLIFIED])
        )
        meta = document["detector"]
        assert meta["kernel"] == "linear"
        assert meta["gamma"] == 0.5
        assert meta["seed"] == 0

    def test_seed_and_gamma_round_trip(self, train_record, train_donors):
        detector = SIFTDetector(version="reduced", gamma=0.125, seed=9)
        detector.fit(train_record, train_donors)
        restored = detector_from_json(detector_to_json(detector))
        assert restored.gamma == 0.125
        assert restored.svc.seed == 9
        assert restored.kernel_name == "linear"

    def test_old_documents_without_keys_still_load(self, trained_detectors):
        """Documents written before the keys existed load with the old
        implicit defaults -- same behaviour, now explicit."""
        import json

        document = json.loads(
            detector_to_json(trained_detectors[DetectorVersion.REDUCED])
        )
        for key in ("kernel", "gamma", "seed"):
            del document["detector"][key]
        restored = detector_from_json(json.dumps(document))
        assert restored.kernel_name == "linear"
        assert restored.gamma == 0.5
        assert restored.svc.seed == 0

    def test_load_detector_platform_parameter(
        self, trained_detectors, labeled_stream, tmp_path
    ):
        """``platform`` is a runtime choice threaded through loading, not
        model state; scores stay bit-identical either way."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        path = tmp_path / "model.json"
        save_detector(detector, path)
        as_numpy = load_detector(path)
        as_native = load_detector(path, platform="native")
        assert as_numpy.platform == "numpy"
        assert as_native.platform == "native"
        expected = detector.decision_values(labeled_stream)
        assert np.array_equal(as_numpy.decision_values(labeled_stream), expected)
        # Native either activates (parity-checked) or falls back; both
        # must reproduce the reference bit-for-bit.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore", RuntimeWarning)
            values = as_native.decision_values(labeled_stream)
        assert np.array_equal(values, expected)

    def test_gamma_threads_from_experiment_config(self):
        """ExperimentConfig.svm_gamma reaches the detector constructor
        (the silent-default bug this sweep fixed)."""
        from repro.experiments import ExperimentConfig

        config = ExperimentConfig.quick(kernel="rbf", svm_gamma=0.03125)
        assert config.svm_gamma == 0.03125
        detector = SIFTDetector(
            version="reduced", kernel=config.kernel, gamma=config.svm_gamma
        )
        assert detector.gamma == 0.03125
        assert detector.svc.kernel.gamma == 0.03125

    def test_rbf_gamma_changes_decisions(self, train_record, train_donors):
        """End-to-end: two RBF detectors differing only in gamma must not
        score identically (before the fix both silently used 0.5)."""
        values = {}
        for gamma in (0.05, 2.0):
            detector = SIFTDetector(version="reduced", kernel="rbf", gamma=gamma)
            detector.fit(train_record, train_donors)
            windows = [train_record.window(i * 1080, 1080) for i in range(4)]
            values[gamma] = detector.decision_values(windows)
        assert not np.array_equal(values[0.05], values[2.0])
