"""Tests for the three version extractors as wholes."""

import numpy as np
import pytest

from repro.core.features import (
    OriginalFeatureExtractor,
    ReducedFeatureExtractor,
    SimplifiedFeatureExtractor,
)
from repro.core.portrait import build_portrait
from repro.core.versions import DetectorVersion, make_extractor

ALL_EXTRACTORS = [
    OriginalFeatureExtractor,
    SimplifiedFeatureExtractor,
    ReducedFeatureExtractor,
]


# A module-scoped fixture may depend on the session-scoped stream.
@pytest.fixture(scope="module")
def sample_portraits(labeled_stream):
    return [build_portrait(w) for w in labeled_stream.windows[:6]]


class TestExtractorContracts:
    @pytest.mark.parametrize("cls", ALL_EXTRACTORS)
    def test_vector_length_matches_names(self, cls, sample_portraits):
        extractor = cls()
        for portrait in sample_portraits:
            features = extractor.extract(portrait)
            assert features.shape == (extractor.n_features,)
            assert np.isfinite(features).all()

    @pytest.mark.parametrize("cls", ALL_EXTRACTORS)
    def test_deterministic(self, cls, sample_portraits):
        extractor = cls()
        a = extractor.extract(sample_portraits[0])
        b = extractor.extract(sample_portraits[0])
        assert np.array_equal(a, b)

    def test_feature_counts(self):
        assert OriginalFeatureExtractor().n_features == 8
        assert SimplifiedFeatureExtractor().n_features == 8
        assert ReducedFeatureExtractor().n_features == 5

    def test_libm_flags(self):
        assert OriginalFeatureExtractor.requires_libm is True
        assert SimplifiedFeatureExtractor.requires_libm is False
        assert ReducedFeatureExtractor.requires_libm is False

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            OriginalFeatureExtractor(grid_n=1)


class TestCrossVersionRelations:
    def test_simplified_variance_is_square_of_original_std(self, sample_portraits):
        original = OriginalFeatureExtractor().extract(sample_portraits[0])
        simplified = SimplifiedFeatureExtractor().extract(sample_portraits[0])
        assert simplified[1] == pytest.approx(original[1] ** 2, rel=1e-9)

    def test_auc_identical_across_versions(self, sample_portraits):
        original = OriginalFeatureExtractor().extract(sample_portraits[0])
        simplified = SimplifiedFeatureExtractor().extract(sample_portraits[0])
        assert simplified[2] == pytest.approx(original[2], rel=1e-9)

    def test_sfi_identical_across_versions(self, sample_portraits):
        original = OriginalFeatureExtractor().extract(sample_portraits[0])
        simplified = SimplifiedFeatureExtractor().extract(sample_portraits[0])
        assert simplified[0] == pytest.approx(original[0], rel=1e-9)

    def test_reduced_equals_simplified_geometric_tail(self, sample_portraits):
        for portrait in sample_portraits:
            simplified = SimplifiedFeatureExtractor().extract(portrait)
            reduced = ReducedFeatureExtractor().extract(portrait)
            assert np.allclose(reduced, simplified[3:])

    def test_squared_distances_consistent_with_original(self, sample_portraits):
        """Squared-distance features are the squares only per-point; check
        the single-pair case explicitly via a portrait with one pair."""
        portrait = sample_portraits[0]
        if len(portrait.peak_pairs) == 1:
            original = OriginalFeatureExtractor().extract(portrait)
            simplified = SimplifiedFeatureExtractor().extract(portrait)
            assert simplified[7] == pytest.approx(original[7] ** 2, rel=1e-6)


class TestAffineInvariance:
    """Min-max normalization makes every feature invariant to sensor gain
    and offset -- the property that lets one model serve uncalibrated
    hardware.  Verified as a hypothesis property over random affine maps."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        ecg_gain=st.floats(0.1, 50.0),
        ecg_offset=st.floats(-100.0, 100.0),
        abp_gain=st.floats(0.1, 50.0),
        abp_offset=st.floats(-100.0, 100.0),
    )
    def test_property_features_gain_offset_invariant(
        self, labeled_stream, ecg_gain, ecg_offset, abp_gain, abp_offset
    ):
        import numpy as np

        from repro.signals.dataset import SignalWindow

        window = labeled_stream.windows[0]
        scaled = SignalWindow(
            ecg=window.ecg * ecg_gain + ecg_offset,
            abp=window.abp * abp_gain + abp_offset,
            r_peaks=window.r_peaks,
            systolic_peaks=window.systolic_peaks,
            sample_rate=window.sample_rate,
        )
        for cls in ALL_EXTRACTORS:
            extractor = cls()
            original = extractor.extract_window(window)
            transformed = extractor.extract_window(scaled)
            np.testing.assert_allclose(
                transformed, original, rtol=1e-6, atol=1e-7
            )


class TestMakeExtractor:
    def test_maps_versions(self):
        assert isinstance(
            make_extractor(DetectorVersion.ORIGINAL), OriginalFeatureExtractor
        )
        assert isinstance(
            make_extractor(DetectorVersion.SIMPLIFIED), SimplifiedFeatureExtractor
        )
        assert isinstance(
            make_extractor(DetectorVersion.REDUCED), ReducedFeatureExtractor
        )

    def test_grid_propagates(self):
        assert make_extractor(DetectorVersion.ORIGINAL, grid_n=25).grid_n == 25

    def test_extract_many_shape(self, labeled_stream):
        extractor = make_extractor(DetectorVersion.SIMPLIFIED)
        X = extractor.extract_many(list(labeled_stream.windows[:4]))
        assert X.shape == (4, 8)

    def test_extract_many_empty(self):
        extractor = make_extractor(DetectorVersion.REDUCED)
        assert extractor.extract_many([]).shape == (0, 5)
