"""Tests for matrix and geometric feature primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.features.geometric import (
    average_paired_distance,
    average_peak_angle,
    average_peak_distance,
)
from repro.core.features.matrix import (
    auc_composite,
    auc_trapezoid,
    column_averages,
    spatial_filling_index,
)
from repro.core.features.simplified import (
    SLOPE_EPSILON,
    average_peak_slope,
    average_squared_paired_distance,
    average_squared_peak_distance,
)


class TestSpatialFillingIndex:
    def test_uniform_matrix_is_one(self):
        assert spatial_filling_index(np.ones((50, 50))) == pytest.approx(1.0)

    def test_concentrated_matrix_is_n_squared(self):
        matrix = np.zeros((10, 10))
        matrix[3, 7] = 42
        assert spatial_filling_index(matrix) == pytest.approx(100.0)

    def test_empty_matrix_is_zero(self):
        assert spatial_filling_index(np.zeros((10, 10))) == 0.0

    def test_scale_invariant(self):
        matrix = np.random.default_rng(0).integers(0, 9, size=(20, 20))
        assert spatial_filling_index(matrix) == pytest.approx(
            spatial_filling_index(matrix * 7)
        )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            spatial_filling_index(np.zeros((3, 4)))

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(2, 30), seed=st.integers(0, 9999))
    def test_property_bounds(self, n, seed):
        matrix = np.random.default_rng(seed).integers(0, 5, size=(n, n))
        if matrix.sum() == 0:
            return
        sfi = spatial_filling_index(matrix)
        assert 1.0 - 1e-9 <= sfi <= n * n + 1e-9


class TestColumnAverages:
    def test_shape_and_values(self):
        matrix = np.array([[1, 2], [3, 4]])
        assert np.allclose(column_averages(matrix), [2.0, 3.0])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            column_averages(np.array([1, 2, 3]))


class TestAUC:
    def test_trapezoid_of_constant(self):
        assert auc_trapezoid(np.full(11, 2.0)) == pytest.approx(20.0)

    def test_composite_equals_trapezoid(self):
        """The paper's composite-sum formula IS the trapezoid rule."""
        curve = np.random.default_rng(0).random(50)
        assert auc_composite(curve) == pytest.approx(auc_trapezoid(curve))

    def test_short_curves(self):
        assert auc_trapezoid(np.array([1.0])) == 0.0
        assert auc_composite(np.array([1.0])) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        curve=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=60)
    )
    def test_property_agreement(self, curve):
        curve = np.array(curve)
        assert auc_composite(curve) == pytest.approx(
            auc_trapezoid(curve), rel=1e-9, abs=1e-9
        )


class TestGeometricOriginal:
    def test_average_angle_of_known_points(self):
        points = np.array([[1.0, 1.0], [1.0, 0.0]])  # 45 deg and 0 deg
        assert average_peak_angle(points) == pytest.approx(np.pi / 8)

    def test_average_distance(self):
        points = np.array([[3.0, 4.0], [0.0, 1.0]])
        assert average_peak_distance(points) == pytest.approx(3.0)

    def test_paired_distance(self):
        r = np.array([[0.0, 0.0], [1.0, 1.0]])
        s = np.array([[3.0, 4.0], [1.0, 1.0]])
        assert average_paired_distance(r, s) == pytest.approx(2.5)

    def test_empty_inputs_yield_zero(self):
        empty = np.empty((0, 2))
        assert average_peak_angle(empty) == 0.0
        assert average_peak_distance(empty) == 0.0
        assert average_paired_distance(empty, empty) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            average_peak_angle(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            average_paired_distance(np.zeros((2, 2)), np.zeros((3, 2)))


class TestGeometricSimplified:
    def test_slope_is_tangent_of_angle(self):
        points = np.array([[0.5, 0.25]])
        assert average_peak_slope(points) == pytest.approx(0.5)

    def test_slope_clamps_near_zero_x(self):
        points = np.array([[0.0, 1.0]])
        assert average_peak_slope(points) == pytest.approx(1.0 / SLOPE_EPSILON)

    def test_squared_distance(self):
        points = np.array([[3.0, 4.0]])
        assert average_squared_peak_distance(points) == pytest.approx(25.0)

    def test_squared_paired_distance(self):
        r = np.array([[0.0, 0.0]])
        s = np.array([[3.0, 4.0]])
        assert average_squared_paired_distance(r, s) == pytest.approx(25.0)

    def test_squared_is_square_of_original_for_single_point(self):
        point = np.array([[0.6, 0.8]])
        assert average_squared_peak_distance(point) == pytest.approx(
            average_peak_distance(point) ** 2
        )

    def test_empty_inputs_yield_zero(self):
        empty = np.empty((0, 2))
        assert average_peak_slope(empty) == 0.0
        assert average_squared_peak_distance(empty) == 0.0
        assert average_squared_paired_distance(empty, empty) == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        pts=st.lists(
            st.tuples(st.floats(0.01, 1.0), st.floats(0.0, 1.0)),
            min_size=1,
            max_size=10,
        )
    )
    def test_property_slope_matches_atan(self, pts):
        """For portrait-range points, slope = tan(angle) per point."""
        points = np.array(pts)
        slopes = points[:, 1] / points[:, 0]
        assert average_peak_slope(points) == pytest.approx(
            float(np.mean(slopes)), rel=1e-9
        )
