"""Tests for portrait construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.portrait import Portrait, build_portrait, normalize_signal
from repro.signals.dataset import SignalWindow


def _window(ecg, abp, r=(), s=(), fs=360.0):
    return SignalWindow(
        ecg=np.asarray(ecg, dtype=np.float64),
        abp=np.asarray(abp, dtype=np.float64),
        r_peaks=np.asarray(r, dtype=np.intp),
        systolic_peaks=np.asarray(s, dtype=np.intp),
        sample_rate=fs,
    )


class TestNormalizeSignal:
    def test_maps_to_unit_interval(self):
        out = normalize_signal(np.array([2.0, 4.0, 6.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_flat_signal_maps_to_half(self):
        assert np.allclose(normalize_signal(np.full(5, 3.0)), 0.5)

    @settings(max_examples=50, deadline=None)
    @given(
        x=hnp.arrays(
            np.float64,
            shape=st.integers(1, 200),
            elements=st.floats(-1e6, 1e6),
        )
    )
    def test_property_bounded(self, x):
        out = normalize_signal(x)
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)


class TestBuildPortrait:
    def test_coordinates_are_normalized_signals(self, labeled_stream):
        window = labeled_stream.windows[0]
        portrait = build_portrait(window)
        assert np.allclose(portrait.x, normalize_signal(window.abp))
        assert np.allclose(portrait.y, normalize_signal(window.ecg))

    def test_pairs_follow_match_rule(self):
        window = _window(
            np.sin(np.arange(1080) / 30.0),
            np.cos(np.arange(1080) / 30.0),
            r=[100, 500],
            s=[180, 590, 1000],
        )
        portrait = build_portrait(window)
        assert portrait.peak_pairs == ((100, 180), (500, 590))

    def test_r_peak_points_shape(self, labeled_stream):
        portrait = build_portrait(labeled_stream.windows[0])
        points = portrait.r_peak_points()
        assert points.shape == (portrait.r_peaks.size, 2)
        assert np.all((points >= 0) & (points <= 1))

    def test_paired_points_empty_when_no_pairs(self):
        window = _window(np.arange(100.0), np.arange(100.0))
        portrait = build_portrait(window)
        r_pts, s_pts = portrait.paired_peak_points()
        assert r_pts.shape == (0, 2)
        assert s_pts.shape == (0, 2)


class TestOccupancyMatrix:
    def test_counts_sum_to_points(self, labeled_stream):
        portrait = build_portrait(labeled_stream.windows[0])
        matrix = portrait.occupancy_matrix(50)
        assert matrix.shape == (50, 50)
        assert matrix.sum() == portrait.n_points

    def test_known_placement(self):
        """Columns index the ECG axis, rows the ABP axis."""
        portrait = Portrait(
            x=np.array([0.0, 0.99]),  # ABP -> rows 0 and 49
            y=np.array([0.99, 0.0]),  # ECG -> cols 49 and 0
            r_peaks=np.array([], dtype=np.intp),
            systolic_peaks=np.array([], dtype=np.intp),
            peak_pairs=(),
        )
        matrix = portrait.occupancy_matrix(50)
        assert matrix[0, 49] == 1
        assert matrix[49, 0] == 1
        assert matrix.sum() == 2

    def test_boundary_value_lands_in_last_cell(self):
        portrait = Portrait(
            x=np.array([1.0]),
            y=np.array([1.0]),
            r_peaks=np.array([], dtype=np.intp),
            systolic_peaks=np.array([], dtype=np.intp),
            peak_pairs=(),
        )
        matrix = portrait.occupancy_matrix(10)
        assert matrix[9, 9] == 1

    def test_rejects_bad_grid(self):
        portrait = build_portrait(_window(np.arange(10.0), np.arange(10.0)))
        with pytest.raises(ValueError):
            portrait.occupancy_matrix(0)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 60),
        size=st.integers(1, 300),
        seed=st.integers(0, 10_000),
    )
    def test_property_total_preserved(self, n, size, seed):
        rng = np.random.default_rng(seed)
        portrait = Portrait(
            x=rng.random(size),
            y=rng.random(size),
            r_peaks=np.array([], dtype=np.intp),
            systolic_peaks=np.array([], dtype=np.intp),
            peak_pairs=(),
        )
        matrix = portrait.occupancy_matrix(n)
        assert matrix.sum() == size
        assert np.all(matrix >= 0)
