"""Tests for training-set construction and the SIFTDetector API."""

import numpy as np
import pytest

from repro.core.detector import SIFTDetector
from repro.core.training import TrainingSet, build_training_set
from repro.core.versions import DetectorVersion, make_extractor
from repro.ml.model_codegen import FixedPointLinearModel


class TestBuildTrainingSet:
    def test_balanced_classes(self, train_record, train_donors):
        extractor = make_extractor(DetectorVersion.SIMPLIFIED)
        ts = build_training_set(extractor, train_record, train_donors)
        assert ts.n_positive == ts.n_negative
        assert ts.n_samples == ts.n_positive * 2
        assert ts.X.shape == (ts.n_samples, 8)
        assert ts.feature_names == extractor.feature_names

    def test_window_count(self, train_record, train_donors):
        extractor = make_extractor(DetectorVersion.REDUCED)
        ts = build_training_set(
            extractor, train_record, train_donors, window_s=3.0
        )
        expected = int(train_record.duration // 3.0)
        assert ts.n_negative == expected

    def test_stride_increases_samples(self, train_record, train_donors):
        extractor = make_extractor(DetectorVersion.REDUCED)
        dense = build_training_set(
            extractor, train_record, train_donors, stride_s=1.5
        )
        sparse = build_training_set(extractor, train_record, train_donors)
        assert dense.n_samples > sparse.n_samples

    def test_requires_donors(self, train_record):
        extractor = make_extractor(DetectorVersion.REDUCED)
        with pytest.raises(ValueError, match="donor"):
            build_training_set(extractor, train_record, [])

    def test_training_set_validation(self):
        with pytest.raises(ValueError):
            TrainingSet(
                X=np.zeros((4, 2)),
                y=np.zeros(3, dtype=bool),
                feature_names=("a", "b"),
            )
        with pytest.raises(ValueError):
            TrainingSet(
                X=np.zeros((4, 2)),
                y=np.zeros(4, dtype=bool),
                feature_names=("a",),
            )


class TestSIFTDetector:
    def test_version_accepts_string(self):
        detector = SIFTDetector(version="reduced")
        assert detector.version is DetectorVersion.REDUCED

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unknown detector version"):
            SIFTDetector(version="tiny")

    def test_unfitted_raises(self, labeled_stream):
        detector = SIFTDetector()
        with pytest.raises(RuntimeError, match="not fitted"):
            detector.classify_window(labeled_stream.windows[0])

    @pytest.mark.parametrize("version", list(DetectorVersion))
    def test_fitted_detector_beats_chance(
        self, version, trained_detectors, labeled_stream
    ):
        report = trained_detectors[version].evaluate(labeled_stream)
        assert report.accuracy > 0.7

    def test_decision_value_sign_is_classification(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        window = labeled_stream.windows[0]
        assert detector.classify_window(window) == (
            detector.decision_value(window) >= 0.0
        )

    def test_inspect_stream_alerts_match_positive_predictions(
        self, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        predictions, log = detector.inspect_stream(labeled_stream)
        assert len(log) == int(predictions.sum())
        assert log.window_indices == list(np.flatnonzero(predictions))
        for alert in log:
            assert alert.version == "simplified"
            assert alert.decision_value >= 0.0

    def test_deploy_produces_fixed_point_model(self, trained_detectors):
        model = trained_detectors[DetectorVersion.SIMPLIFIED].deploy()
        assert isinstance(model, FixedPointLinearModel)
        assert model.n_features == 8

    def test_deploy_reduced_has_five_weights(self, trained_detectors):
        assert trained_detectors[DetectorVersion.REDUCED].deploy().n_features == 5

    def test_fit_training_set_feature_mismatch(self, train_record, train_donors):
        extractor = make_extractor(DetectorVersion.REDUCED)
        ts = build_training_set(extractor, train_record, train_donors)
        detector = SIFTDetector(version="original")  # expects 8 features
        with pytest.raises(ValueError, match="features"):
            detector.fit_training_set(ts)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SIFTDetector(window_s=0.0)

    def test_subject_id_recorded(self, trained_detectors, train_record):
        detector = trained_detectors[DetectorVersion.ORIGINAL]
        assert detector.subject_id == train_record.subject_id

    def test_rbf_kernel_cannot_deploy(self, train_record, train_donors):
        detector = SIFTDetector(version="reduced", kernel="rbf")
        detector.fit(train_record, train_donors)
        with pytest.raises(ValueError, match="linear"):
            detector.deploy()
