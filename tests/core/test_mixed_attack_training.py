"""Tests for attack-diverse training (the broader-threat-model extension)."""

import numpy as np
import pytest

from repro.attacks import (
    AttackScenario,
    InterferenceInjectionAttack,
    MorphologyInjectionAttack,
    ReplacementAttack,
)
from repro.core import SIFTDetector
from repro.core.training import build_training_set
from repro.core.versions import DetectorVersion, make_extractor


@pytest.fixture(scope="module")
def mixed_detector(train_record, train_donors):
    """Simplified detector trained against three attack classes."""
    detector = SIFTDetector(version="simplified")
    detector.fit(
        train_record,
        train_donors,
        attacks=[
            ReplacementAttack(train_donors),
            InterferenceInjectionAttack(amplitude=1.0),
            MorphologyInjectionAttack(),
        ],
    )
    return detector


class TestMixedAttackTrainingSet:
    def test_round_robin_keeps_balance(self, train_record, train_donors):
        extractor = make_extractor(DetectorVersion.REDUCED)
        ts = build_training_set(
            extractor,
            train_record,
            train_donors,
            attacks=[
                ReplacementAttack(train_donors),
                InterferenceInjectionAttack(),
            ],
        )
        assert ts.n_positive == ts.n_negative

    def test_empty_attack_list_rejected(self, train_record, train_donors):
        extractor = make_extractor(DetectorVersion.REDUCED)
        with pytest.raises(ValueError, match="at least one attack"):
            build_training_set(
                extractor, train_record, train_donors, attacks=[]
            )

    def test_default_still_requires_donors(self, train_record):
        extractor = make_extractor(DetectorVersion.REDUCED)
        with pytest.raises(ValueError, match="donor"):
            build_training_set(extractor, train_record, [])

    def test_attacks_without_donors_allowed(self, train_record):
        """Injection attacks need no donor material."""
        extractor = make_extractor(DetectorVersion.REDUCED)
        ts = build_training_set(
            extractor,
            train_record,
            [],
            attacks=[InterferenceInjectionAttack()],
        )
        assert ts.n_positive > 0


class TestMixedAttackDetection:
    def test_closes_the_interference_blind_spot(
        self, mixed_detector, trained_detectors, test_record, rng
    ):
        """A replacement-only model largely misses low-amplitude
        interference; training on it fixes that."""
        narrow = trained_detectors[DetectorVersion.SIMPLIFIED]
        scenario = AttackScenario(InterferenceInjectionAttack(amplitude=1.0))
        stream = scenario.build(test_record, np.random.default_rng(9))
        narrow_report = narrow.evaluate(stream)
        mixed_report = mixed_detector.evaluate(stream)
        assert (
            mixed_report.false_negative_rate
            < narrow_report.false_negative_rate
        )
        assert mixed_report.accuracy > narrow_report.accuracy

    def test_replacement_detection_degrades_boundedly(
        self, mixed_detector, test_record, test_donor_records, rng
    ):
        """Diluting the replacement positives to a third of the class
        costs replacement accuracy (the coverage-vs-specialization
        trade-off the ablation bench quantifies) but must stay clearly
        above chance on this short training fixture."""
        scenario = AttackScenario(ReplacementAttack(test_donor_records))
        stream = scenario.build(test_record, np.random.default_rng(10))
        report = mixed_detector.evaluate(stream)
        assert report.accuracy > 0.6
        assert report.false_positive_rate < 0.2

    def test_false_positives_stay_bounded(self, mixed_detector, dataset, victim):
        record = dataset.record(victim, 60.0, purpose="extra")
        windows = [
            record.window(i * 1080, 1080)
            for i in range(record.n_samples // 1080)
        ]
        flagged = sum(mixed_detector.classify_window(w) for w in windows)
        assert flagged / len(windows) < 0.35
