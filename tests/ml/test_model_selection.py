"""Tests for cross-validation and grid search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.baselines import NearestCentroid
from repro.ml.model_selection import (
    cross_validate,
    grid_search_c,
    stratified_folds,
)
from repro.ml.svm import SVC


def _blobs(n=80, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(loc=gap, scale=0.6, size=(n // 2, 3))
    neg = rng.normal(loc=-gap, scale=0.6, size=(n // 2, 3))
    X = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n // 2, dtype=bool), np.zeros(n // 2, dtype=bool)])
    return X, y


class TestStratifiedFolds:
    def test_partition_properties(self):
        y = np.array([True] * 20 + [False] * 30)
        folds = stratified_folds(y, 5, np.random.default_rng(0))
        all_indices = np.concatenate(folds)
        assert sorted(all_indices.tolist()) == list(range(50))
        for fold in folds:
            positives = int(y[fold].sum())
            assert positives == 4  # 20 positives / 5 folds
            assert fold.size == 10

    def test_uneven_classes(self):
        y = np.array([True] * 7 + [False] * 13)
        folds = stratified_folds(y, 3, np.random.default_rng(1))
        per_fold_pos = [int(y[f].sum()) for f in folds]
        assert max(per_fold_pos) - min(per_fold_pos) <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            stratified_folds(np.array([True, False]), 1)
        with pytest.raises(ValueError, match="stratify"):
            stratified_folds(np.array([True] + [False] * 20), 3)

    @settings(max_examples=25, deadline=None)
    @given(
        n_pos=st.integers(5, 40),
        n_neg=st.integers(5, 40),
        n_folds=st.integers(2, 5),
        seed=st.integers(0, 999),
    )
    def test_property_partition(self, n_pos, n_neg, n_folds, seed):
        if min(n_pos, n_neg) < n_folds:
            return
        y = np.array([True] * n_pos + [False] * n_neg)
        folds = stratified_folds(y, n_folds, np.random.default_rng(seed))
        joined = np.concatenate(folds)
        assert joined.size == y.size
        assert np.array_equal(np.sort(joined), np.arange(y.size))


class TestCrossValidate:
    def test_separable_data_scores_high(self):
        X, y = _blobs()
        result = cross_validate(lambda: SVC(), X, y, n_folds=4)
        assert result.mean_accuracy > 0.95
        assert len(result.fold_accuracies) == 4
        assert result.std_accuracy < 0.2

    def test_works_with_baselines(self):
        X, y = _blobs(seed=3)
        result = cross_validate(NearestCentroid, X, y, n_folds=4)
        assert result.mean_accuracy > 0.9

    def test_random_labels_score_near_chance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 4))
        y = rng.random(100) < 0.5
        result = cross_validate(lambda: SVC(max_iter=30), X, y, n_folds=4)
        assert result.mean_accuracy < 0.75


class TestGridSearchC:
    def test_returns_scores_for_every_value(self):
        X, y = _blobs()
        result = grid_search_c(X, y, c_values=(0.1, 1.0, 10.0), n_folds=3)
        assert set(result.scores) == {0.1, 1.0, 10.0}
        assert result.best_value in result.scores
        assert result.best_result.mean_accuracy == max(
            r.mean_accuracy for r in result.scores.values()
        )

    def test_tie_breaks_toward_small_c(self):
        """On perfectly separable data every C wins; the search must pick
        the most regularized model."""
        X, y = _blobs(gap=4.0)
        result = grid_search_c(X, y, c_values=(0.1, 1.0, 10.0), n_folds=3)
        perfect = [
            c
            for c, r in result.scores.items()
            if r.mean_accuracy == result.best_result.mean_accuracy
        ]
        assert result.best_value == min(perfect)

    def test_rejects_empty_grid(self):
        X, y = _blobs()
        with pytest.raises(ValueError):
            grid_search_c(X, y, c_values=())

    def test_on_real_sift_features(self, train_record, train_donors):
        from repro.core.training import build_training_set
        from repro.core.versions import DetectorVersion, make_extractor

        extractor = make_extractor(DetectorVersion.REDUCED)
        ts = build_training_set(extractor, train_record, train_donors)
        result = grid_search_c(ts.X, ts.y, c_values=(0.3, 1.0), n_folds=3)
        assert result.best_result.mean_accuracy > 0.7
