"""Tests for the baseline classifiers."""

import numpy as np
import pytest

from repro.ml.baselines import KNearestNeighbors, LogisticRegression, NearestCentroid


def _blobs(n=60, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(loc=gap, scale=0.5, size=(n // 2, 2))
    neg = rng.normal(loc=-gap, scale=0.5, size=(n // 2, 2))
    X = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n // 2, dtype=bool), np.zeros(n // 2, dtype=bool)])
    return X, y


@pytest.mark.parametrize(
    "factory",
    [LogisticRegression, lambda: KNearestNeighbors(k=5), NearestCentroid],
    ids=["logistic", "knn", "centroid"],
)
class TestAllBaselines:
    def test_learns_separable_blobs(self, factory):
        X, y = _blobs()
        clf = factory().fit(X, y)
        assert np.mean(clf.predict_bool(X) == y) == 1.0

    def test_decision_sign_matches_prediction(self, factory):
        X, y = _blobs(seed=4)
        clf = factory().fit(X, y)
        values = clf.decision_function(X)
        assert np.array_equal(values >= 0, clf.predict_bool(X))

    def test_unfitted_raises(self, factory):
        with pytest.raises(RuntimeError):
            factory().decision_function(np.zeros((1, 2)))


class TestLogisticRegression:
    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_regularization_shrinks_weights(self):
        X, y = _blobs()
        loose = LogisticRegression(l2=1e-6).fit(X, y)
        tight = LogisticRegression(l2=1.0).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)


class TestKNearestNeighbors:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNearestNeighbors(k=0)

    def test_needs_k_samples(self):
        with pytest.raises(ValueError):
            KNearestNeighbors(k=5).fit(np.zeros((3, 2)), np.array([1, 0, 1]))

    def test_k1_memorizes(self):
        X, y = _blobs(seed=2)
        clf = KNearestNeighbors(k=1).fit(X, y)
        assert np.array_equal(clf.predict_bool(X), y)


class TestNearestCentroid:
    def test_centroids_are_class_means(self):
        X, y = _blobs(seed=1)
        clf = NearestCentroid().fit(X, y)
        assert np.allclose(clf.centroid_pos_, X[y].mean(axis=0))
        assert np.allclose(clf.centroid_neg_, X[~y].mean(axis=0))

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            NearestCentroid().fit(np.zeros((4, 2)), np.ones(4, dtype=bool))
