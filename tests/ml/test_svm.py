"""Tests for the SMO support vector classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.kernels import LinearKernel, RBFKernel
from repro.ml.svm import SVC, _canonical_labels


def _blobs(n=60, gap=2.0, seed=0):
    rng = np.random.default_rng(seed)
    pos = rng.normal(loc=gap, scale=0.5, size=(n // 2, 2))
    neg = rng.normal(loc=-gap, scale=0.5, size=(n // 2, 2))
    X = np.vstack([pos, neg])
    y = np.concatenate([np.ones(n // 2), -np.ones(n // 2)])
    return X, y


class TestCanonicalLabels:
    def test_bool(self):
        assert np.array_equal(
            _canonical_labels(np.array([True, False])), [1.0, -1.0]
        )

    def test_zero_one(self):
        assert np.array_equal(_canonical_labels(np.array([0, 1, 0])), [-1, 1, -1])

    def test_pm_one_passthrough(self):
        assert np.array_equal(_canonical_labels(np.array([-1, 1])), [-1.0, 1.0])

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError):
            _canonical_labels(np.array([0, 1, 2]))


class TestSVCLinear:
    def test_separates_blobs(self):
        X, y = _blobs()
        svc = SVC(C=1.0).fit(X, y)
        assert np.mean(svc.predict(X) == y) == 1.0

    def test_primal_weights_available(self):
        X, y = _blobs()
        svc = SVC().fit(X, y)
        assert svc.coef_ is not None
        assert svc.coef_.shape == (2,)
        # Primal and dual decision functions agree.
        dual = svc.kernel(X, svc.support_vectors_) @ svc.dual_coef_ + svc.intercept_
        primal = X @ svc.coef_ + svc.intercept_
        assert np.allclose(dual, primal, atol=1e-8)

    def test_margin_geometry(self):
        """The separating direction points from the negative to the positive blob."""
        X, y = _blobs(gap=3.0)
        svc = SVC().fit(X, y)
        direction = svc.coef_ / np.linalg.norm(svc.coef_)
        assert direction @ np.array([1.0, 1.0]) / np.sqrt(2) > 0.9

    def test_accepts_boolean_labels(self):
        X, y = _blobs()
        svc = SVC().fit(X, y > 0)
        assert np.array_equal(svc.predict_bool(X), y > 0)

    def test_decision_function_sign_matches_predict(self):
        X, y = _blobs()
        svc = SVC().fit(X, y)
        values = svc.decision_function(X)
        assert np.array_equal(values >= 0, svc.predict(X) == 1)

    def test_single_sample_prediction(self):
        X, y = _blobs()
        svc = SVC().fit(X, y)
        assert svc.decision_function(X[0]).shape == (1,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SVC().decision_function(np.zeros((1, 2)))

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            SVC().fit(np.zeros((4, 2)), np.ones(4))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            SVC().fit(np.zeros((4, 2)), np.ones(3))

    def test_rejects_1d_X(self):
        with pytest.raises(ValueError):
            SVC().fit(np.zeros(4), np.ones(4))

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(ValueError):
            SVC(C=0.0)
        with pytest.raises(ValueError):
            SVC(tol=-1.0)

    def test_deterministic_given_seed(self):
        X, y = _blobs()
        a = SVC(seed=1).fit(X, y)
        b = SVC(seed=1).fit(X, y)
        assert np.allclose(a.coef_, b.coef_)
        assert a.intercept_ == pytest.approx(b.intercept_)

    def test_soft_margin_tolerates_label_noise(self):
        X, y = _blobs(n=80, gap=1.5, seed=3)
        y_noisy = y.copy()
        y_noisy[:4] *= -1  # flip a few labels
        svc = SVC(C=1.0).fit(X, y_noisy)
        # Still learns the underlying structure.
        assert np.mean(svc.predict(X) == y) > 0.9


class TestSVCRBF:
    def test_solves_xor(self):
        """Linearly inseparable data needs the RBF kernel."""
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(120, 2))
        y = np.where(X[:, 0] * X[:, 1] > 0, 1.0, -1.0)
        rbf = SVC(C=10.0, kernel=RBFKernel(gamma=2.0)).fit(X, y)
        assert np.mean(rbf.predict(X) == y) > 0.9
        linear = SVC(C=10.0).fit(X, y)
        assert np.mean(linear.predict(X) == y) < 0.75

    def test_no_primal_weights(self):
        X, y = _blobs()
        svc = SVC(kernel=RBFKernel()).fit(X, y)
        assert svc.coef_ is None

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_predictions_are_binary(self, seed):
        X, y = _blobs(n=30, seed=seed)
        svc = SVC(max_iter=30).fit(X, y)
        assert set(np.unique(svc.predict(X))) <= {-1, 1}


class TestKernels:
    def test_linear_is_dot_product(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        assert LinearKernel()(a, b)[0, 0] == pytest.approx(11.0)

    def test_rbf_diagonal_is_one(self):
        X = np.random.default_rng(0).normal(size=(5, 3))
        K = RBFKernel(gamma=1.0)(X, X)
        assert np.allclose(np.diag(K), 1.0)
        assert np.all(K <= 1.0 + 1e-12)
        assert np.allclose(K, K.T)

    def test_rbf_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            RBFKernel(gamma=0.0)
