"""Tests for feature standardization and the paper's metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.metrics import (
    ClassificationCounts,
    DetectionReport,
    mean_report,
    score_predictions,
)
from repro.ml.scaler import StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        X = np.random.default_rng(0).normal(loc=5.0, scale=3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_not_scaled(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        scaler = StandardScaler().fit(X)
        Z = scaler.transform(X)
        assert np.allclose(Z[:, 0], 0.0)
        assert np.isfinite(Z).all()

    def test_inverse_roundtrip(self):
        X = np.random.default_rng(1).normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_single_row(self):
        X = np.random.default_rng(2).normal(size=(20, 3))
        scaler = StandardScaler().fit(X)
        assert scaler.transform(X[0]).shape == (1, 3)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((1, 2)))

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((5, 4)))

    def test_rejects_empty_fit(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.empty((0, 3)))

    @settings(max_examples=30, deadline=None)
    @given(
        X=hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(2, 30), st.integers(1, 6)),
            elements=st.floats(-1e6, 1e6),
        )
    )
    def test_property_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        back = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(back, X, rtol=1e-6, atol=1e-6)


class TestScorePredictions:
    def test_perfect_predictions(self):
        actual = np.array([True, True, False, False])
        report = score_predictions(actual, actual)
        assert report.accuracy == 1.0
        assert report.false_positive_rate == 0.0
        assert report.false_negative_rate == 0.0
        assert report.f1 == 1.0

    def test_hand_computed_case(self):
        predicted = np.array([True, True, True, False, False, False])
        actual = np.array([True, False, True, True, False, False])
        report = score_predictions(predicted, actual)
        # TP=2 FP=1 FN=1 TN=2
        assert report.accuracy == pytest.approx(4 / 6)
        assert report.false_positive_rate == pytest.approx(1 / 3)
        assert report.false_negative_rate == pytest.approx(1 / 3)
        assert report.f1 == pytest.approx(2 / 3)

    def test_all_negative_truth_fn_zero(self):
        predicted = np.array([False, True])
        actual = np.array([False, False])
        report = score_predictions(predicted, actual)
        assert report.false_negative_rate == 0.0
        assert report.false_positive_rate == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            score_predictions(np.array([True]), np.array([True, False]))

    def test_percent_row(self):
        report = DetectionReport(0.05, 0.1, 0.925, 0.92)
        assert report.as_percent_row() == (5.0, 10.0, 92.5, 92.0)

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(1, 100),
        seed=st.integers(0, 10_000),
    )
    def test_property_rates_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        predicted = rng.random(n) < 0.5
        actual = rng.random(n) < 0.5
        report = score_predictions(predicted, actual)
        for value in (
            report.accuracy,
            report.false_positive_rate,
            report.false_negative_rate,
            report.f1,
        ):
            assert 0.0 <= value <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 60), seed=st.integers(0, 10_000))
    def test_property_accuracy_complements_errors(self, n, seed):
        rng = np.random.default_rng(seed)
        predicted = rng.random(n) < 0.5
        actual = rng.random(n) < 0.5
        report = score_predictions(predicted, actual)
        positives = int(actual.sum())
        negatives = n - positives
        errors = (
            report.false_negative_rate * positives
            + report.false_positive_rate * negatives
        )
        assert report.accuracy == pytest.approx(1.0 - errors / n)


class TestMeanReport:
    def test_averages_fields(self):
        a = DetectionReport(0.0, 0.2, 0.9, 0.9)
        b = DetectionReport(0.1, 0.0, 0.95, 0.94)
        mean = mean_report([a, b])
        assert mean.false_positive_rate == pytest.approx(0.05)
        assert mean.false_negative_rate == pytest.approx(0.1)
        assert mean.accuracy == pytest.approx(0.925)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_report([])


class TestClassificationCounts:
    def test_total(self):
        counts = ClassificationCounts(1, 2, 3, 4)
        assert counts.total == 10

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ClassificationCounts(-1, 0, 0, 0)
