"""Tests for fixed-point model export and C code generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.model_codegen import (
    _INT32_MAX,
    _INT32_MIN,
    FixedPointLinearModel,
    export_fixed_point,
)
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    X = np.vstack(
        [
            rng.normal(loc=2.0, scale=0.8, size=(60, 5)),
            rng.normal(loc=-1.0, scale=0.8, size=(60, 5)),
        ]
    )
    y = np.concatenate([np.ones(60, dtype=bool), np.zeros(60, dtype=bool)])
    scaler = StandardScaler()
    svc = SVC().fit(scaler.fit_transform(X), y)
    return X, y, scaler, svc


class TestExportFixedPoint:
    def test_folded_model_matches_float_pipeline(self, trained):
        X, _, scaler, svc = trained
        model = export_fixed_point(svc, scaler, frac_bits=14)
        for x in X[:20]:
            float_score = float(svc.decision_function(scaler.transform(x))[0])
            fixed_score = model.decision_float(x)
            assert fixed_score == pytest.approx(float_score, abs=0.05)

    def test_predictions_agree_away_from_boundary(self, trained):
        X, _, scaler, svc = trained
        model = export_fixed_point(svc, scaler, frac_bits=14)
        scores = svc.decision_function(scaler.transform(X))
        confident = np.abs(scores) > 0.2
        fixed = np.array(
            [model.predict_bool_fixed(model.quantize(x)) for x in X]
        )
        assert np.array_equal(fixed[confident], (scores >= 0)[confident])

    def test_more_bits_less_error(self, trained):
        X, _, scaler, svc = trained
        float_scores = svc.decision_function(scaler.transform(X))

        def max_error(bits: int) -> float:
            model = export_fixed_point(svc, scaler, frac_bits=bits)
            fixed = np.array([model.decision_float(x) for x in X])
            return float(np.max(np.abs(fixed - float_scores)))

        assert max_error(20) < max_error(6)

    def test_rejects_rbf_model(self, trained):
        X, y, scaler, _ = trained
        from repro.ml.kernels import RBFKernel

        rbf = SVC(kernel=RBFKernel()).fit(scaler.transform(X), y)
        with pytest.raises(ValueError, match="linear"):
            export_fixed_point(rbf, scaler)

    def test_rejects_unfitted_scaler(self, trained):
        _, _, _, svc = trained
        with pytest.raises(ValueError, match="fitted"):
            export_fixed_point(svc, StandardScaler())


class TestFixedPointLinearModel:
    def test_quantize_dequantize_roundtrip(self):
        model = FixedPointLinearModel(
            weights_q=np.array([1, 2, 3]), bias_q=0, frac_bits=10
        )
        values = np.array([0.5, -1.25, 3.75])
        back = model.dequantize(model.quantize(values))
        assert np.allclose(back, values, atol=1.0 / (1 << 10))

    def test_saturation_clamps_quantization(self):
        model = FixedPointLinearModel(
            weights_q=np.array([1]), bias_q=0, frac_bits=20
        )
        q = model.quantize(np.array([1e9]))
        assert q[0] == 2**31 - 1

    def test_feature_count_enforced(self):
        model = FixedPointLinearModel(
            weights_q=np.array([1, 2]), bias_q=0, frac_bits=8
        )
        with pytest.raises(ValueError):
            model.decision_fixed(np.array([1, 2, 3]))

    def test_rejects_bad_frac_bits(self):
        with pytest.raises(ValueError):
            FixedPointLinearModel(
                weights_q=np.array([1]), bias_q=0, frac_bits=0
            )
        with pytest.raises(ValueError):
            FixedPointLinearModel(
                weights_q=np.array([1]), bias_q=0, frac_bits=31
            )

    def test_c_source_structure(self, trained):
        _, _, scaler, svc = trained
        model = export_fixed_point(svc, scaler, frac_bits=14)
        source = model.to_c_source("my_classify")
        assert "int my_classify(const int32_t features" in source
        assert f"#define SIFT_N_FEATURES {model.n_features}" in source
        assert f">> {model.frac_bits}" in source
        assert str(int(model.bias_q)) in source
        for weight in model.weights_q:
            assert str(int(weight)) in source

    def test_code_size_scales_with_features(self):
        small = FixedPointLinearModel(np.array([1] * 5), 0, 14)
        big = FixedPointLinearModel(np.array([1] * 8), 0, 14)
        assert big.code_size_bytes > small.code_size_bytes

    @settings(max_examples=40, deadline=None)
    @given(
        frac_bits=st.integers(4, 24),
        values=st.lists(
            st.floats(-50.0, 50.0), min_size=3, max_size=3
        ),
    )
    def test_property_quantization_error_bounded(self, frac_bits, values):
        model = FixedPointLinearModel(
            weights_q=np.array([0, 0, 0]), bias_q=0, frac_bits=frac_bits
        )
        values = np.array(values)
        error = np.abs(model.dequantize(model.quantize(values)) - values)
        assert np.all(error <= 0.5 / (1 << frac_bits) + 1e-12)


def _c_like_decision(model: FixedPointLinearModel, features_q) -> int:
    """Emulate the emitted C accumulation with explicit int64 machine ops.

    ``to_c_source`` emits ``((int64_t)w * x) >> frac_bits``: a 64-bit
    product and an *arithmetic* right shift (the MSP430/GCC behaviour on
    signed values, i.e. floor division by ``2**frac_bits``).  Here the
    product lives in an ``np.int64`` and the shift is
    ``np.right_shift`` -- NumPy's arithmetic shift on signed integers --
    so any truncation-vs-floor mismatch in the Python reference would
    show up as a parity break on negative products.
    """
    acc = np.int64(int(model.bias_q))
    for w, x in zip(model.weights_q.tolist(), np.asarray(features_q).tolist()):
        product = np.int64(w) * np.int64(x)
        term = np.right_shift(product, np.int64(model.frac_bits))
        acc = np.int64(np.clip(int(acc) + int(term), _INT32_MIN, _INT32_MAX))
    return int(acc)


class TestFixedPointCParity:
    """``decision_fixed`` must floor like the emitted C, not truncate.

    Python's ``>>`` on negative ints is arithmetic (floor division), the
    same semantics as the C target; truncation toward zero -- what
    ``int(w * x / 2**n)`` would compute -- differs by one on every
    negative product that is not an exact multiple of ``2**frac_bits``.
    These vectors are built to hit exactly those products.
    """

    @pytest.mark.parametrize("frac_bits", [8, 14, 30])
    def test_adversarial_negative_products(self, frac_bits):
        # Odd-magnitude weights/features so w*x never divides 2**frac_bits;
        # signs arranged to produce negative products in every position.
        weights = np.array([-3, 5, -(2**frac_bits) - 1, 7, -1], dtype=np.int64)
        features = np.array([1, -(2**frac_bits // 2 + 1), 3, -5, 2**frac_bits + 3],
                            dtype=np.int64)
        assert all(int(w) * int(x) < 0 for w, x in zip(weights, features))
        assert all(
            (int(w) * int(x)) % (1 << frac_bits) != 0
            for w, x in zip(weights, features)
        )
        model = FixedPointLinearModel(
            weights_q=weights, bias_q=11, frac_bits=frac_bits
        )
        assert model.decision_fixed(features) == _c_like_decision(model, features)

    @pytest.mark.parametrize("frac_bits", [8, 14, 30])
    def test_floor_not_truncation(self, frac_bits):
        """The one-feature case where floor and truncation disagree."""
        model = FixedPointLinearModel(
            weights_q=np.array([-3]), bias_q=0, frac_bits=frac_bits
        )
        value = model.decision_fixed(np.array([1]))
        assert value == -1  # floor(-3 / 2**n); truncation would give 0
        assert value == _c_like_decision(model, np.array([1]))

    def test_saturation_matches_c_clamp(self):
        """Large same-sign products drive both paths into the int32 rails."""
        model = FixedPointLinearModel(
            weights_q=np.array([_INT32_MAX, _INT32_MAX]), bias_q=0, frac_bits=8
        )
        features = np.array([_INT32_MAX, _INT32_MAX], dtype=np.int64)
        assert model.decision_fixed(features) == _INT32_MAX
        assert _c_like_decision(model, features) == _INT32_MAX
        negated = -features
        assert model.decision_fixed(negated) == _INT32_MIN
        assert _c_like_decision(model, negated) == _INT32_MIN

    @settings(max_examples=200, deadline=None)
    @given(
        frac_bits=st.sampled_from([8, 14, 30]),
        weights=st.lists(
            st.integers(_INT32_MIN, _INT32_MAX), min_size=1, max_size=6
        ),
        data=st.data(),
    )
    def test_property_parity_on_int32_range(self, frac_bits, weights, data):
        features = data.draw(
            st.lists(
                st.integers(_INT32_MIN, _INT32_MAX),
                min_size=len(weights),
                max_size=len(weights),
            )
        )
        bias = data.draw(st.integers(_INT32_MIN, _INT32_MAX))
        model = FixedPointLinearModel(
            weights_q=np.array(weights, dtype=np.int64),
            bias_q=bias,
            frac_bits=frac_bits,
        )
        features = np.array(features, dtype=np.int64)
        assert model.decision_fixed(features) == _c_like_decision(model, features)


class TestCDoubleLiteral:
    """Exact round-trips for C double literals (the native codegen's
    number formatting).  Hex-float (C99 ``0x1.8p+1``) literals carry the
    full 53-bit significand, so re-parsing must reproduce the float64
    bit pattern -- including the cases ``repr`` formatting historically
    got wrong in C (negative zero, subnormals, 17-significant-digit
    values)."""

    def _bits(self, value: float) -> bytes:
        return np.float64(value).tobytes()

    @pytest.mark.parametrize(
        "value",
        [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            5e-324,  # smallest subnormal
            -5e-324,
            2.2250738585072014e-308,  # smallest normal
            1.7976931348623157e308,  # largest finite
            0.30000000000000004,  # classic 17-digit round-trip case
            1.0 / 3.0,
            float(np.nextafter(1.0, 2.0)),
        ],
    )
    def test_round_trip_is_bit_exact(self, value):
        from repro.ml.model_codegen import c_double_literal, parse_c_double_literal

        literal = c_double_literal(value)
        assert self._bits(parse_c_double_literal(literal)) == self._bits(value)

    def test_negative_zero_keeps_its_sign(self):
        from repro.ml.model_codegen import c_double_literal, parse_c_double_literal

        back = parse_c_double_literal(c_double_literal(-0.0))
        assert np.signbit(back)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, bad):
        from repro.ml.model_codegen import c_double_literal

        with pytest.raises(ValueError):
            c_double_literal(bad)

    @settings(max_examples=200, deadline=None)
    @given(
        value=st.floats(allow_nan=False, allow_infinity=False, width=64)
    )
    def test_property_round_trip(self, value):
        from repro.ml.model_codegen import c_double_literal, parse_c_double_literal

        literal = c_double_literal(value)
        assert self._bits(parse_c_double_literal(literal)) == self._bits(value)

    def test_literal_is_c99_hex_float(self):
        import re

        from repro.ml.model_codegen import c_double_literal

        pattern = re.compile(r"^-?0x[01]\.?[0-9a-f]*p[+-]\d+$")
        for value in (0.5, -3.25, 1e17, 5e-324, -0.0):
            assert pattern.match(c_double_literal(value)), c_double_literal(value)


class TestFixedPointSourceLiterals:
    """Audit: the device C (fixed-point) must contain no floating-point
    literals at all -- every constant is an exact integer, so nothing can
    round-trip inexactly through the emitted source."""

    def test_only_integer_literals(self, trained):
        import re

        from repro.analysis.c_checker import tokenize_c

        _, _, scaler, svc = trained
        source = export_fixed_point(svc, scaler, frac_bits=14).to_c_source()
        # Comments may say "Q17.14"; the audit is over code tokens only.
        for token in tokenize_c(source):
            assert not re.match(r"^\d+\.|^\d+[eE]", token.text), token

    def test_integer_constants_round_trip(self, trained):
        import re

        _, _, scaler, svc = trained
        model = export_fixed_point(svc, scaler, frac_bits=14)
        source = model.to_c_source()
        emitted = {int(m) for m in re.findall(r"-?\b\d+\b", source)}
        for weight in model.weights_q:
            assert int(weight) in emitted
        assert int(model.bias_q) in emitted
