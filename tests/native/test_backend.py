"""Behavioural tests of the native backend machinery itself: the
capability probe, the numpy fallback when no toolchain exists, the
artifact cache, and pickling across process boundaries."""

from __future__ import annotations

import copy
import pickle
import warnings

import numpy as np
import pytest

from repro.core import SIFTDetector
from repro.core.detector import PLATFORMS
from repro.core.versions import DetectorVersion
from repro.native import (
    cache_dir,
    compile_flags,
    compile_hot_path,
    find_compiler,
    generate_hot_path_source,
    native_status,
)


class TestPlatformParameter:
    def test_platforms_constant(self):
        assert PLATFORMS == ("numpy", "native")

    def test_rejects_unknown_platform(self):
        with pytest.raises(ValueError, match="platform"):
            SIFTDetector(platform="gpu")

    def test_numpy_platform_never_builds(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        assert detector.platform == "numpy"
        assert not detector.native_active
        assert detector.native_error is None


class TestFallback:
    def test_no_compiler_falls_back_with_warning(
        self, monkeypatch, trained_detectors, labeled_stream
    ):
        """No toolchain: one RuntimeWarning, then numpy-identical scores."""
        monkeypatch.setattr(
            "repro.native.backend.find_compiler", lambda: None
        )
        reference = trained_detectors[DetectorVersion.SIMPLIFIED]
        detector = copy.deepcopy(reference)
        detector.platform = "native"
        with pytest.warns(RuntimeWarning, match="falling back"):
            values = detector.decision_values(labeled_stream)
        assert not detector.native_active
        assert "compiler" in detector.native_error
        assert np.array_equal(values, reference.decision_values(labeled_stream))
        # The failure is remembered: later batches neither warn nor retry.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = detector.decision_values(labeled_stream)
        assert np.array_equal(again, values)

    def test_rbf_kernel_falls_back(self, train_record, train_donors):
        """RBF has no primal weight vector, so there is nothing to
        generate code from -- numpy fallback, not an exception."""
        detector = SIFTDetector(
            version="simplified", kernel="rbf", platform="native"
        )
        detector.fit(train_record, train_donors)
        with pytest.warns(RuntimeWarning, match="linear"):
            assert not detector.native_active

    def test_native_status_reports_reason(self, monkeypatch):
        monkeypatch.setattr(
            "repro.native.backend.find_compiler", lambda: None
        )
        available, reason = native_status(DetectorVersion.SIMPLIFIED)
        assert not available
        assert "compiler" in reason


@pytest.mark.skipif(
    find_compiler() is None, reason="no C compiler on this host"
)
class TestBuildCache:
    def test_artifact_is_cached(self):
        version = DetectorVersion.REDUCED
        source = generate_hot_path_source(
            version,
            50,
            np.linspace(-1.0, 1.0, 5),
            0.125,
            np.zeros(5),
            np.ones(5),
        )
        first = compile_hot_path(source, version)
        assert first.exists()
        stamp = first.stat().st_mtime_ns
        second = compile_hot_path(source, version)
        assert second == first
        assert second.stat().st_mtime_ns == stamp  # no recompile
        assert first.parent == cache_dir()

    def test_flags_pin_fp_contract(self):
        """FMA contraction would silently break bit parity; every tier
        must compile with it off."""
        for version in DetectorVersion:
            assert "-ffp-contract=off" in compile_flags(version)
            assert "-O2" in compile_flags(version)


class TestPickling:
    def test_pickled_native_detector_rebuilds(self, trained_detectors):
        """Pickling drops the library handle (it cannot cross processes);
        the unpickled detector rebuilds from the artifact cache and keeps
        scoring bit-identically -- the supervised-gateway contract."""
        version = DetectorVersion.SIMPLIFIED
        available, reason = native_status(version)
        if not available:
            pytest.skip(f"native backend unavailable: {reason}")
        reference = trained_detectors[version]
        native = copy.deepcopy(reference)
        native.platform = "native"
        assert native.native_active
        clone = pickle.loads(pickle.dumps(native))
        assert clone.platform == "native"
        assert clone._native_scorer is None  # handle dropped
        windows = [
            SignalWindowFactory.simple(i) for i in range(4)
        ]
        assert clone.native_active  # rebuilt (cache hit)
        assert np.array_equal(
            clone.decision_values(windows), reference.decision_values(windows)
        )


class SignalWindowFactory:
    """Small deterministic windows for the pickling test."""

    @staticmethod
    def simple(seed: int):
        from repro.signals.dataset import SignalWindow

        rng = np.random.default_rng(900 + seed)
        n = 96
        return SignalWindow(
            ecg=rng.standard_normal(n),
            abp=80.0 + 10.0 * rng.standard_normal(n),
            r_peaks=np.asarray([7, 40, 77], dtype=np.intp),
            systolic_peaks=np.asarray([12, 46], dtype=np.intp),
            sample_rate=125.0,
        )
