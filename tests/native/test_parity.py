"""Bit-parity of the generated-C native scoring core against NumPy.

The ``platform="native"`` contract is not "close": every decision value
must be bit-identical to the NumPy reference path -- the same contract
the batch path already honours against the scalar path.  These tests
drive both paths over hypothesis-generated windows (arbitrary signals,
arbitrary peak sets, ragged lengths) and the shared labelled stream,
and compare with ``np.array_equal`` (no tolerance).

Skips per tier when the host cannot build that tier (no C compiler, or
no SVML atan2 for Original); the fallback behaviour itself is covered
in ``test_backend.py``.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.native import native_status
from repro.signals.dataset import SignalWindow

pytestmark = pytest.mark.filterwarnings("error::RuntimeWarning")


@pytest.fixture(scope="module")
def detector_pairs(trained_detectors):
    """Per-tier (numpy, native) copies of the session detectors.

    The session fixtures are immutable, so each tier gets deep copies;
    the native copy's extension is built once here (module scope) and
    reused by every example.
    """
    pairs = {}
    for version, detector in trained_detectors.items():
        available, reason = native_status(version)
        if not available:
            continue
        reference = copy.deepcopy(detector)
        native = copy.deepcopy(detector)
        native.platform = "native"
        assert native.native_active, native.native_error
        pairs[version] = (reference, native)
    if not pairs:
        pytest.skip("native backend unavailable on this host")
    return pairs


def _window(ecg, abp, r, s, rate=125.0):
    return SignalWindow(
        ecg=np.asarray(ecg, dtype=np.float64),
        abp=np.asarray(abp, dtype=np.float64),
        r_peaks=np.asarray(sorted(set(r)), dtype=np.intp),
        systolic_peaks=np.asarray(sorted(set(s)), dtype=np.intp),
        sample_rate=rate,
    )


@st.composite
def windows(draw, min_n: int = 1, max_n: int = 120):
    n = draw(st.integers(min_n, max_n))
    rate = draw(st.sampled_from([40.0, 125.0, 360.0]))
    sample = st.floats(
        min_value=-50.0, max_value=50.0, allow_nan=False, width=64
    )
    ecg = draw(st.lists(sample, min_size=n, max_size=n))
    abp = draw(st.lists(sample, min_size=n, max_size=n))
    peak = st.integers(0, n - 1)
    r = draw(st.lists(peak, max_size=10))
    s = draw(st.lists(peak, max_size=10))
    return _window(ecg, abp, r, s, rate)


def _assert_parity(pairs, stream):
    for version, (reference, native) in pairs.items():
        expected = reference.decision_values(stream)
        actual = native.decision_values(stream)
        assert actual.dtype == expected.dtype
        assert np.array_equal(actual, expected), (
            f"{version.value}: native diverged from numpy "
            f"(max |diff| {np.abs(actual - expected).max()})"
        )


@settings(max_examples=40, deadline=None)
@given(stream=st.lists(windows(), min_size=1, max_size=4))
def test_native_matches_numpy_on_arbitrary_windows(detector_pairs, stream):
    """Property: bit parity on ragged streams of arbitrary windows."""
    _assert_parity(detector_pairs, stream)


def test_native_matches_numpy_on_labelled_stream(detector_pairs, labeled_stream):
    """Parity on the shared realistic evaluation stream."""
    _assert_parity(detector_pairs, list(labeled_stream.windows))


def test_native_matches_scalar_path(detector_pairs, labeled_stream):
    """Native must equal the per-window scalar path too (transitively
    guaranteed by batch==scalar, asserted directly here)."""
    for _, (reference, native) in detector_pairs.items():
        scalar = np.array(
            [reference.decision_value(w) for w in labeled_stream.windows]
        )
        assert np.array_equal(native.decision_values(labeled_stream), scalar)


def test_peaks_edge_cases(detector_pairs):
    """No peaks, all-sample peaks, and boundary peaks score identically."""
    n = 64
    t = np.linspace(0.0, 4.0, n)
    ecg = np.sin(2 * np.pi * 1.3 * t)
    abp = 80.0 + 20.0 * np.cos(2 * np.pi * 1.3 * t - 0.4)
    stream = [
        _window(ecg, abp, [], []),
        _window(ecg, abp, [0, n - 1], [n - 1]),
        _window(ecg, abp, range(n), range(n)),
        _window(ecg, abp, [5, 20, 40], []),
        _window(ecg, abp, [], [5, 20, 40]),
    ]
    _assert_parity(detector_pairs, stream)


def test_degenerate_windows(detector_pairs):
    """Flat, constant, tiny, and antisymmetric windows score identically."""
    stream = [
        _window(np.zeros(32), np.zeros(32), [], []),
        _window(np.full(32, 1.0), np.full(32, 7.5), [3], [4]),
        _window([0.25], [1.5], [0], [0]),
        _window([1.0, -1.0], [-2.0, 2.0], [0, 1], [1]),
        _window(np.linspace(-1, 1, 16), np.linspace(1, -1, 16), [0], [15]),
    ]
    _assert_parity(detector_pairs, stream)


def test_empty_stream(detector_pairs):
    for _, (reference, native) in detector_pairs.items():
        expected = reference.decision_values([])
        actual = native.decision_values([])
        assert actual.shape == expected.shape == (0,)


def test_chunk_boundary_invariance(detector_pairs, labeled_stream):
    """Chunked native scoring is invariant to the chunk size and equals
    the one-shot NumPy scores at every chunk size."""
    stream = list(labeled_stream.windows)
    for _, (reference, native) in detector_pairs.items():
        expected = reference.decision_values(stream)
        for chunk_size in (1, 7, len(stream)):
            chunked = np.concatenate(
                list(native.iter_decision_values(iter(stream), chunk_size))
            )
            assert np.array_equal(chunked, expected), f"chunk={chunk_size}"


def test_non_default_grid_n(train_record, train_donors):
    """Parity holds for a non-default occupancy grid size (the grid
    dimension is baked into the generated C as a constant)."""
    version = DetectorVersion.SIMPLIFIED
    available, reason = native_status(version)
    if not available:
        pytest.skip(f"native backend unavailable: {reason}")
    reference = SIFTDetector(version=version, grid_n=17)
    reference.fit(train_record, train_donors)
    native = copy.deepcopy(reference)
    native.platform = "native"
    assert native.native_active, native.native_error
    windows = [
        train_record.window(i * 1080, 1080) for i in range(8)
    ]
    assert np.array_equal(
        native.decision_values(windows), reference.decision_values(windows)
    )


def test_reduced_nan_windows_fall_back_bit_identically(detector_pairs):
    """The Reduced tier propagates NaN instead of raising; the native
    path must route NaN windows to the fallback and match bit-for-bit
    (including the NaN payload)."""
    if DetectorVersion.REDUCED not in detector_pairs:
        pytest.skip("reduced tier unavailable")
    reference, native = detector_pairs[DetectorVersion.REDUCED]
    nan_ecg = np.full(32, np.nan)
    good = np.linspace(0.0, 1.0, 32)
    stream = [
        _window(good, good + 1.0, [2, 20], [5]),
        _window(nan_ecg, good, [2], [5]),
        _window(good, good, [1], [2]),
    ]
    expected = reference.decision_values(stream)
    actual = native.decision_values(stream)
    assert np.array_equal(actual, expected, equal_nan=True)
    assert np.isnan(actual[1])
