"""Tests for the companion apps and multi-app coexistence."""

import numpy as np
import pytest

from repro.amulet.amulet_os import AmuletOS
from repro.amulet.firmware import FirmwareToolchain
from repro.amulet.sensors import Accelerometer, LightSensor, TemperatureSensor
from repro.apps import HeartRateApp, PedometerApp
from repro.core.versions import DetectorVersion
from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.harness import deploy_model
from repro.sift_app.payload import DeviceWindow


class TestInternalSensors:
    def test_accelerometer_step_structure(self, rng):
        accel = Accelerometer(cadence_hz=2.0)
        batch = accel.sample(0.0, 10.0, rng)
        assert batch.samples.shape == (500, 3)
        assert batch.duration_s == pytest.approx(10.0)
        magnitude = np.linalg.norm(batch.samples, axis=1)
        # Gravity baseline plus step impulses.
        assert 0.9 < np.median(magnitude) < 1.2
        assert magnitude.max() > 1.25

    def test_accelerometer_standing_still(self, rng):
        accel = Accelerometer(cadence_hz=0.0)
        batch = accel.sample(0.0, 5.0, rng)
        magnitude = np.linalg.norm(batch.samples, axis=1)
        assert magnitude.max() < 1.15

    def test_light_sensor_non_negative(self, rng):
        batch = LightSensor(mean_lux=5.0).sample(0.0, 30.0, rng)
        assert np.all(batch.samples >= 0.0)

    def test_temperature_near_skin(self, rng):
        batch = TemperatureSensor().sample(0.0, 60.0, rng)
        assert 31.0 < batch.samples.mean() < 35.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Accelerometer(cadence_hz=-1.0)
        with pytest.raises(ValueError):
            LightSensor(mean_lux=-1.0)


class TestPedometerApp:
    def _run(self, cadence, duration=30.0, seed=0):
        app = PedometerApp()
        os = AmuletOS(FirmwareToolchain().build([app]))
        accel = Accelerometer(cadence_hz=cadence)
        rng = np.random.default_rng(seed)
        for start in np.arange(0.0, duration, 5.0):
            os.deliver_sensor_window(app.name, accel.sample(start, 5.0, rng))
        os.run_until_idle()
        return app, os, accel

    def test_counts_steps_within_tolerance(self):
        app, _, accel = self._run(cadence=1.8, duration=30.0)
        expected = accel.expected_steps(30.0)
        assert expected * 0.8 <= app.steps <= expected * 1.2

    def test_no_steps_when_still(self):
        app, _, _ = self._run(cadence=0.0)
        assert app.steps <= 1

    def test_displays_count(self):
        app, os, _ = self._run(cadence=2.0, duration=10.0)
        assert os.display.contains("steps")

    def test_ignores_foreign_payloads(self):
        app = PedometerApp()
        os = AmuletOS(FirmwareToolchain().build([app]))
        os.deliver_sensor_window(app.name, {"not": "a batch"})
        os.run_until_idle()
        assert app.ignored_batches == 1
        assert app.steps == 0


class TestHeartRateApp:
    def test_estimates_rate_from_windows(self, labeled_stream):
        app = HeartRateApp()
        os = AmuletOS(FirmwareToolchain().build([app]))
        for window in labeled_stream.windows:
            if not window.altered:
                os.deliver_sensor_window(
                    app.name, DeviceWindow.from_signal_window(window)
                )
        os.run_until_idle()
        assert app.heart_rate_bpm is not None
        assert 40.0 < app.heart_rate_bpm < 120.0
        assert os.display.contains("bpm")

    def test_tachycardia_alert(self, labeled_stream):
        app = HeartRateApp(tachycardia_bpm=30.0)  # absurdly low threshold
        os = AmuletOS(FirmwareToolchain().build([app]))
        window = next(w for w in labeled_stream.windows if not w.altered)
        os.deliver_sensor_window(app.name, DeviceWindow.from_signal_window(window))
        os.run_until_idle()
        assert os.display.contains("HIGH HEART RATE")

    def test_validation(self):
        with pytest.raises(ValueError):
            HeartRateApp(tachycardia_bpm=0.0)


class TestMultiAppCoexistence:
    """The paper's setting: SIFT shares the device with wellness apps."""

    @pytest.fixture()
    def loaded_os(self, trained_detectors, labeled_stream):
        sift = SIFTDetectorApp(
            DetectorVersion.REDUCED,
            deploy_model(trained_detectors[DetectorVersion.REDUCED]),
        )
        pedometer = PedometerApp()
        heart_rate = HeartRateApp()
        image = FirmwareToolchain().build([sift, pedometer, heart_rate])
        os = AmuletOS(image)
        return os, sift, pedometer, heart_rate

    def test_three_apps_fit_the_device(self, loaded_os):
        os, *_ = loaded_os
        assert os.image.total_fram_bytes <= os.hardware.mcu.fram_bytes
        assert os.image.total_sram_bytes <= os.hardware.mcu.sram_bytes

    def test_interleaved_operation(self, loaded_os, labeled_stream, rng):
        os, sift, pedometer, heart_rate = loaded_os
        accel = Accelerometer(cadence_hz=2.0)
        for i, window in enumerate(labeled_stream.windows[:10]):
            device_window = DeviceWindow.from_signal_window(window)
            os.deliver_sensor_window(sift.name, device_window)
            os.deliver_sensor_window(heart_rate.name, device_window)
            os.deliver_sensor_window(
                pedometer.name, accel.sample(3.0 * i, 3.0, rng)
            )
        os.run_until_idle()
        assert sift.windows_processed == 10
        assert heart_rate.windows_seen > 0
        assert pedometer.steps > 0

    def test_energy_attributed_per_app(self, loaded_os, labeled_stream, rng):
        os, sift, pedometer, heart_rate = loaded_os
        accel = Accelerometer(cadence_hz=2.0)
        window = DeviceWindow.from_signal_window(labeled_stream.windows[0])
        os.deliver_sensor_window(sift.name, window)
        os.deliver_sensor_window(heart_rate.name, window)
        os.deliver_sensor_window(pedometer.name, accel.sample(0.0, 3.0, rng))
        os.run_until_idle()
        cycles = os.ledger.cycles_by_app
        assert set(cycles) == {sift.name, pedometer.name, heart_rate.name}
        # The detector dominates even in its lightest build.
        assert cycles[sift.name] > cycles[heart_rate.name]
