"""Tests for R-peak and systolic-peak detection and pairing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals.dataset import SyntheticFantasia
from repro.signals.peaks import (
    detect_r_peaks,
    detect_systolic_peaks,
    match_peaks,
    peak_indices_in_window,
)

FS = 360.0


class TestDetectRPeaks:
    def test_matches_ground_truth_on_clean_record(self, dataset, victim):
        record = dataset.record(victim, 60.0, purpose="extra")
        detected = detect_r_peaks(record.ecg, FS)
        assert abs(detected.size - record.r_peaks.size) <= 1
        errors = np.abs(detected[:, None] - record.r_peaks[None, :]).min(axis=1)
        assert np.median(errors) <= 2

    def test_respects_refractory_period(self, dataset, victim):
        record = dataset.record(victim, 60.0, purpose="extra")
        detected = detect_r_peaks(record.ecg, FS, refractory_s=0.25)
        assert np.all(np.diff(detected) >= int(0.25 * FS) - int(0.06 * FS) * 2)

    def test_empty_on_flat_signal(self):
        assert detect_r_peaks(np.zeros(3600), FS).size == 0

    def test_empty_on_short_signal(self):
        assert detect_r_peaks(np.ones(10), FS).size == 0

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            detect_r_peaks(np.zeros((10, 10)), FS)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            detect_r_peaks(np.zeros(3600), 0.0)

    def test_survives_baseline_wander(self):
        t = np.arange(0, 10, 1 / FS)
        ecg = np.zeros_like(t)
        true_peaks = []
        for onset in np.arange(0.5, 9.5, 0.8):
            idx = int(onset * FS)
            ecg += 1.0 * np.exp(-0.5 * ((t - onset) / 0.012) ** 2)
            true_peaks.append(idx)
        ecg += 0.8 * np.sin(2 * np.pi * 0.3 * t)  # big wander
        detected = detect_r_peaks(ecg, FS)
        assert abs(detected.size - len(true_peaks)) <= 1


class TestDetectSystolicPeaks:
    def test_matches_ground_truth(self, dataset, victim):
        record = dataset.record(victim, 60.0, purpose="extra")
        detected = detect_systolic_peaks(record.abp, FS)
        assert abs(detected.size - record.systolic_peaks.size) <= 2
        errors = np.abs(
            detected[:, None] - record.systolic_peaks[None, :]
        ).min(axis=1)
        assert np.median(errors) <= 5

    def test_rejects_dicrotic_wave(self):
        """Only one peak per cardiac cycle despite the dicrotic bump."""
        t = np.arange(0, 10, 1 / FS)
        abp = np.full_like(t, 75.0)
        for onset in np.arange(0.3, 9.3, 0.85):
            abp += 45 * np.exp(-0.5 * ((t - onset) / 0.05) ** 2)
            abp += 12 * np.exp(-0.5 * ((t - onset - 0.25) / 0.04) ** 2)
        detected = detect_systolic_peaks(abp, FS)
        assert detected.size == pytest.approx(11, abs=1)

    def test_flat_signal(self):
        assert detect_systolic_peaks(np.full(3600, 80.0), FS).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            detect_systolic_peaks(np.zeros((5, 5)), FS)


class TestMatchPeaks:
    def test_pairs_by_physiological_lag(self):
        r = np.array([100, 400, 700])
        s = np.array([180, 480, 780])
        pairs = match_peaks(r, s, FS)
        assert pairs == [(100, 180), (400, 480), (700, 780)]

    def test_unmatched_r_at_edge(self):
        r = np.array([100, 900])
        s = np.array([180])
        assert match_peaks(r, s, FS) == [(100, 180)]

    def test_lag_limit(self):
        r = np.array([100])
        s = np.array([100 + int(0.7 * FS)])  # beyond the 0.6 s default
        assert match_peaks(r, s, FS) == []

    def test_takes_first_following_peak(self):
        r = np.array([100])
        s = np.array([150, 200])
        assert match_peaks(r, s, FS) == [(100, 150)]

    def test_empty_inputs(self):
        assert match_peaks(np.array([]), np.array([]), FS) == []

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            match_peaks(np.array([1]), np.array([2]), 0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        r=st.lists(st.integers(0, 5000), max_size=20, unique=True),
        s=st.lists(st.integers(0, 5000), max_size=20, unique=True),
    )
    def test_property_pairs_ordered_and_within_lag(self, r, s):
        pairs = match_peaks(np.array(r, dtype=int), np.array(s, dtype=int), FS)
        max_lag = int(0.6 * FS)
        for r_idx, s_idx in pairs:
            assert 0 < s_idx - r_idx <= max_lag
        # Each R peak appears at most once.
        r_used = [p[0] for p in pairs]
        assert len(r_used) == len(set(r_used))


class TestPeakIndicesInWindow:
    def test_filters_and_rebases(self):
        peaks = np.array([5, 50, 150, 250])
        assert peak_indices_in_window(peaks, 40, 200).tolist() == [10, 110]

    def test_empty(self):
        assert peak_indices_in_window(np.array([]), 0, 10).size == 0

    def test_boundaries_half_open(self):
        peaks = np.array([10, 20])
        out = peak_indices_in_window(peaks, 10, 20)
        assert out.tolist() == [0]

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            peak_indices_in_window(np.array([1]), 10, 5)
