"""Tests for the WFDB reader (round-trip against a written fixture)."""

import numpy as np
import pytest

from repro.signals.wfdb import load_record, read_header, read_signals


def _encode_212(samples: np.ndarray) -> bytes:
    """Inverse of the reader's format-212 decoder (test fixture writer)."""
    samples = np.asarray(samples, dtype=np.int32)
    if samples.size % 2:
        samples = np.append(samples, 0)
    twos = np.where(samples < 0, samples + 4096, samples).astype(np.uint32)
    first, second = twos[0::2], twos[1::2]
    out = np.empty(3 * first.size, dtype=np.uint8)
    out[0::3] = first & 0xFF
    out[1::3] = ((first >> 8) & 0x0F) | (((second >> 8) & 0x0F) << 4)
    out[2::3] = second & 0xFF
    return out.tobytes()


@pytest.fixture()
def wfdb_record_dir(tmp_path, dataset, victim):
    """A synthetic recording written out as a Fantasia-style WFDB record."""
    record = dataset.record(victim, 30.0, purpose="extra")
    fs = record.sample_rate
    n = record.n_samples

    ecg_gain, ecg_base = 500.0, 0
    abp_gain, abp_base = 10.0, -800
    ecg_adc = np.round(record.ecg * ecg_gain + ecg_base).astype(np.int32)
    abp_adc = np.round(record.abp * abp_gain + abp_base).astype(np.int32)
    assert ecg_adc.max() < 2048 and ecg_adc.min() >= -2048
    assert abp_adc.max() < 2048 and abp_adc.min() >= -2048

    interleaved = np.empty(2 * n, dtype=np.int32)
    interleaved[0::2] = ecg_adc
    interleaved[1::2] = abp_adc
    (tmp_path / "f1y01.dat").write_bytes(_encode_212(interleaved))
    (tmp_path / "f1y01.hea").write_text(
        f"f1y01 2 {fs:g} {n}\n"
        f"f1y01.dat 212 {ecg_gain:g}({ecg_base})/mV 12 0 0 0 0 ECG\n"
        f"f1y01.dat 212 {abp_gain:g}({abp_base})/mmHg 12 0 0 0 0 BP\n"
        "# synthetic fixture\n"
    )
    return tmp_path, record


class TestHeaderParsing:
    def test_fields(self, wfdb_record_dir):
        directory, record = wfdb_record_dir
        header = read_header(directory / "f1y01.hea")
        assert header.record_name == "f1y01"
        assert header.n_signals == 2
        assert header.sample_rate == record.sample_rate
        assert header.n_samples == record.n_samples
        assert header.signals[0].gain == 500.0
        assert header.signals[1].baseline == -800
        assert header.signals[1].units == "mmHg"

    def test_signal_index_by_keyword(self, wfdb_record_dir):
        directory, _ = wfdb_record_dir
        header = read_header(directory / "f1y01.hea")
        assert header.signal_index("ecg") == 0
        assert header.signal_index("bp") == 1
        with pytest.raises(KeyError):
            header.signal_index("eeg")

    def test_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.hea"
        bad.write_text("just_a_name\n")
        with pytest.raises(ValueError, match="malformed record line"):
            read_header(bad)

    def test_rejects_unsupported_format(self, tmp_path):
        hea = tmp_path / "x.hea"
        hea.write_text("x 1 250 100\nx.dat 80 200/mV 12 0 0 0 0 ECG\n")
        with pytest.raises(ValueError, match="unsupported WFDB format"):
            read_header(hea)

    def test_rejects_missing_signal_lines(self, tmp_path):
        hea = tmp_path / "x.hea"
        hea.write_text("x 2 250 100\nx.dat 212 200/mV 12 0 0 0 0 ECG\n")
        with pytest.raises(ValueError, match="signal lines"):
            read_header(hea)

    def test_counter_frequency_stripped(self, tmp_path):
        hea = tmp_path / "x.hea"
        hea.write_text("x 1 250/1000 100\nx.dat 212 200/mV 12 0 0 0 0 ECG\n")
        assert read_header(hea).sample_rate == 250.0


class TestSignalRoundTrip:
    def test_physical_units_recovered(self, wfdb_record_dir):
        directory, record = wfdb_record_dir
        header = read_header(directory / "f1y01.hea")
        signals = read_signals(header, directory)
        # Quantization error bounded by half an ADC step / gain.
        assert np.max(np.abs(signals[:, 0] - record.ecg)) <= 0.5 / 500.0 + 1e-9
        assert np.max(np.abs(signals[:, 1] - record.abp)) <= 0.5 / 10.0 + 1e-9

    def test_negative_values_round_trip(self, tmp_path):
        values = np.array([-2048, -1, 0, 1, 2047, -100], dtype=np.int32)
        (tmp_path / "n.dat").write_bytes(_encode_212(values))
        (tmp_path / "n.hea").write_text(
            "n 1 100 6\nn.dat 212 1(0)/adu 12 0 0 0 0 RAW\n"
        )
        header = read_header(tmp_path / "n.hea")
        signals = read_signals(header, tmp_path)
        assert np.array_equal(signals[:, 0], values.astype(float))

    def test_format_16(self, tmp_path):
        values = np.array([-30000, -1, 0, 1, 30000], dtype="<i2")
        (tmp_path / "s.dat").write_bytes(values.tobytes())
        (tmp_path / "s.hea").write_text(
            "s 1 100 5\ns.dat 16 100(0)/mV 16 0 0 0 0 ECG\n"
        )
        header = read_header(tmp_path / "s.hea")
        signals = read_signals(header, tmp_path)
        assert np.allclose(signals[:, 0], values / 100.0)

    def test_truncated_dat_rejected(self, wfdb_record_dir):
        directory, _ = wfdb_record_dir
        dat = directory / "f1y01.dat"
        dat.write_bytes(dat.read_bytes()[: len(dat.read_bytes()) // 2])
        header = read_header(directory / "f1y01.hea")
        with pytest.raises(ValueError, match="expected"):
            read_signals(header, directory)


class TestLoadRecord:
    def test_full_pipeline_compatibility(self, wfdb_record_dir):
        """A WFDB record loads into the same Record API and its detected
        peaks line up with the synthetic ground truth."""
        directory, original = wfdb_record_dir
        record = load_record(directory / "f1y01.hea")
        assert record.subject_id == "f1y01"
        assert record.n_samples == original.n_samples
        assert abs(record.r_peaks.size - original.r_peaks.size) <= 1
        errors = np.abs(
            record.r_peaks[:, None] - original.r_peaks[None, :]
        ).min(axis=1)
        assert np.median(errors) <= 2

    def test_loaded_record_trains_a_detector(self, wfdb_record_dir, train_donors):
        from repro.core import SIFTDetector

        directory, _ = wfdb_record_dir
        record = load_record(directory / "f1y01.hea")
        detector = SIFTDetector(version="reduced").fit(record, train_donors)
        window = record.window(0, 1080)
        assert detector.classify_window(window) in (True, False)
