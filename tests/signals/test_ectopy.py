"""Tests for premature ventricular contraction (PVC) modelling."""

import numpy as np
import pytest

from repro.signals.cardiac import BeatTrain, CardiacProcess
from repro.signals.ecg import ECGSynthesizer
from repro.signals.abp import ABPSynthesizer
from repro.signals.subjects import generate_cohort

FS = 360.0


class TestEctopicBeatTrain:
    def test_rate_approximates_parameter(self, rng):
        process = CardiacProcess(mean_hr=70.0, ectopic_rate_per_min=3.0)
        train = process.generate(600.0, rng)
        per_min = train.n_ectopic / 10.0
        assert 1.5 <= per_min <= 5.0

    def test_zero_rate_means_no_ectopy(self, rng):
        train = CardiacProcess(ectopic_rate_per_min=0.0).generate(120.0, rng)
        assert train.n_ectopic == 0

    def test_pvc_timing_signature(self, rng):
        """Early coupling interval, then a compensatory pause."""
        process = CardiacProcess(
            mean_hr=60.0, ectopic_rate_per_min=6.0, jitter=0.0,
            rsa_depth=0.0, mayer_depth=0.0,
        )
        train = process.generate(300.0, rng)
        assert train.n_ectopic > 5
        rr = train.rr_intervals
        for i in np.flatnonzero(train.ectopic[1:-1]) :
            idx = i + 1  # position in onsets
            coupling = train.onsets[idx] - train.onsets[idx - 1]
            pause = train.onsets[idx + 1] - train.onsets[idx]
            assert coupling < 0.7  # premature (sinus RR is 1.0 s)
            assert pause > coupling  # compensatory pause follows

    def test_slice_preserves_mask(self, rng):
        process = CardiacProcess(mean_hr=60.0, ectopic_rate_per_min=8.0)
        train = process.generate(120.0, rng)
        sliced = train.slice(30.0, 90.0)
        assert sliced.ectopic.shape == sliced.onsets.shape

    def test_mask_shape_validated(self):
        with pytest.raises(ValueError, match="ectopic mask"):
            BeatTrain(
                onsets=np.array([0.1, 0.9]),
                duration=2.0,
                ectopic=np.array([True]),
            )

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            CardiacProcess(ectopic_rate_per_min=-1.0)


class TestEctopicMorphology:
    @pytest.fixture()
    def trains(self, rng):
        onsets = np.arange(0.5, 9.5, 1.0)
        normal = BeatTrain(onsets=onsets, duration=10.0)
        mask = np.zeros(onsets.size, dtype=bool)
        mask[4] = True
        ectopic = BeatTrain(onsets=onsets, duration=10.0, ectopic=mask)
        return normal, ectopic

    def test_pvc_has_wide_qrs_and_inverted_t(self, trains):
        normal_train, ectopic_train = trains
        synth = ECGSynthesizer()
        normal = synth.synthesize(normal_train, FS)
        with_pvc = synth.synthesize(ectopic_train, FS)
        onset = ectopic_train.onsets[4]
        # The T-wave region flips sign for the ectopic beat.
        t_idx = int((onset + 0.32 * 1.0) * FS)
        assert normal[t_idx] > 0.1
        assert with_pvc[t_idx] < -0.1
        # Other beats are untouched.
        other = int(ectopic_train.onsets[1] * FS)
        assert with_pvc[other] == pytest.approx(normal[other], abs=1e-9)

    def test_pvc_pulse_is_weak(self, trains):
        normal_train, ectopic_train = trains
        synth = ABPSynthesizer()
        normal = synth.synthesize(normal_train, FS)
        with_pvc = synth.synthesize(ectopic_train, FS)
        peak_time = synth.systolic_peak_times(ectopic_train)[4]
        idx = int(peak_time * FS)
        assert with_pvc[idx] < normal[idx] - 5.0  # mmHg


class TestCohortEctopy:
    def test_only_elderly_have_pvcs(self):
        cohort = generate_cohort(n_subjects=20, seed=4)
        for subject in cohort:
            if subject.group == "young":
                assert subject.ectopic_rate == 0.0
            else:
                assert 0.0 < subject.ectopic_rate <= 1.0
