"""Tests for cohort generation."""

import numpy as np
import pytest

from repro.signals.subjects import SubjectParameters, generate_cohort


class TestGenerateCohort:
    def test_default_matches_paper_cohort(self):
        cohort = generate_cohort()
        assert len(cohort) == 12
        groups = [s.group for s in cohort]
        assert groups.count("young") == 6
        assert groups.count("elderly") == 6

    def test_reproducible(self):
        a = generate_cohort(seed=11)
        b = generate_cohort(seed=11)
        assert [s.subject_id for s in a] == [s.subject_id for s in b]
        assert [s.mean_hr for s in a] == [s.mean_hr for s in b]

    def test_seed_changes_cohort(self):
        a = generate_cohort(seed=11)
        b = generate_cohort(seed=12)
        assert [s.mean_hr for s in a] != [s.mean_hr for s in b]

    def test_age_ranges_per_group(self):
        for subject in generate_cohort(n_subjects=20, seed=3):
            if subject.group == "young":
                assert 21 <= subject.age <= 34
            else:
                assert 68 <= subject.age <= 85

    def test_young_fraction(self):
        cohort = generate_cohort(n_subjects=10, young_fraction=0.2, seed=1)
        assert sum(s.group == "young" for s in cohort) == 2

    def test_unique_ids(self):
        ids = [s.subject_id for s in generate_cohort(n_subjects=30, seed=0)]
        assert len(set(ids)) == 30

    def test_elderly_have_less_rsa(self):
        cohort = generate_cohort(n_subjects=40, seed=5)
        young = np.mean([s.rsa_depth for s in cohort if s.group == "young"])
        elderly = np.mean([s.rsa_depth for s in cohort if s.group == "elderly"])
        assert young > elderly

    def test_elderly_have_wider_pulse_pressure(self):
        cohort = generate_cohort(n_subjects=40, seed=5)
        young = np.mean(
            [s.abp.pulse_pressure for s in cohort if s.group == "young"]
        )
        elderly = np.mean(
            [s.abp.pulse_pressure for s in cohort if s.group == "elderly"]
        )
        assert elderly > young

    def test_rejects_zero_subjects(self):
        with pytest.raises(ValueError):
            generate_cohort(n_subjects=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            generate_cohort(young_fraction=1.5)


class TestSubjectParameters:
    def test_factories_use_subject_fields(self):
        subject = generate_cohort(seed=2)[0]
        assert subject.cardiac_process().mean_hr == subject.mean_hr
        assert subject.ecg_synthesizer().morphology is subject.ecg
        assert subject.abp_synthesizer().morphology is subject.abp

    def test_with_noise_copies(self):
        subject = generate_cohort(seed=2)[0]
        quiet = subject.with_noise(ecg_noise_std=0.0, abp_noise_std=0.0)
        assert quiet.ecg_noise_std == 0.0
        assert quiet.subject_id == subject.subject_id
        assert subject.ecg_noise_std > 0.0  # original untouched

    def test_rejects_unknown_group(self):
        subject = generate_cohort(seed=2)[0]
        with pytest.raises(ValueError, match="group"):
            SubjectParameters(
                subject_id="x",
                age=30,
                group="child",
                mean_hr=70.0,
                rsa_depth=0.05,
                mayer_depth=0.02,
                rr_jitter=0.01,
                ecg=subject.ecg,
                abp=subject.abp,
            )

    def test_rejects_bad_heart_rate(self):
        subject = generate_cohort(seed=2)[0]
        with pytest.raises(ValueError, match="mean_hr"):
            SubjectParameters(
                subject_id="x",
                age=30,
                group="young",
                mean_hr=0.0,
                rsa_depth=0.05,
                mayer_depth=0.02,
                rr_jitter=0.01,
                ecg=subject.ecg,
                abp=subject.abp,
            )
