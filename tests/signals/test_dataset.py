"""Tests for records, windows and the synthetic dataset."""

import numpy as np
import pytest

from repro.signals.dataset import (
    DEFAULT_SAMPLE_RATE,
    Record,
    SignalWindow,
    SyntheticFantasia,
    iter_windows,
)


class TestSignalWindow:
    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            SignalWindow(
                ecg=np.zeros(10),
                abp=np.zeros(11),
                r_peaks=np.array([]),
                systolic_peaks=np.array([]),
                sample_rate=360.0,
            )

    def test_duration(self):
        window = SignalWindow(
            ecg=np.zeros(1080),
            abp=np.zeros(1080),
            r_peaks=np.array([]),
            systolic_peaks=np.array([]),
            sample_rate=360.0,
        )
        assert window.duration == pytest.approx(3.0)
        assert window.n_samples == 1080


class TestRecord:
    def test_window_extraction_rebases_peaks(self, dataset, victim):
        record = dataset.record(victim, 30.0, purpose="extra")
        window = record.window(360, 1080)
        assert window.n_samples == 1080
        assert np.all(window.r_peaks >= 0)
        assert np.all(window.r_peaks < 1080)
        # Every rebased peak maps back onto an original peak index.
        for peak in window.r_peaks:
            assert peak + 360 in record.r_peaks

    def test_window_bounds_checked(self, dataset, victim):
        record = dataset.record(victim, 10.0, purpose="extra")
        with pytest.raises(ValueError):
            record.window(-1, 100)
        with pytest.raises(ValueError):
            record.window(0, record.n_samples + 1)
        with pytest.raises(ValueError):
            record.window(0, 0)

    def test_redetect_peaks_close_to_truth(self, dataset, victim):
        record = dataset.record(victim, 30.0, purpose="extra")
        redetected = record.redetect_peaks()
        assert abs(redetected.r_peaks.size - record.r_peaks.size) <= 1
        assert redetected.ecg is record.ecg  # signals shared, not copied

    def test_mismatched_signals_rejected(self):
        with pytest.raises(ValueError):
            Record(
                subject_id="x",
                sample_rate=360.0,
                ecg=np.zeros(100),
                abp=np.zeros(99),
                r_peaks=np.array([]),
                systolic_peaks=np.array([]),
            )


class TestIterWindows:
    def test_non_overlapping_count(self, dataset, victim):
        record = dataset.record(victim, 60.0, purpose="extra")
        windows = list(iter_windows(record, window_s=3.0))
        assert len(windows) == 20

    def test_stride_overlap(self, dataset, victim):
        record = dataset.record(victim, 30.0, purpose="extra")
        dense = list(iter_windows(record, window_s=3.0, stride_s=1.0))
        sparse = list(iter_windows(record, window_s=3.0))
        assert len(dense) == 28
        assert len(sparse) == 10

    def test_rejects_bad_args(self, dataset, victim):
        record = dataset.record(victim, 10.0, purpose="extra")
        with pytest.raises(ValueError):
            list(iter_windows(record, window_s=0.0))
        with pytest.raises(ValueError):
            list(iter_windows(record, window_s=3.0, stride_s=-1.0))

    def test_windows_carry_subject_id(self, dataset, victim):
        record = dataset.record(victim, 10.0, purpose="extra")
        window = next(iter_windows(record, 3.0))
        assert window.subject_id == victim.subject_id
        assert window.altered is None


class TestSyntheticFantasia:
    def test_default_shape(self):
        data = SyntheticFantasia()
        assert len(data) == 12
        assert data.sample_rate == DEFAULT_SAMPLE_RATE

    def test_three_second_window_is_1080_samples(self, dataset, victim):
        """The paper's array-size constraint: 3 s -> 1080 floats."""
        record = dataset.record(victim, 9.0, purpose="extra")
        window = record.window(0, int(3.0 * dataset.sample_rate))
        assert window.n_samples == 1080

    def test_train_and_test_records_differ(self, dataset, victim):
        train = dataset.record(victim, 30.0, purpose="train")
        test = dataset.record(victim, 30.0, purpose="test")
        assert not np.array_equal(train.ecg, test.ecg)

    def test_same_purpose_reproducible(self, dataset, victim):
        a = dataset.record(victim, 30.0, purpose="train")
        b = dataset.record(victim, 30.0, purpose="train")
        assert np.array_equal(a.ecg, b.ecg)
        assert np.array_equal(a.r_peaks, b.r_peaks)

    def test_unknown_purpose_rejected(self, dataset, victim):
        with pytest.raises(ValueError):
            dataset.record(victim, 10.0, purpose="nope")

    def test_subject_lookup(self, dataset, victim):
        assert dataset.subject(victim.subject_id) is victim
        with pytest.raises(KeyError):
            dataset.subject("missing")

    def test_ground_truth_peaks_in_range(self, dataset, victim):
        record = dataset.record(victim, 20.0, purpose="extra")
        assert np.all(record.r_peaks < record.n_samples)
        assert np.all(record.systolic_peaks < record.n_samples)
        assert np.all(np.diff(record.r_peaks) > 0)

    def test_training_and_test_defaults(self, dataset, victim):
        assert dataset.training_record(victim, 60.0).duration == pytest.approx(
            60.0, rel=0.01
        )
        assert dataset.test_record(victim, 30.0).duration == pytest.approx(
            30.0, rel=0.01
        )

    def test_ecg_and_abp_share_beat_structure(self, dataset, victim):
        """The substrate's core property: one cardiac process, two signals."""
        record = dataset.record(victim, 60.0, purpose="extra")
        lags = []
        for r in record.r_peaks:
            following = record.systolic_peaks[record.systolic_peaks > r]
            if following.size:
                lags.append(following[0] - r)
        lags = np.array(lags) / dataset.sample_rate
        assert np.median(lags) < 0.45  # systole follows within the beat
        assert np.std(lags) < 0.15  # and consistently so
