"""Tests for the signal-quality index."""

import numpy as np
import pytest

from repro.signals.dataset import SignalWindow
from repro.signals.quality import QualityReport, SignalQualityIndex, assess_window


def _window(ecg, abp, r=None, s=None, fs=360.0):
    ecg = np.asarray(ecg, dtype=np.float64)
    n = ecg.size
    if r is None:
        r = np.arange(100, n - 50, 280)
    if s is None:
        s = np.arange(170, n - 20, 280)
    return SignalWindow(
        ecg=ecg,
        abp=np.asarray(abp, dtype=np.float64),
        r_peaks=np.asarray(r, dtype=np.intp),
        systolic_peaks=np.asarray(s, dtype=np.intp),
        sample_rate=fs,
    )


class TestCleanWindows:
    def test_synthetic_windows_are_usable(self, labeled_stream):
        sqi = SignalQualityIndex()
        usable = sum(sqi.assess(w).usable for w in labeled_stream.windows)
        assert usable >= 0.8 * len(labeled_stream.windows)

    def test_report_fields_bounded(self, labeled_stream):
        report = assess_window(labeled_stream.windows[0])
        for value in (
            report.sqi,
            report.clipping_score,
            report.burst_score,
            report.beat_score,
        ):
            assert 0.0 <= value <= 1.0

    def test_sqi_is_minimum_of_components(self, labeled_stream):
        report = assess_window(labeled_stream.windows[0])
        assert report.sqi == pytest.approx(
            min(report.clipping_score, report.burst_score, report.beat_score)
        )


class TestDegradedWindows:
    def test_flatline_rejected(self):
        window = _window(np.zeros(1080), np.full(1080, 80.0))
        report = assess_window(window)
        assert not report.usable
        assert report.clipping_score == 0.0

    def test_clipped_signal_penalized(self, labeled_stream):
        base = labeled_stream.windows[0]
        clipped = _window(
            np.clip(base.ecg, np.percentile(base.ecg, 25), np.percentile(base.ecg, 75)),
            base.abp,
            r=base.r_peaks,
            s=base.systolic_peaks,
        )
        assert (
            assess_window(clipped).clipping_score
            < assess_window(base).clipping_score
        )

    def test_burst_artifact_penalized(self, labeled_stream):
        base = labeled_stream.windows[0]
        corrupted = base.ecg.copy()
        corrupted[400:460] += 50.0 * np.random.default_rng(0).standard_normal(60)
        report_bad = assess_window(
            _window(corrupted, base.abp, r=base.r_peaks, s=base.systolic_peaks)
        )
        report_good = assess_window(base)
        assert report_bad.burst_score < report_good.burst_score

    def test_implausible_beat_count_rejected(self, labeled_stream):
        base = labeled_stream.windows[0]
        no_beats = _window(base.ecg, base.abp, r=[], s=[])
        report = assess_window(no_beats)
        assert report.beat_score == 0.0
        assert not report.usable

    def test_too_many_beats_penalized(self, labeled_stream):
        base = labeled_stream.windows[0]
        every_sample = _window(
            base.ecg, base.abp, r=np.arange(0, 1080, 30), s=base.systolic_peaks
        )
        assert assess_window(every_sample).beat_score < 1.0


class TestConfiguration:
    def test_threshold_changes_verdict(self, labeled_stream):
        window = labeled_stream.windows[0]
        lenient = SignalQualityIndex(threshold=0.05).assess(window)
        strict = SignalQualityIndex(threshold=1.0).assess(window)
        assert lenient.usable or not strict.usable

    def test_validation(self):
        with pytest.raises(ValueError):
            SignalQualityIndex(threshold=0.0)
        with pytest.raises(ValueError):
            SignalQualityIndex(clipping_tolerance=-0.1)
        with pytest.raises(ValueError):
            SignalQualityIndex(burst_ratio_limit=0.5)
        with pytest.raises(ValueError):
            QualityReport(
                sqi=1.5, usable=True, clipping_score=1.0,
                burst_score=1.0, beat_score=1.0,
            )

    def test_boundary_tolerance_is_symmetric(self):
        """Float noise within the epsilon of *either* bound is accepted
        and clamped; the old check took ``1.0 + 1e-9`` but crashed on
        ``-1e-12``."""
        above = QualityReport(
            sqi=1.0 + 1e-10, usable=True, clipping_score=1.0,
            burst_score=1.0, beat_score=1.0,
        )
        assert above.sqi == 1.0
        below = QualityReport(
            sqi=-1e-12, usable=False, clipping_score=-1e-12,
            burst_score=0.0, beat_score=0.0,
        )
        assert below.sqi == 0.0
        assert below.clipping_score == 0.0

    def test_genuinely_out_of_range_still_raises(self):
        for bad in (1.0 + 1e-6, -1e-6, float("nan")):
            with pytest.raises(ValueError):
                QualityReport(
                    sqi=bad, usable=False, clipping_score=0.5,
                    burst_score=0.5, beat_score=0.5,
                )


class TestComponentEdgeCases:
    """Degenerate inputs every component score must survive."""

    def test_constant_signal_scores_zero_everywhere(self):
        window = _window(np.full(1080, 3.3), np.full(1080, 3.3))
        report = assess_window(window)
        assert report.clipping_score == 0.0  # span collapses: flatline
        assert report.burst_score == 0.0  # zero first-difference energy
        assert report.sqi == 0.0
        assert not report.usable

    def test_all_clipped_square_wave_rejected(self):
        # Every sample sits at one of the two extremes: 100 % pinned.
        square = np.where(np.arange(1080) % 360 < 180, -1.0, 1.0)
        report = assess_window(_window(square, np.abs(square) * 80.0))
        assert report.clipping_score == 0.0
        assert not report.usable

    def test_empty_peak_lists_score_zero_beats(self):
        t = np.arange(1080) / 360.0
        ecg = np.sin(2 * np.pi * 1.2 * t)
        report = assess_window(_window(ecg, 80.0 + 20.0 * ecg, r=[], s=[]))
        assert report.beat_score == 0.0
        assert report.sqi == 0.0
        assert not report.usable

    def test_one_empty_channel_is_enough_to_reject(self):
        t = np.arange(1080) / 360.0
        ecg = np.sin(2 * np.pi * 1.2 * t)
        # ECG peaks are plausible; only the ABP peak list is empty.
        report = assess_window(_window(ecg, 80.0 + 20.0 * ecg, s=[]))
        assert report.beat_score == 0.0

    def test_sqi_exactly_at_threshold_is_usable(self, labeled_stream):
        """The gate contract is ``usable = sqi >= threshold``, inclusive."""
        window = labeled_stream.windows[0]
        sqi = assess_window(window).sqi
        assert 0.0 < sqi <= 1.0
        at_boundary = SignalQualityIndex(threshold=sqi).assess(window)
        assert at_boundary.sqi == sqi
        assert at_boundary.usable
        if sqi < 1.0:
            nudged = SignalQualityIndex(
                threshold=min(1.0, float(np.nextafter(sqi, 2.0)))
            ).assess(window)
            assert not nudged.usable


class TestGatingReducesFalsePositives:
    def test_gate_filters_artifact_windows(self, trained_detectors, dataset, victim):
        """On an artifact-heavy genuine recording, gating trades coverage
        for a lower false-positive count among the windows it passes."""
        from dataclasses import replace as dc_replace

        from repro.core.versions import DetectorVersion

        noisy_subject = dc_replace(
            victim, ecg_artifact_rate=15.0, abp_artifact_rate=8.0
        )
        record = dataset.record(noisy_subject, 120.0, purpose="extra")
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        sqi = SignalQualityIndex(threshold=0.5)
        windows = [
            record.window(i * 1080, 1080)
            for i in range(record.n_samples // 1080)
        ]
        all_fp = sum(detector.classify_window(w) for w in windows)
        passed = [w for w in windows if sqi.assess(w).usable]
        gated_fp = sum(detector.classify_window(w) for w in passed)
        assert len(passed) <= len(windows)
        # The gate never *creates* false positives.
        assert gated_fp <= all_fp
