"""Tests for the cardiac beat-train generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals.cardiac import BeatTrain, CardiacProcess


class TestBeatTrain:
    def test_rr_intervals_are_diffs_of_onsets(self):
        train = BeatTrain(onsets=np.array([0.1, 0.9, 1.8]), duration=2.0)
        assert np.allclose(train.rr_intervals, [0.8, 0.9])

    def test_len_counts_beats(self):
        train = BeatTrain(onsets=np.array([0.1, 0.9, 1.8]), duration=2.0)
        assert len(train) == 3

    def test_mean_heart_rate(self):
        train = BeatTrain(onsets=np.arange(0.0, 10.0, 1.0), duration=10.0)
        assert train.mean_heart_rate == pytest.approx(60.0)

    def test_mean_heart_rate_empty(self):
        assert BeatTrain(onsets=np.array([]), duration=1.0).mean_heart_rate == 0.0

    def test_rejects_decreasing_onsets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            BeatTrain(onsets=np.array([0.5, 0.4]), duration=1.0)

    def test_rejects_negative_onsets(self):
        with pytest.raises(ValueError, match="non-negative"):
            BeatTrain(onsets=np.array([-0.1, 0.4]), duration=1.0)

    def test_rejects_2d_onsets(self):
        with pytest.raises(ValueError, match="1-D"):
            BeatTrain(onsets=np.zeros((2, 2)), duration=1.0)

    def test_slice_rebases_and_filters(self):
        train = BeatTrain(onsets=np.array([0.2, 1.2, 2.2, 3.2]), duration=4.0)
        sliced = train.slice(1.0, 3.0)
        assert np.allclose(sliced.onsets, [0.2, 1.2])
        assert sliced.duration == pytest.approx(2.0)

    def test_slice_rejects_inverted_range(self):
        train = BeatTrain(onsets=np.array([0.2]), duration=1.0)
        with pytest.raises(ValueError):
            train.slice(2.0, 1.0)


class TestCardiacProcess:
    def test_generates_expected_beat_count(self, rng):
        process = CardiacProcess(mean_hr=60.0, jitter=0.0)
        train = process.generate(120.0, rng)
        # 60 bpm for 120 s -> about 120 beats (modulation shifts a few).
        assert 110 <= len(train) <= 130

    def test_all_onsets_within_duration(self, rng):
        train = CardiacProcess().generate(30.0, rng)
        assert np.all(train.onsets >= 0)
        assert np.all(train.onsets < 30.0)

    def test_same_seed_same_train(self):
        process = CardiacProcess()
        a = process.generate(20.0, np.random.default_rng(5))
        b = process.generate(20.0, np.random.default_rng(5))
        assert np.array_equal(a.onsets, b.onsets)

    def test_different_seeds_differ(self):
        process = CardiacProcess()
        a = process.generate(20.0, np.random.default_rng(5))
        b = process.generate(20.0, np.random.default_rng(6))
        assert not np.array_equal(a.onsets, b.onsets)

    def test_hrv_modulation_bounds_rr(self, rng):
        process = CardiacProcess(
            mean_hr=60.0, rsa_depth=0.05, mayer_depth=0.03, jitter=0.0
        )
        train = process.generate(300.0, rng)
        rr = train.rr_intervals
        assert np.all(rr > 1.0 * (1 - 0.09))
        assert np.all(rr < 1.0 * (1 + 0.09))

    def test_mean_rr(self):
        assert CardiacProcess(mean_hr=75.0).mean_rr == pytest.approx(0.8)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mean_hr": 0.0},
            {"mean_hr": -10.0},
            {"rsa_depth": 0.6},
            {"mayer_depth": -0.1},
            {"jitter": -0.5},
            {"rsa_frequency": 0.0},
            {"mayer_frequency": -1.0},
        ],
    )
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CardiacProcess(**kwargs)

    def test_rejects_nonpositive_duration(self, rng):
        with pytest.raises(ValueError):
            CardiacProcess().generate(0.0, rng)

    @settings(max_examples=25, deadline=None)
    @given(
        mean_hr=st.floats(min_value=40.0, max_value=180.0),
        duration=st.floats(min_value=5.0, max_value=60.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_property_beats_sorted_and_bounded(self, mean_hr, duration, seed):
        process = CardiacProcess(mean_hr=mean_hr)
        train = process.generate(duration, np.random.default_rng(seed))
        assert np.all(np.diff(train.onsets) > 0)
        assert np.all(train.onsets < duration)
        # No pathological pauses: RR never exceeds twice the mean RR.
        if train.rr_intervals.size:
            assert np.max(train.rr_intervals) < 2.0 * process.mean_rr
