"""Tests for the ECG synthesizer."""

import numpy as np
import pytest

from repro.signals.cardiac import BeatTrain, CardiacProcess
from repro.signals.ecg import ECGMorphology, ECGSynthesizer

FS = 360.0


@pytest.fixture()
def beats():
    return BeatTrain(onsets=np.arange(0.5, 9.5, 0.8), duration=10.0)


class TestECGSynthesizer:
    def test_output_length(self, beats):
        ecg = ECGSynthesizer().synthesize(beats, FS)
        assert ecg.size == int(10.0 * FS)

    def test_r_peak_lands_on_onset(self, beats):
        ecg = ECGSynthesizer().synthesize(beats, FS)  # no rng -> clean
        for onset in beats.onsets:
            idx = int(round(onset * FS))
            window = ecg[idx - 18 : idx + 19]
            assert np.argmax(window) == pytest.approx(18, abs=1)

    def test_r_amplitude_matches_morphology(self, beats):
        morphology = ECGMorphology(r_amp=1.5)
        ecg = ECGSynthesizer(morphology=morphology).synthesize(beats, FS)
        assert np.max(ecg) == pytest.approx(1.5, rel=0.05)

    def test_no_rng_is_deterministic_and_noise_free(self, beats):
        synth = ECGSynthesizer(noise_std=0.5)
        a = synth.synthesize(beats, FS)
        b = synth.synthesize(beats, FS)
        assert np.array_equal(a, b)

    def test_rng_adds_noise(self, beats):
        synth = ECGSynthesizer(noise_std=0.05)
        clean = synth.synthesize(beats, FS)
        noisy = synth.synthesize(beats, FS, np.random.default_rng(0))
        residual = noisy - clean
        assert np.std(residual) > 0.02

    def test_seeded_rng_reproducible(self, beats):
        synth = ECGSynthesizer()
        a = synth.synthesize(beats, FS, np.random.default_rng(3))
        b = synth.synthesize(beats, FS, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_t_wave_present_after_r(self, beats):
        ecg = ECGSynthesizer().synthesize(beats, FS)
        onset = beats.onsets[3]
        rr = 0.8
        t_idx = int(round((onset + 0.32 * rr) * FS))
        assert ecg[t_idx] > 0.15  # default T amplitude is 0.3

    def test_artifacts_increase_energy(self, beats):
        quiet = ECGSynthesizer(artifact_rate_per_min=0.0).synthesize(
            beats, FS, np.random.default_rng(1)
        )
        stormy = ECGSynthesizer(artifact_rate_per_min=30.0).synthesize(
            beats, FS, np.random.default_rng(1)
        )
        assert np.sum(np.abs(stormy - quiet)) > 1.0

    def test_empty_beat_train(self):
        empty = BeatTrain(onsets=np.array([]), duration=2.0)
        ecg = ECGSynthesizer().synthesize(empty, FS)
        assert np.allclose(ecg, 0.0)

    def test_rejects_bad_sample_rate(self, beats):
        with pytest.raises(ValueError):
            ECGSynthesizer().synthesize(beats, 0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            ECGSynthesizer(noise_std=-0.1)

    def test_rejects_negative_artifact_rate(self):
        with pytest.raises(ValueError):
            ECGSynthesizer(artifact_rate_per_min=-1.0)

    def test_varying_rr_scales_waves(self, rng):
        """Wave offsets follow the RR interval, so no beat collides."""
        process = CardiacProcess(mean_hr=130.0, jitter=0.02)
        beats = process.generate(20.0, rng)
        ecg = ECGSynthesizer().synthesize(beats, FS)
        # Peaks remain near the onsets even at a fast rate.
        for onset in beats.onsets[1:-1]:
            idx = int(round(onset * FS))
            assert ecg[idx] > 0.5
