"""Tests for the ABP synthesizer."""

import numpy as np
import pytest

from repro.signals.abp import ABPMorphology, ABPSynthesizer
from repro.signals.cardiac import BeatTrain

FS = 360.0


@pytest.fixture()
def beats():
    return BeatTrain(onsets=np.arange(0.5, 9.5, 0.8), duration=10.0)


class TestABPMorphology:
    def test_pulse_pressure(self):
        m = ABPMorphology(systolic=120.0, diastolic=80.0)
        assert m.pulse_pressure == pytest.approx(40.0)

    def test_rejects_inverted_pressures(self):
        with pytest.raises(ValueError):
            ABPMorphology(systolic=80.0, diastolic=120.0)

    def test_rejects_negative_transit(self):
        with pytest.raises(ValueError):
            ABPMorphology(transit_time=-0.1)

    def test_rejects_bad_ptt_depth(self):
        with pytest.raises(ValueError):
            ABPMorphology(ptt_mod_depth=1.5)

    def test_transit_modulation_bounds(self):
        m = ABPMorphology(transit_time=0.2, ptt_mod_depth=0.3)
        t = np.linspace(0.0, 100.0, 500)
        transit = m.transit_at(t)
        assert np.all(transit >= 0.2 * 0.7 - 1e-12)
        assert np.all(transit <= 0.2 * 1.3 + 1e-12)

    def test_transit_constant_when_depth_zero(self):
        m = ABPMorphology(transit_time=0.2, ptt_mod_depth=0.0)
        assert float(m.transit_at(12.3)) == pytest.approx(0.2)


class TestABPSynthesizer:
    def test_output_length(self, beats):
        abp = ABPSynthesizer().synthesize(beats, FS)
        assert abp.size == int(10.0 * FS)

    def test_pressure_range(self, beats):
        m = ABPMorphology(systolic=120.0, diastolic=75.0, ptt_mod_depth=0.0)
        abp = ABPSynthesizer(morphology=m).synthesize(beats, FS)
        assert abp.min() >= 74.0
        # Pulse overlap can overshoot slightly; dicrotic adds a little.
        assert 110.0 <= abp.max() <= 135.0

    def test_systolic_peak_times_match_waveform(self, beats):
        synth = ABPSynthesizer(morphology=ABPMorphology(ptt_mod_depth=0.0))
        abp = synth.synthesize(beats, FS)
        for peak_time in synth.systolic_peak_times(beats)[1:-1]:
            idx = int(round(peak_time * FS))
            window = abp[idx - 10 : idx + 11]
            assert np.max(window) == pytest.approx(abp[idx], rel=0.02)

    def test_systolic_peaks_trail_r_peaks(self, beats):
        synth = ABPSynthesizer()
        peaks = synth.systolic_peak_times(beats)
        lags = peaks - beats.onsets[: peaks.size]
        assert np.all(lags > 0.05)
        assert np.all(lags < 0.6)

    def test_ptt_modulation_varies_lag(self, beats):
        m = ABPMorphology(ptt_mod_depth=0.3, ptt_mod_freq=0.1)
        synth = ABPSynthesizer(morphology=m)
        lags = synth.systolic_peak_times(beats) - beats.onsets
        assert np.ptp(lags) > 0.02

    def test_noise_only_with_rng(self, beats):
        synth = ABPSynthesizer(noise_std=1.0)
        assert np.array_equal(
            synth.synthesize(beats, FS), synth.synthesize(beats, FS)
        )
        noisy = synth.synthesize(beats, FS, np.random.default_rng(0))
        assert not np.array_equal(noisy, synth.synthesize(beats, FS))

    def test_empty_beats_flat_diastolic(self):
        empty = BeatTrain(onsets=np.array([]), duration=2.0)
        m = ABPMorphology(systolic=120.0, diastolic=75.0)
        abp = ABPSynthesizer(morphology=m).synthesize(empty, FS)
        assert np.allclose(abp, 75.0)

    def test_rejects_bad_sample_rate(self, beats):
        with pytest.raises(ValueError):
            ABPSynthesizer().synthesize(beats, -1.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            ABPSynthesizer(noise_std=-0.5)

    def test_dicrotic_wave_visible(self, beats):
        """A secondary bump exists between systolic peak and next foot."""
        m = ABPMorphology(dicrotic_amp=0.25, ptt_mod_depth=0.0)
        synth = ABPSynthesizer(morphology=m)
        abp = synth.synthesize(beats, FS)
        peak_time = synth.systolic_peak_times(beats)[2]
        start = int((peak_time + 0.08) * FS)
        stop = int((peak_time + 0.45) * FS)
        segment = abp[start:stop]
        interior = segment[1:-1]
        local_max = (interior > segment[:-2]) & (interior >= segment[2:])
        assert local_max.any()
