"""Tests for the adaptive-security decision engine."""

import pytest

from repro.adaptive.constraints import (
    DynamicConstraints,
    detect_static_constraints,
)
from repro.adaptive.engine import DecisionEngine
from repro.adaptive.policy import (
    AccuracyFirstPolicy,
    LifetimeTargetPolicy,
    SocThresholdPolicy,
    VersionProfile,
)
from repro.amulet.firmware import FirmwareToolchain
from repro.amulet.hardware import AmuletHardware, MSP430FR5989
from repro.core.versions import DetectorVersion
from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.harness import AmuletSIFTRunner, deploy_model


@pytest.fixture(scope="module")
def candidates(trained_detectors, labeled_stream):
    out = {}
    for version, detector in trained_detectors.items():
        runner = AmuletSIFTRunner(detector)
        result = runner.run_stream(labeled_stream)
        out[version] = VersionProfile(
            version=version,
            accuracy=result.report.accuracy,
            profile=runner.profile(period_s=3.0),
        )
    return out


@pytest.fixture(scope="module")
def sift_apps(trained_detectors):
    return {
        version: SIFTDetectorApp(version, deploy_model(detector))
        for version, detector in trained_detectors.items()
    }


class TestStaticConstraints:
    def test_all_versions_deployable_on_real_device(self, sift_apps):
        static = detect_static_constraints(sift_apps)
        assert static.deployable == frozenset(DetectorVersion)
        assert not static.rejections
        for version in DetectorVersion:
            assert static.fram_headroom_bytes[version] > 0

    def test_small_device_rejects_heavy_builds(self, sift_apps):
        """A hypothetical Amulet with a quarter of the FRAM cannot host
        the libm-linked Original build."""
        tiny_mcu = MSP430FR5989(fram_bytes=70 * 1024)
        toolchain = FirmwareToolchain(hardware=AmuletHardware(mcu=tiny_mcu))
        static = detect_static_constraints(sift_apps, toolchain)
        assert DetectorVersion.ORIGINAL not in static.deployable
        assert DetectorVersion.REDUCED in static.deployable
        assert "FRAM" in static.rejections[DetectorVersion.ORIGINAL]

    def test_dynamic_constraints_validation(self):
        with pytest.raises(ValueError):
            DynamicConstraints(battery_soc=1.5)
        with pytest.raises(ValueError):
            DynamicConstraints(battery_soc=0.5, cpu_load=1.0)
        with pytest.raises(ValueError):
            DynamicConstraints(battery_soc=0.5, hours_needed=-1.0)


class TestPolicies:
    def test_accuracy_first_picks_best(self, candidates):
        engine = DecisionEngine(candidates, AccuracyFirstPolicy())
        best = max(candidates.values(), key=lambda c: c.accuracy).version
        assert engine.decide(DynamicConstraints(battery_soc=0.05)) is best

    def test_soc_threshold_steps_down(self, candidates):
        engine = DecisionEngine(candidates, SocThresholdPolicy())
        high = engine.decide(DynamicConstraints(battery_soc=0.9))
        low = engine.decide(DynamicConstraints(battery_soc=0.1))
        assert low is DetectorVersion.REDUCED
        assert high is not DetectorVersion.REDUCED or high is low

    def test_soc_threshold_validation(self):
        with pytest.raises(ValueError):
            SocThresholdPolicy({DetectorVersion.ORIGINAL: 2.0})

    def test_lifetime_target_degrades_when_mission_long(self, candidates):
        engine = DecisionEngine(candidates, LifetimeTargetPolicy())
        short_mission = engine.decide(
            DynamicConstraints(battery_soc=1.0, hours_needed=24.0)
        )
        long_mission = engine.decide(
            DynamicConstraints(battery_soc=1.0, hours_needed=45 * 24.0)
        )
        assert long_mission is DetectorVersion.REDUCED
        assert (
            candidates[short_mission].accuracy
            >= candidates[long_mission].accuracy
        )

    def test_lifetime_target_falls_back_to_lightest(self, candidates):
        engine = DecisionEngine(candidates, LifetimeTargetPolicy())
        # Impossible mission: even Reduced cannot last a year.
        choice = engine.decide(
            DynamicConstraints(battery_soc=0.5, hours_needed=365 * 24.0)
        )
        assert choice is DetectorVersion.REDUCED


class TestDecisionEngine:
    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            DecisionEngine({}, AccuracyFirstPolicy())

    def test_static_detection_integrates_toolchain(
        self, candidates, sift_apps
    ):
        engine = DecisionEngine(
            candidates, AccuracyFirstPolicy(), apps=sift_apps
        )
        assert engine.static.deployable == frozenset(DetectorVersion)

    def test_simulation_ends_with_empty_battery(self, candidates):
        engine = DecisionEngine(candidates, AccuracyFirstPolicy())
        timeline = engine.simulate_deployment(step_h=12.0)
        assert timeline.lifetime_h > 0
        assert timeline.points[0].battery_soc == 1.0
        assert timeline.points[-1].battery_soc > 0  # sampled before empty

    def test_adaptive_outlives_accuracy_first(self, candidates):
        fixed = DecisionEngine(candidates, AccuracyFirstPolicy())
        adaptive = DecisionEngine(candidates, SocThresholdPolicy())
        fixed_life = fixed.simulate_deployment(step_h=6.0).lifetime_h
        adaptive_life = adaptive.simulate_deployment(step_h=6.0).lifetime_h
        assert adaptive_life > fixed_life

    def test_time_weighted_accuracy_between_extremes(self, candidates):
        engine = DecisionEngine(candidates, SocThresholdPolicy())
        timeline = engine.simulate_deployment(step_h=6.0)
        accuracies = [c.accuracy for c in candidates.values()]
        assert min(accuracies) <= timeline.time_weighted_accuracy <= max(accuracies)

    def test_switch_count_and_versions_used(self, candidates):
        engine = DecisionEngine(candidates, SocThresholdPolicy())
        timeline = engine.simulate_deployment(step_h=6.0)
        assert timeline.n_switches == len(timeline.versions_used()) - 1

    def test_simulation_validation(self, candidates):
        engine = DecisionEngine(candidates, AccuracyFirstPolicy())
        with pytest.raises(ValueError):
            engine.simulate_deployment(step_h=0.0)
