"""Hysteretic tier fallback under sustained signal degradation."""

from __future__ import annotations

import pytest

from repro.adaptive import DegradationController, TierSwitch
from repro.core.streaming import StreamingDetector
from repro.core.versions import DetectorVersion
from repro.signals.quality import QualityReport, SignalQualityIndex


def _report(sqi: float, usable: bool | None = None) -> QualityReport:
    return QualityReport(
        sqi=sqi,
        usable=sqi >= 0.5 if usable is None else usable,
        clipping_score=sqi,
        burst_score=sqi,
        beat_score=sqi,
    )


GOOD = _report(0.9)
BAD = _report(0.1)


class TestLadder:
    def test_starts_at_the_heaviest_tier(self):
        controller = DegradationController()
        assert controller.active is DetectorVersion.ORIGINAL
        assert controller.switches == []

    def test_steps_down_after_consecutive_degraded_windows(self):
        controller = DegradationController(degrade_after=3, recover_after=5)
        for _ in range(2):
            assert controller.observe(BAD) is DetectorVersion.ORIGINAL
        assert controller.observe(BAD) is DetectorVersion.SIMPLIFIED
        assert controller.switches == [
            TierSwitch(2, DetectorVersion.SIMPLIFIED, "down")
        ]

    def test_descends_the_whole_ladder_and_stops_at_the_bottom(self):
        controller = DegradationController(degrade_after=2, recover_after=4)
        for _ in range(20):
            controller.observe(BAD)
        assert controller.active is DetectorVersion.REDUCED
        downs = [s for s in controller.switches if s.direction == "down"]
        assert [s.version for s in downs] == [
            DetectorVersion.SIMPLIFIED,
            DetectorVersion.REDUCED,
        ]

    def test_interleaved_good_window_resets_the_bad_streak(self):
        controller = DegradationController(degrade_after=3, recover_after=50)
        for _ in range(2):
            controller.observe(BAD)
        controller.observe(GOOD)
        for _ in range(2):
            controller.observe(BAD)
        assert controller.active is DetectorVersion.ORIGINAL
        assert controller.switches == []


class TestHysteresis:
    def test_recovery_lags_degradation(self):
        controller = DegradationController(degrade_after=2, recover_after=6)
        for _ in range(2):
            controller.observe(BAD)
        assert controller.active is DetectorVersion.SIMPLIFIED
        # Five clean windows are not enough to earn the way back up.
        for _ in range(5):
            controller.observe(GOOD)
        assert controller.active is DetectorVersion.SIMPLIFIED
        controller.observe(GOOD)
        assert controller.active is DetectorVersion.ORIGINAL
        assert controller.switches[-1].direction == "up"

    def test_boundary_noise_does_not_thrash(self):
        controller = DegradationController(degrade_after=3, recover_after=8)
        # Alternating good/bad never sustains either streak.
        for i in range(100):
            controller.observe(BAD if i % 2 else GOOD)
        assert controller.switches == []
        assert controller.n_observed == 100

    def test_sqi_floor_overrides_the_usable_verdict(self):
        controller = DegradationController(
            degrade_after=1, recover_after=2, sqi_floor=0.95
        )
        # usable=True but below the stricter floor: still degraded.
        controller.observe(_report(0.9, usable=True))
        assert controller.active is DetectorVersion.SIMPLIFIED

    def test_reset_returns_to_the_top(self):
        controller = DegradationController(degrade_after=1, recover_after=1)
        controller.observe(BAD)
        assert controller.active is DetectorVersion.SIMPLIFIED
        controller.reset()
        assert controller.active is DetectorVersion.ORIGINAL
        assert controller.switches == []
        assert controller.n_observed == 0


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="tier"):
            DegradationController(tiers=())
        with pytest.raises(ValueError, match="distinct"):
            DegradationController(
                tiers=(DetectorVersion.ORIGINAL, DetectorVersion.ORIGINAL)
            )
        with pytest.raises(ValueError, match="degrade_after"):
            DegradationController(degrade_after=0)
        with pytest.raises(ValueError, match="sqi_floor"):
            DegradationController(sqi_floor=1.5)


class TestStreamingIntegration:
    def test_degradation_requires_a_gate(self, trained_detectors):
        with pytest.raises(ValueError, match="quality_gate"):
            StreamingDetector(
                trained_detectors[DetectorVersion.ORIGINAL],
                degradation=DegradationController(),
            )

    def test_missing_fallback_is_a_loud_error(
        self, trained_detectors, labeled_stream
    ):
        controller = DegradationController(degrade_after=1, recover_after=2)
        streaming = StreamingDetector(
            trained_detectors[DetectorVersion.ORIGINAL],
            quality_gate=SignalQualityIndex(threshold=0.5),
            degradation=controller,
        )
        # Force the controller down a tier with no fallback registered;
        # the next *usable* window must fail loudly, not silently reuse
        # the heavy detector.
        controller.observe(BAD)
        assert controller.active is DetectorVersion.SIMPLIFIED
        usable = next(
            w
            for w in labeled_stream.windows
            if SignalQualityIndex(threshold=0.5).assess(w).usable
        )
        with pytest.raises(KeyError, match="simplified"):
            streaming.process_window(usable)

    def test_fallback_tier_serves_usable_windows(
        self, trained_detectors, labeled_stream
    ):
        controller = DegradationController(degrade_after=1, recover_after=100)
        streaming = StreamingDetector(
            trained_detectors[DetectorVersion.ORIGINAL],
            quality_gate=SignalQualityIndex(threshold=0.5),
            fallbacks={
                DetectorVersion.SIMPLIFIED: trained_detectors[
                    DetectorVersion.SIMPLIFIED
                ],
                DetectorVersion.REDUCED: trained_detectors[
                    DetectorVersion.REDUCED
                ],
            },
            degradation=controller,
        )
        controller.observe(BAD)
        assert controller.active is DetectorVersion.SIMPLIFIED
        usable = next(
            w
            for w in labeled_stream.windows
            if SignalQualityIndex(threshold=0.5).assess(w).usable
        )
        streaming.process_window(usable)
        # The window was scored (not abstained) by the fallback tier.
        assert streaming.abstain_count == 0
        assert streaming.state.window_index == 1
