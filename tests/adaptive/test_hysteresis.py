"""Tests for the hysteresis policy wrapper."""

import pytest

from repro.adaptive.constraints import DynamicConstraints, StaticConstraints
from repro.adaptive.hysteresis import HysteresisPolicy
from repro.adaptive.policy import SwitchingPolicy, VersionProfile
from repro.core.versions import DetectorVersion


class _ScriptedPolicy(SwitchingPolicy):
    """Returns a scripted sequence of selections."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def select(self, candidates, static, dynamic):
        choice = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        return choice


def _static():
    return StaticConstraints(
        deployable=frozenset(DetectorVersion),
        rejections={},
        fram_headroom_bytes={},
        sram_headroom_bytes={},
    )


def _dynamic(soc=1.0):
    return DynamicConstraints(battery_soc=soc)


ORIGINAL = DetectorVersion.ORIGINAL
SIMPLIFIED = DetectorVersion.SIMPLIFIED
REDUCED = DetectorVersion.REDUCED


class TestHysteresisPolicy:
    def test_first_selection_passes_through(self):
        policy = HysteresisPolicy(_ScriptedPolicy([SIMPLIFIED]), min_dwell_h=24.0)
        assert policy.select({}, _static(), _dynamic()) is SIMPLIFIED

    def test_upward_switch_suppressed_within_dwell(self):
        base = _ScriptedPolicy([SIMPLIFIED, ORIGINAL, ORIGINAL])
        policy = HysteresisPolicy(base, min_dwell_h=24.0)
        assert policy.select({}, _static(), _dynamic()) is SIMPLIFIED
        policy.advance_clock(6.0)
        assert policy.select({}, _static(), _dynamic()) is SIMPLIFIED
        assert policy.suppressed_switches == 1
        policy.advance_clock(30.0)  # dwell elapsed
        assert policy.select({}, _static(), _dynamic()) is ORIGINAL

    def test_downward_switch_is_immediate(self):
        """Battery emergencies never wait for the dwell."""
        base = _ScriptedPolicy([ORIGINAL, REDUCED])
        policy = HysteresisPolicy(base, min_dwell_h=1000.0)
        assert policy.select({}, _static(), _dynamic()) is ORIGINAL
        policy.advance_clock(1.0)
        assert policy.select({}, _static(), _dynamic(0.1)) is REDUCED
        assert policy.suppressed_switches == 0

    def test_stable_selection_never_suppressed(self):
        base = _ScriptedPolicy([SIMPLIFIED, SIMPLIFIED, SIMPLIFIED])
        policy = HysteresisPolicy(base, min_dwell_h=24.0)
        for _ in range(3):
            assert policy.select({}, _static(), _dynamic()) is SIMPLIFIED
        assert policy.suppressed_switches == 0

    def test_reset(self):
        policy = HysteresisPolicy(_ScriptedPolicy([ORIGINAL]), min_dwell_h=24.0)
        policy.select({}, _static(), _dynamic())
        policy.advance_clock(10.0)
        policy.reset()
        assert policy.suppressed_switches == 0
        assert policy._current is None

    def test_validation(self):
        with pytest.raises(ValueError):
            HysteresisPolicy(_ScriptedPolicy([ORIGINAL]), min_dwell_h=-1.0)
        policy = HysteresisPolicy(_ScriptedPolicy([ORIGINAL]))
        with pytest.raises(ValueError):
            policy.advance_clock(-5.0)


class TestHysteresisInEngine:
    def test_engine_advances_the_clock(self, trained_detectors, labeled_stream):
        """With the engine driving, hysteresis limits switch frequency
        without losing the step-down behaviour."""
        from repro.adaptive.engine import DecisionEngine
        from repro.adaptive.policy import SocThresholdPolicy
        from repro.sift_app.harness import AmuletSIFTRunner

        candidates = {}
        for version, detector in trained_detectors.items():
            runner = AmuletSIFTRunner(detector)
            result = runner.run_stream(labeled_stream)
            candidates[version] = VersionProfile(
                version=version,
                accuracy=result.report.accuracy,
                profile=runner.profile(period_s=3.0),
            )

        raw = DecisionEngine(candidates, SocThresholdPolicy())
        damped = DecisionEngine(
            candidates,
            HysteresisPolicy(SocThresholdPolicy(), min_dwell_h=48.0),
        )
        raw_timeline = raw.simulate_deployment(step_h=6.0)
        damped_timeline = damped.simulate_deployment(step_h=6.0)
        assert damped_timeline.n_switches <= raw_timeline.n_switches
        # Step-downs still happen: the damped run also ends on a lighter
        # build than it started with.
        versions = damped_timeline.versions_used()
        assert versions[-1] is not versions[0] or len(versions) == 1
