"""Tests for the authenticated channel -- and its architectural limit."""

import numpy as np
import pytest

from repro.attacks.replacement import ReplacementAttack
from repro.core.versions import DetectorVersion
from repro.wiot.secure_channel import (
    AuthenticatedPacket,
    PacketAuthenticator,
    PacketVerifier,
)
from repro.wiot.sensor import BodySensor, CompromisedSensor

KEY = b"0123456789abcdef0123456789abcdef"


@pytest.fixture()
def packets(test_record):
    return list(BodySensor("ecg-0", "ecg", test_record).packets())


class TestAuthentication:
    def test_honest_packets_verify(self, packets):
        signer = PacketAuthenticator(KEY)
        verifier = PacketVerifier(KEY)
        for packet in packets:
            assert verifier.verify(signer.sign(packet)) is packet
        assert verifier.accepted == len(packets)
        assert verifier.rejected_bad_tag == 0

    def test_tampered_samples_rejected(self, packets):
        signer = PacketAuthenticator(KEY)
        verifier = PacketVerifier(KEY)
        signed = signer.sign(packets[0])
        tampered_packet = BodySensor.__new__(BodySensor)  # noqa: F841 (clarity)
        forged = AuthenticatedPacket(
            packet=type(packets[0])(
                sensor_id=packets[0].sensor_id,
                channel=packets[0].channel,
                sequence=packets[0].sequence,
                start_time_s=packets[0].start_time_s,
                samples=packets[0].samples + 1.0,  # injected offset
                peak_indexes=packets[0].peak_indexes,
                sample_rate=packets[0].sample_rate,
            ),
            counter=signed.counter,
            tag=signed.tag,
        )
        assert verifier.verify(forged) is None
        assert verifier.rejected_bad_tag == 1

    def test_wrong_key_rejected(self, packets):
        signer = PacketAuthenticator(b"x" * 32)
        verifier = PacketVerifier(KEY)
        assert verifier.verify(signer.sign(packets[0])) is None
        assert verifier.rejected_bad_tag == 1

    def test_replayed_packet_rejected(self, packets):
        signer = PacketAuthenticator(KEY)
        verifier = PacketVerifier(KEY)
        signed = signer.sign(packets[0])
        assert verifier.verify(signed) is not None
        assert verifier.verify(signed) is None  # replay
        assert verifier.rejected_replay == 1

    def test_out_of_order_counter_rejected(self, packets):
        signer = PacketAuthenticator(KEY)
        verifier = PacketVerifier(KEY)
        first = signer.sign(packets[0])
        second = signer.sign(packets[1])
        assert verifier.verify(second) is not None
        assert verifier.verify(first) is None  # older counter
        assert verifier.rejected_replay == 1

    def test_validation(self, packets):
        with pytest.raises(ValueError):
            PacketAuthenticator(b"short")
        with pytest.raises(ValueError):
            PacketVerifier(b"short")
        with pytest.raises(ValueError):
            AuthenticatedPacket(packet=packets[0], counter=-1, tag=b"\0" * 32)
        with pytest.raises(ValueError):
            AuthenticatedPacket(packet=packets[0], counter=0, tag=b"\0" * 8)


class TestWhySIFTIsNeeded:
    """The paper's motivation, demonstrated: a hijacked sensor defeats a
    perfectly working authenticated channel, and only the data-driven
    detector catches it."""

    def test_hijacked_sensor_passes_authentication(
        self, test_record, test_donor_records, trained_detectors, rng
    ):
        hijacked = CompromisedSensor(
            BodySensor("ecg-0", "ecg", test_record),
            ReplacementAttack(test_donor_records),
            abp_record=test_record,
            active_after_s=0.0,
            rng=rng,
        )
        signer = PacketAuthenticator(KEY)  # the sensor's own key
        verifier = PacketVerifier(KEY)

        accepted = []
        for packet in hijacked.packets():
            verified = verifier.verify(signer.sign(packet))
            assert verified is not None, "authentication cannot see hijacking"
            accepted.append(verified)
        assert verifier.rejected_bad_tag == 0
        assert verifier.rejected_replay == 0

        # ...but SIFT, pairing the accepted ECG with the trusted ABP,
        # flags the forged stream.
        from repro.sift_app.payload import DeviceWindow

        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        abp_packets = list(BodySensor("abp-0", "abp", test_record).packets())
        flagged = 0
        for ecg_packet, abp_packet in zip(accepted, abp_packets):
            window = DeviceWindow(
                ecg=ecg_packet.samples.astype(np.float32),
                abp=abp_packet.samples.astype(np.float32),
                r_peaks=np.asarray(ecg_packet.peak_indexes, dtype=np.intp),
                systolic_peaks=np.asarray(abp_packet.peak_indexes, dtype=np.intp),
                sample_rate=ecg_packet.sample_rate,
            )
            # Use the reference classifier on the same payload.
            from repro.signals.dataset import SignalWindow

            signal_window = SignalWindow(
                ecg=window.ecg.astype(np.float64),
                abp=window.abp.astype(np.float64),
                r_peaks=window.r_peaks,
                systolic_peaks=window.systolic_peaks,
                sample_rate=window.sample_rate,
            )
            if detector.classify_window(signal_window):
                flagged += 1
        assert flagged / len(accepted) > 0.6
