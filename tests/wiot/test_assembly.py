"""Tests for bounded-memory window assembly (eviction, dedup, precedence)."""

import numpy as np
import pytest

from repro.wiot.assembly import BoundedDedup, WindowAssembler
from repro.wiot.channel import DeliveredPacket
from repro.wiot.sensor import SensorPacket

_SAMPLES = np.zeros(4, dtype=np.float64)
_PEAKS = np.array([1], dtype=np.intp)


def _delivered(sequence, channel="ecg", crc=None, corrupt=False):
    """A minimal delivery; ``crc=True`` stamps a valid CRC, ``corrupt``
    stamps a wrong one."""
    packet = SensorPacket(
        sensor_id=f"{channel}-0",
        channel=channel,
        sequence=sequence,
        start_time_s=sequence * 3.0,
        samples=_SAMPLES,
        peak_indexes=_PEAKS,
        sample_rate=360.0,
    )
    crc32 = None
    if crc or corrupt:
        crc32 = packet.payload_crc32() ^ (0xDEAD if corrupt else 0)
    return DeliveredPacket(packet=packet, arrival_time_s=sequence * 3.0, crc32=crc32)


class TestBoundedDedup:
    def test_membership_and_fifo_forgetting(self):
        dedup = BoundedDedup(capacity=3)
        for seq in (1, 2, 3):
            dedup.add(seq)
        assert all(seq in dedup for seq in (1, 2, 3))
        dedup.add(4)  # evicts 1, the oldest
        assert 1 not in dedup
        assert all(seq in dedup for seq in (2, 3, 4))
        assert len(dedup) == 3

    def test_add_is_idempotent(self):
        dedup = BoundedDedup(capacity=2)
        dedup.add(7)
        dedup.add(7)
        dedup.add(8)
        # The re-add of 7 must not have consumed a slot.
        assert 7 in dedup and 8 in dedup

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedDedup(capacity=0)


class TestWindowAssembler:
    def test_pairs_complete_windows(self):
        assembler = WindowAssembler()
        assert assembler.offer(_delivered(0, "ecg")) is None
        completed = assembler.offer(_delivered(0, "abp"))
        assert completed is not None
        sequence, slot = completed
        assert sequence == 0
        assert set(slot) == {"ecg", "abp"}
        assert assembler.n_pending == 0

    def test_resolved_sequence_rejected_as_duplicate(self):
        assembler = WindowAssembler()
        assembler.offer(_delivered(0, "ecg"))
        assembler.offer(_delivered(0, "abp"))
        assert assembler.offer(_delivered(0, "ecg")) is None
        assert assembler.duplicate_packets == 1

    def test_same_channel_redelivery_is_duplicate(self):
        assembler = WindowAssembler()
        assembler.offer(_delivered(0, "ecg"))
        assert assembler.offer(_delivered(0, "ecg")) is None
        assert assembler.duplicate_packets == 1
        # The window can still complete afterwards.
        assert assembler.offer(_delivered(0, "abp")) is not None

    def test_stale_half_evicted_and_counted(self):
        assembler = WindowAssembler(max_pending_lag=4)
        assembler.offer(_delivered(0, "ecg"))  # partner never arrives
        for seq in range(1, 6):
            assembler.offer(_delivered(seq, "ecg"))
            assembler.offer(_delivered(seq, "abp"))
        # Sequence 0 fell more than 4 behind the highest seen (5).
        assert assembler.incomplete_windows == 1
        assert assembler.n_pending == 0

    def test_late_partner_of_evicted_window_is_duplicate(self):
        assembler = WindowAssembler(max_pending_lag=2)
        assembler.offer(_delivered(0, "ecg"))
        for seq in range(1, 4):
            assembler.offer(_delivered(seq, "ecg"))
            assembler.offer(_delivered(seq, "abp"))
        assert assembler.incomplete_windows == 1
        # The ABP half arrives after its window was written off: it must
        # count as a duplicate, not seed a second pending slot that would
        # be evicted again (double-counting the same loss).
        assert assembler.offer(_delivered(0, "abp")) is None
        assert assembler.duplicate_packets == 1
        assert assembler.incomplete_windows == 1
        assert assembler.n_pending == 0

    def test_out_of_order_within_lag_still_pairs(self):
        assembler = WindowAssembler(max_pending_lag=8)
        assembler.offer(_delivered(3, "ecg"))
        assembler.offer(_delivered(1, "ecg"))  # behind, but within lag
        assert assembler.offer(_delivered(1, "abp")) is not None
        assert assembler.offer(_delivered(3, "abp")) is not None
        assert assembler.incomplete_windows == 0

    def test_flush_counts_all_pending(self):
        assembler = WindowAssembler()
        assembler.offer(_delivered(0, "ecg"))
        assembler.offer(_delivered(1, "abp"))
        assert assembler.flush() == 2
        assert assembler.incomplete_windows == 2
        assert assembler.n_pending == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowAssembler(max_pending_lag=0)
        WindowAssembler(max_pending_lag=None)  # explicit opt-out is fine


class TestIntegrityPrecedence:
    """Corruption wins over duplicate, in both arrival orders."""

    def test_corrupt_then_duplicate(self):
        assembler = WindowAssembler()
        # A corrupted delivery of a never-seen sequence: corrupted only.
        assert assembler.offer(_delivered(5, "ecg", corrupt=True)) is None
        assert assembler.corrupted_packets == 1
        assert assembler.corrupted_duplicate_packets == 0
        assert assembler.duplicate_packets == 0
        # The corrupt packet must not have seeded pending state.
        assert assembler.n_pending == 0

    def test_duplicate_then_corrupt(self):
        assembler = WindowAssembler()
        assembler.offer(_delivered(0, "ecg", crc=True))
        assembler.offer(_delivered(0, "abp", crc=True))
        # A corrupted retransmission of the resolved sequence: corruption
        # takes precedence (the claimed sequence is untrustworthy), with
        # the overlap exposed separately.
        assert assembler.offer(_delivered(0, "ecg", corrupt=True)) is None
        assert assembler.corrupted_packets == 1
        assert assembler.corrupted_duplicate_packets == 1
        assert assembler.duplicate_packets == 0
        # An *intact* retransmission is a plain duplicate.
        assert assembler.offer(_delivered(0, "ecg", crc=True)) is None
        assert assembler.duplicate_packets == 1
        assert assembler.corrupted_packets == 1


class TestLongStreamMemoryBound:
    def test_hundred_thousand_half_lost_windows_hold_bounded_state(self):
        """A multi-day stream that loses one half of every other window
        must hold O(lag) pending state and O(capacity) dedup state --
        with every lost window counted, exactly once."""
        lag, capacity = 64, 512
        assembler = WindowAssembler(max_pending_lag=lag, dedup_capacity=capacity)
        n_windows = 100_000
        completed = 0
        for seq in range(n_windows):
            if assembler.offer(_delivered(seq, "ecg")) is not None:
                completed += 1
            if seq % 2 == 0:  # odd windows lose their ABP half
                if assembler.offer(_delivered(seq, "abp")) is not None:
                    completed += 1
            # The memory bound holds *throughout*, not just at the end.
            if seq % 10_000 == 0:
                assert assembler.n_pending <= lag + 1
                assert assembler.n_resolved_tracked <= capacity
        assert completed == n_windows // 2
        assert assembler.n_pending <= lag + 1
        assert assembler.n_resolved_tracked <= capacity
        # Lost windows: every odd sequence, minus those still pending.
        still_pending = assembler.n_pending
        assert assembler.incomplete_windows == n_windows // 2 - still_pending
        assert assembler.flush() == still_pending
        assert assembler.incomplete_windows == n_windows // 2
        assert assembler.duplicate_packets == 0

    def test_unbounded_mode_keeps_historical_behaviour(self):
        """``max_pending_lag=None`` never evicts: the half-lost windows
        all sit in pending until an explicit flush."""
        assembler = WindowAssembler(max_pending_lag=None, dedup_capacity=64)
        for seq in range(500):
            assembler.offer(_delivered(seq, "ecg"))
            if seq % 2 == 0:
                assembler.offer(_delivered(seq, "abp"))
        assert assembler.n_pending == 250
        assert assembler.incomplete_windows == 0
        assert assembler.flush() == 250
