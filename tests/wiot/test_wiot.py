"""Tests for the WIoT environment: sensors, channel, base station, sink."""

import numpy as np
import pytest

from repro.attacks.replacement import ReplacementAttack
from repro.core.versions import DetectorVersion
from repro.wiot.basestation import BaseStation
from repro.wiot.channel import WirelessChannel
from repro.wiot.environment import WIoTEnvironment
from repro.wiot.sensor import BodySensor, CompromisedSensor
from repro.wiot.sink import Sink


class TestBodySensor:
    def test_packetization(self, test_record):
        sensor = BodySensor("ecg-0", "ecg", test_record, packet_s=3.0)
        packets = list(sensor.packets())
        assert len(packets) == sensor.n_packets == 20
        assert all(p.samples.size == 1080 for p in packets)
        assert [p.sequence for p in packets] == list(range(20))

    def test_channel_selection(self, test_record):
        ecg = next(BodySensor("e", "ecg", test_record).packets())
        abp = next(BodySensor("a", "abp", test_record).packets())
        assert np.array_equal(ecg.samples, test_record.ecg[:1080])
        assert np.array_equal(abp.samples, test_record.abp[:1080])

    def test_peaks_match_channel(self, test_record):
        packet = next(BodySensor("e", "ecg", test_record).packets())
        window = test_record.window(0, 1080)
        assert np.array_equal(packet.peak_indexes, window.r_peaks)

    def test_rejects_unknown_channel(self, test_record):
        with pytest.raises(ValueError):
            BodySensor("x", "emg", test_record)


class TestCompromisedSensor:
    def test_alters_only_after_activation(
        self, test_record, test_donor_records, rng
    ):
        base = BodySensor("ecg-0", "ecg", test_record, packet_s=3.0)
        hijacked = CompromisedSensor(
            base,
            ReplacementAttack(test_donor_records),
            abp_record=test_record,
            active_after_s=30.0,
            rng=rng,
        )
        originals = list(base.packets())
        for packet, original in zip(hijacked.packets(), originals):
            if packet.start_time_s < 30.0:
                assert np.array_equal(packet.samples, original.samples)
            else:
                assert not np.array_equal(packet.samples, original.samples)

    def test_only_ecg_can_be_hijacked(self, test_record, test_donor_records):
        abp_sensor = BodySensor("abp-0", "abp", test_record)
        with pytest.raises(ValueError, match="ABP is trusted"):
            CompromisedSensor(
                abp_sensor,
                ReplacementAttack(test_donor_records),
                abp_record=test_record,
            )


class TestWirelessChannel:
    def test_lossless_by_default(self, test_record):
        channel = WirelessChannel()
        sensor = BodySensor("e", "ecg", test_record)
        delivered = [channel.transmit(p) for p in sensor.packets()]
        assert all(d is not None for d in delivered)
        assert channel.delivery_rate == 1.0

    def test_loss_rate_approximates_probability(self, test_record):
        channel = WirelessChannel(loss_probability=0.3, seed=1)
        sensor = BodySensor("e", "ecg", test_record, packet_s=0.5)
        outcomes = [channel.transmit(p) is None for p in sensor.packets()]
        assert 0.1 < np.mean(outcomes) < 0.5

    def test_latency_bounds(self, test_record):
        channel = WirelessChannel(base_latency_s=0.05, jitter_s=0.1)
        packet = next(BodySensor("e", "ecg", test_record).packets())
        delivered = channel.transmit(packet)
        lag = delivered.arrival_time_s - packet.start_time_s
        assert 0.05 <= lag <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError):
            WirelessChannel(loss_probability=1.0)
        with pytest.raises(ValueError):
            WirelessChannel(base_latency_s=-0.1)


class TestBaseStation:
    def test_classifies_complete_windows(
        self, trained_detectors, test_record
    ):
        station = BaseStation(trained_detectors[DetectorVersion.REDUCED])
        channel = WirelessChannel()
        ecg = BodySensor("e", "ecg", test_record)
        abp = BodySensor("a", "abp", test_record)
        for e_packet, a_packet in zip(ecg.packets(), abp.packets()):
            station.receive(channel.transmit(e_packet))
            station.receive(channel.transmit(a_packet))
        assert len(station.verdicts) == 20
        assert station.flush_incomplete() == 0

    def test_skips_windows_missing_a_half(
        self, trained_detectors, test_record
    ):
        station = BaseStation(trained_detectors[DetectorVersion.REDUCED])
        ecg = BodySensor("e", "ecg", test_record)
        abp = BodySensor("a", "abp", test_record)
        channel = WirelessChannel()
        for i, (e_packet, a_packet) in enumerate(zip(ecg.packets(), abp.packets())):
            station.receive(channel.transmit(e_packet))
            if i % 4 != 0:  # drop every 4th ABP half
                station.receive(channel.transmit(a_packet))
        assert len(station.verdicts) == 15
        assert station.flush_incomplete() == 5
        assert station.incomplete_windows == 5

    def test_sink_receives_verdicts(self, trained_detectors, test_record):
        sink = Sink()
        station = BaseStation(trained_detectors[DetectorVersion.REDUCED], sink=sink)
        channel = WirelessChannel()
        ecg = BodySensor("e", "ecg", test_record)
        abp = BodySensor("a", "abp", test_record)
        for e_packet, a_packet in zip(ecg.packets(), abp.packets()):
            station.receive(channel.transmit(e_packet))
            station.receive(channel.transmit(a_packet))
        assert sink.n_stored == 20


class TestSink:
    def test_queries(self):
        from repro.wiot.basestation import WindowVerdict

        sink = Sink()
        for i in range(10):
            sink.store_verdict(
                WindowVerdict(
                    sequence=i,
                    time_s=3.0 * i,
                    altered=(i >= 5),
                    decision_value=0.1,
                )
            )
        assert sink.alert_fraction == 0.5
        assert sink.first_alert_time() == 15.0
        assert len(sink.alerts_between(15.0, 24.0)) == 3
        with pytest.raises(ValueError):
            sink.alerts_between(5.0, 1.0)

    def test_empty_sink(self):
        sink = Sink()
        assert sink.alert_fraction == 0.0
        assert sink.first_alert_time() is None


class TestWIoTEnvironment:
    def test_benign_session_mostly_quiet(self, trained_detectors, dataset, victim):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        environment = WIoTEnvironment(detector)
        record = dataset.record(victim, 60.0, purpose="extra")
        summary = environment.run(record, attack=None)
        assert summary.n_windows_classified == summary.n_windows_sent == 20
        assert summary.report.false_positive_rate < 0.4
        assert summary.attack_active_after_s is None

    def test_attack_detected(
        self, trained_detectors, dataset, victim, test_donor_records
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        environment = WIoTEnvironment(detector)
        record = dataset.record(victim, 60.0, purpose="extra")
        summary = environment.run(
            record,
            attack=ReplacementAttack(test_donor_records),
            attack_after_s=30.0,
            rng=np.random.default_rng(0),
        )
        assert summary.alert_count >= 5
        assert summary.report.accuracy > 0.7
        assert summary.detection_latency_s is not None

    def test_lossy_channel_costs_windows_not_correctness(
        self, trained_detectors, dataset, victim
    ):
        detector = trained_detectors[DetectorVersion.REDUCED]
        environment = WIoTEnvironment(
            detector, channel=WirelessChannel(loss_probability=0.2, seed=3)
        )
        record = dataset.record(victim, 60.0, purpose="extra")
        summary = environment.run(record)
        assert summary.n_windows_classified < summary.n_windows_sent
        assert (
            summary.n_windows_classified + summary.n_windows_lost
            == summary.n_windows_sent
        )
