"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.version == "simplified"
        assert args.seed == 42

    def test_version_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--version", "huge"])

    def test_export_rejects_original(self):
        """Original deploys a float model, not fixed-point C."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "--version", "original"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--version", "reduced"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "FP" in out

    def test_profile_runs(self, capsys):
        assert main(["profile", "--version", "reduced"]) == 0
        out = capsys.readouterr().out
        assert "FRAM layout" in out
        assert "battery-life slider" in out

    def test_export_writes_artifacts(self, tmp_path, capsys):
        stem = tmp_path / "model"
        assert main(["export", "--version", "reduced", "--out", str(stem)]) == 0
        json_text = (tmp_path / "model.json").read_text()
        c_text = (tmp_path / "model.c").read_text()
        assert '"version": "reduced"' in json_text
        assert "sift_classify" in c_text

    def test_exported_model_loads(self, tmp_path):
        from repro.core.serialization import load_detector

        stem = tmp_path / "model"
        main(["export", "--version", "simplified", "--out", str(stem)])
        detector = load_detector(tmp_path / "model.json")
        assert detector.version.value == "simplified"
