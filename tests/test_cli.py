"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.version == "simplified"
        assert args.seed == 42

    def test_version_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--version", "huge"])

    def test_export_rejects_original(self):
        """Original deploys a float model, not fixed-point C."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "--version", "original"])


class TestCommands:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--version", "reduced"]) == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "FP" in out

    def test_profile_runs(self, capsys):
        assert main(["profile", "--version", "reduced"]) == 0
        out = capsys.readouterr().out
        assert "FRAM layout" in out
        assert "battery-life slider" in out

    def test_export_writes_artifacts(self, tmp_path, capsys):
        stem = tmp_path / "model"
        assert main(["export", "--version", "reduced", "--out", str(stem)]) == 0
        json_text = (tmp_path / "model.json").read_text()
        c_text = (tmp_path / "model.c").read_text()
        assert '"version": "reduced"' in json_text
        assert "sift_classify" in c_text

    def test_exported_model_loads(self, tmp_path):
        from repro.core.serialization import load_detector

        stem = tmp_path / "model"
        main(["export", "--version", "simplified", "--out", str(stem)])
        detector = load_detector(tmp_path / "model.json")
        assert detector.version.value == "simplified"


class TestNativeFlags:
    def test_demo_platform_choices(self):
        args = build_parser().parse_args(["demo", "--platform", "native"])
        assert args.platform == "native"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--platform", "cuda"])

    def test_gateway_bench_platform_flag(self):
        args = build_parser().parse_args(["gateway-bench", "--platform", "native"])
        assert args.platform == "native"

    def test_demo_native_runs(self, capsys):
        """Scores natively where possible, falls back (with a warning)
        elsewhere -- either way the command succeeds and reports the path."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert main(["demo", "--version", "reduced", "--platform", "native"]) == 0
        out = capsys.readouterr().out
        assert "scored on" in out

    def test_export_native_c(self, tmp_path):
        stem = tmp_path / "model"
        assert main([
            "export", "--version", "reduced", "--out", str(stem), "--native-c",
        ]) == 0
        native_c = (tmp_path / "model.native.c").read_text()
        assert "sift_score_windows" in native_c
        # The emitted hot path is clean under the native lint profile.
        from repro.analysis.c_checker import check_c_source

        assert check_c_source(native_c, profile="native") == []


class TestBenchGateDirectories:
    def _trajectory(self, tmp_path, name, stamp):
        import json
        import os

        path = tmp_path / name
        path.write_text(json.dumps({
            "schema": 1,
            "generated_at": "2026-01-01T00:00:00+0000",
            "label": "bench",
            "quick": True,
            "jobs": 1,
            "python": "3.11",
            "calibration_s": 0.03,
            "studies": {
                "demo": {"wall_s": 1.0, "units": 1, "recomputed_units": 1,
                          "cached_units": 0, "units_detail": []},
            },
        }))
        os.utime(path, (stamp, stamp))
        return path

    def test_directory_resolves_to_newest_stamped_file(self, tmp_path, capsys):
        self._trajectory(tmp_path, "BENCH_20260101-000000.json", 1_000)
        self._trajectory(tmp_path, "BENCH_20260201-000000.json", 2_000)
        assert main([
            "bench-gate", str(tmp_path), str(tmp_path),
        ]) == 0
        assert "no perf regressions" in capsys.readouterr().out

    def test_empty_directory_is_an_error(self, tmp_path, capsys):
        assert main(["bench-gate", str(tmp_path), str(tmp_path)]) == 2
        assert "no BENCH_*.json" in capsys.readouterr().err
