"""Regression: a bench session must land a discoverable perf trajectory.

The perf-trajectory bug this guards against: bench modules that called
``benchmark(...)`` directly never recorded a sample, so whole sessions
finished with an *empty* trajectory buffer and ``BENCH_<stamp>.json``
was never written -- the CI bench-gate then compared stale records and
regressions sailed through.  Every stream-scoring bench now routes
through ``run_once(study=...)``; this test runs a real (tiny) bench
session in a subprocess and asserts the stamped record exists and is
non-empty.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_bench_session_stamps_nonempty_trajectory(tmp_path):
    env = os.environ.copy()
    env["REPRO_BENCH_RESULTS"] = str(tmp_path)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "benchmarks/bench_batch.py::test_batch_stream_scoring",
            "-q",
            "--quick",
            "--benchmark-disable",
            "-p",
            "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr

    stamped = sorted(
        p for p in tmp_path.glob("BENCH_*.json") if p.name != "BENCH_latest.json"
    )
    assert stamped, (
        "bench session produced no stamped trajectory; "
        f"results dir holds {sorted(p.name for p in tmp_path.iterdir())}"
    )
    record = json.loads(stamped[-1].read_text())
    assert record["studies"], "trajectory written but empty"
    batch = record["studies"]["batch"]
    assert batch["units"] >= 1
    assert batch["wall_s"] > 0.0
    # The convenience copy the CI gate globs must exist and agree.
    latest = json.loads((tmp_path / "BENCH_latest.json").read_text())
    assert latest["studies"].keys() == record["studies"].keys()
