"""The zero-copy dataset plane: publish/attach, seeding, cleanup.

The cleanup tests grep ``/dev/shm`` (via :func:`leaked_segments`) after
normal completion, forced worker crashes and a simulated
``KeyboardInterrupt``: a leaked segment on any path is a bug, not an
inconvenience -- ``/dev/shm`` is RAM.

The worker-side proofs monkeypatch *before* the pool starts and clear
the parent's experiment cache right before forking, so workers cannot
coast on fork-inherited records: completing a cohort with synthesis
forbidden means the records really travelled through the plane.
"""

from __future__ import annotations

import gc
import os
import pickle

import numpy as np
import pytest

import repro.experiments.runner as runner_module
from repro.experiments import ExperimentConfig
from repro.experiments.cache import EXPERIMENT_CACHE, ExperimentCache
from repro.experiments.dataplane import (
    _ATTACHED,
    DatasetPlane,
    attach_records,
    attached_plane_tokens,
    leaked_segments,
    realize_cohort_records,
    seed_worker_cache,
)
from repro.experiments.pipeline import record_cache_key
from repro.experiments.runner import CohortRunner
from repro.signals.dataset import SyntheticFantasia


@pytest.fixture(scope="module")
def config(quick_config):
    return quick_config


@pytest.fixture(scope="module")
def cohort_records(config):
    return realize_cohort_records(config)


@pytest.fixture(autouse=True)
def _drop_attachments():
    """Each test starts and ends with no in-process attachments."""
    yield
    for plane in _ATTACHED.values():
        plane.records.clear()
        if plane.shm is not None:
            try:
                plane.shm.close()
            except BufferError:
                pass
    _ATTACHED.clear()


def _forbid_synthesis(monkeypatch):
    def forbidden(self, *args, **kwargs):
        raise AssertionError("record synthesized despite the dataset plane")

    monkeypatch.setattr(SyntheticFantasia, "record", forbidden)


class TestPublishAttach:
    def test_shm_roundtrip_is_bit_identical(self, cohort_records):
        with DatasetPlane.publish(cohort_records, backend="shm") as plane:
            assert plane.manifest.backend == "shm"
            attached = attach_records(plane.manifest)
            assert set(attached) == set(cohort_records)
            for key, record in cohort_records.items():
                for name in ("ecg", "abp", "r_peaks", "systolic_peaks"):
                    mine, theirs = getattr(record, name), getattr(attached[key], name)
                    assert mine.dtype == theirs.dtype
                    assert np.array_equal(mine, theirs)
                assert attached[key].subject_id == record.subject_id
                assert attached[key].sample_rate == record.sample_rate
            EXPERIMENT_CACHE.clear()  # release the views before unlink

    def test_npz_roundtrip_is_bit_identical(self, cohort_records, tmp_path):
        with DatasetPlane.publish(
            cohort_records, backend="npz", directory=str(tmp_path)
        ) as plane:
            assert plane.manifest.backend == "npz"
            attached = attach_records(plane.manifest)
            key = next(iter(cohort_records))
            assert np.array_equal(attached[key].ecg, cohort_records[key].ecg)
            # npz attachment copies eagerly: deleting the artifact is safe.
            os.unlink(plane.manifest.path)
            assert np.array_equal(attached[key].abp, cohort_records[key].abp)

    def test_auto_falls_back_to_npz(self, cohort_records, monkeypatch, tmp_path):
        def refuse(cls, *args):
            raise OSError("no shared memory here")

        monkeypatch.setattr(DatasetPlane, "_publish_shm", classmethod(refuse))
        with DatasetPlane.publish(
            cohort_records, directory=str(tmp_path)
        ) as plane:
            assert plane.manifest.backend == "npz"
        assert not os.path.exists(plane.manifest.path)

    def test_fallback_logs_a_structured_warning(
        self, cohort_records, monkeypatch, tmp_path, caplog
    ):
        """Regression: the shm->npz fallback used to swallow the cause
        silently; it must now warn with the error type and message."""

        def refuse(cls, *args):
            raise OSError("no shared memory here")

        monkeypatch.setattr(DatasetPlane, "_publish_shm", classmethod(refuse))
        with caplog.at_level("WARNING", logger="repro.experiments.dataplane"):
            with DatasetPlane.publish(
                cohort_records, directory=str(tmp_path)
            ) as plane:
                assert plane.manifest.backend == "npz"
        assert any(
            "OSError" in rec.message and "no shared memory here" in rec.message
            for rec in caplog.records
        )

    def test_unexpected_publish_error_propagates(
        self, cohort_records, monkeypatch
    ):
        """Only PUBLISH_ERRORS may trigger the fallback; a genuine bug
        (e.g. a TypeError) must surface, not degrade to npz."""

        def broken(cls, *args):
            raise TypeError("genuine bug")

        monkeypatch.setattr(DatasetPlane, "_publish_shm", classmethod(broken))
        with pytest.raises(TypeError, match="genuine bug"):
            DatasetPlane.publish(cohort_records)

    def test_forced_shm_backend_raises_instead_of_falling_back(
        self, cohort_records, monkeypatch
    ):
        def refuse(cls, *args):
            raise OSError("no shared memory here")

        monkeypatch.setattr(DatasetPlane, "_publish_shm", classmethod(refuse))
        with pytest.raises(OSError, match="no shared memory"):
            DatasetPlane.publish(cohort_records, backend="shm")

    def test_unknown_backend_rejected(self, cohort_records):
        with pytest.raises(ValueError, match="backend"):
            DatasetPlane.publish(cohort_records, backend="mmap")

    def test_manifest_pickles(self, cohort_records):
        with DatasetPlane.publish(cohort_records) as plane:
            clone = pickle.loads(pickle.dumps(plane.manifest))
            assert clone == plane.manifest

    def test_unlink_is_idempotent_and_tracked(self, cohort_records):
        plane = DatasetPlane.publish(cohort_records)
        assert plane.alive
        assert leaked_segments() == [plane.manifest.token]
        plane.unlink()
        plane.unlink()
        plane.close()
        assert not plane.alive
        assert leaked_segments() == []

    def test_garbage_collection_unlinks(self, cohort_records):
        plane = DatasetPlane.publish(cohort_records)
        token = plane.manifest.token
        del plane
        gc.collect()
        assert token not in leaked_segments()


class TestWorkerCacheSeeding:
    def test_seeding_lets_run_subject_complete_without_synthesis(
        self, config, cohort_records, monkeypatch
    ):
        from repro.experiments.pipeline import make_dataset, run_subject

        with DatasetPlane.publish(cohort_records) as plane:
            EXPERIMENT_CACHE.clear()
            seed_worker_cache(plane.manifest)
            _forbid_synthesis(monkeypatch)
            dataset = make_dataset(config)
            result = run_subject(
                dataset, dataset.subjects[0], "reduced", config, with_device=False
            )
            assert result.n_test_windows > 0
            EXPERIMENT_CACHE.clear()

    def test_seeded_keys_are_the_pipeline_record_keys(self, config, cohort_records):
        with DatasetPlane.publish(cohort_records) as plane:
            EXPERIMENT_CACHE.clear()
            seed_worker_cache(plane.manifest)
            subject = next(iter(cohort_records.values())).subject_id
            key = record_cache_key(
                config, subject, config.train_duration_s, "train"
            )
            assert key in cohort_records
            stats = EXPERIMENT_CACHE.stats()
            assert stats["size"] == len(cohort_records)
            # Shared views are billed one byte each, not their nbytes.
            assert stats["resident_bytes"] == len(cohort_records)
            EXPERIMENT_CACHE.clear()

    def test_npz_seeding_bills_real_bytes(self, cohort_records, tmp_path):
        with DatasetPlane.publish(
            cohort_records, backend="npz", directory=str(tmp_path)
        ) as plane:
            EXPERIMENT_CACHE.clear()
            seed_worker_cache(plane.manifest)
            expected = sum(r.nbytes for r in cohort_records.values())
            assert EXPERIMENT_CACHE.stats()["resident_bytes"] == expected
            EXPERIMENT_CACHE.clear()

    def test_attaching_a_new_plane_evicts_the_stale_one(
        self, cohort_records, tmp_path
    ):
        with DatasetPlane.publish(cohort_records) as first:
            attach_records(first.manifest)
            assert attached_plane_tokens() == (first.manifest.token,)
            EXPERIMENT_CACHE.clear()  # release the first plane's views
            with DatasetPlane.publish(
                cohort_records, backend="npz", directory=str(tmp_path)
            ) as second:
                attach_records(second.manifest)
                assert attached_plane_tokens() == (second.manifest.token,)


class TestExperimentCachePut:
    def test_put_uses_cost_override(self):
        cache = ExperimentCache(max_bytes=None)
        cache.put("k", np.zeros(1000), cost=1)
        assert cache.stats()["resident_bytes"] == 1

    def test_put_replaces_and_rebills(self):
        cache = ExperimentCache(max_bytes=None)
        cache.put("k", "a", cost=10)
        cache.put("k", "b", cost=3)
        assert cache.stats()["resident_bytes"] == 3
        assert cache.get_or_create("k", lambda: "nope") == "b"

    def test_put_refreshes_lru_recency(self):
        cache = ExperimentCache(max_bytes=20)
        cache.put("old", "x", cost=8)
        cache.put("new", "y", cost=8)
        cache.put("old", "x", cost=8)  # refresh: "new" is now the LRU entry
        cache.put("third", "z", cost=8)
        assert cache.get_or_create("old", lambda: "evicted") == "x"

    def test_disabled_cache_ignores_put(self):
        cache = ExperimentCache(enabled=False)
        cache.put("k", "v")
        assert cache.stats()["size"] == 0


class TestWorkerDatasetMemo:
    def test_varying_configs_do_not_accumulate(self):
        """Regression: the per-worker dataset memo used to keep one cohort
        per config ever seen, growing without bound over sweeps."""
        first = ExperimentConfig.quick()
        second = ExperimentConfig.quick(seed=first.seed + 1)
        runner_module._worker_dataset(first)
        runner_module._worker_dataset(second)
        assert list(runner_module._WORKER_DATASETS) == [
            (second.n_subjects, second.seed, second.sample_rate)
        ]

    def test_same_config_reuses_the_memoized_dataset(self):
        config = ExperimentConfig.quick()
        dataset = runner_module._worker_dataset(config)
        assert runner_module._worker_dataset(config) is dataset


class TestRunnerPlane:
    def test_parallel_run_feeds_workers_from_the_plane(
        self, config, monkeypatch
    ):
        """Workers complete with synthesis forbidden and their inherited
        cache emptied: the records can only have come through the plane."""
        realize_cohort_records(config)  # warm the parent for publishing
        real = CohortRunner._run_parallel

        def clear_then_run(self, tasks):
            # The plane is published by now; dropping the parent cache
            # here means forked workers inherit nothing useful.
            EXPERIMENT_CACHE.clear()
            return real(self, tasks)

        monkeypatch.setattr(CohortRunner, "_run_parallel", clear_then_run)
        _forbid_synthesis(monkeypatch)
        with CohortRunner(config=config, jobs=2, with_device=False) as runner:
            outcomes = runner.run_version("reduced", subjects=[0, 1])
        assert [o.ok for o in outcomes] == [True, True]
        assert leaked_segments() == []

    def test_parallel_results_match_serial(self, config):
        with CohortRunner(config=config, jobs=1, with_device=False) as serial:
            base = serial.run_version("reduced", subjects=[0, 1])
        with CohortRunner(config=config, jobs=2, with_device=False) as runner:
            fanned = runner.run_version("reduced", subjects=[0, 1])
        for a, b in zip(base, fanned):
            assert a.ok and b.ok
            assert a.result.reference_report == b.result.reference_report
        assert leaked_segments() == []

    def test_plane_is_reused_across_versions_and_extended_for_new_subjects(
        self, config
    ):
        with CohortRunner(config=config, jobs=2, with_device=False) as runner:
            runner.run_version("reduced", subjects=[0, 1])
            assert runner.plane is not None and runner.plane.alive
            token = runner.plane.manifest.token
            runner.run_version("simplified", subjects=[0, 1])
            assert runner.plane.manifest.token == token  # covered: reused
            runner.run_version("reduced", subjects=[2, 3])
            assert runner.plane.manifest.token != token  # extended: new segment
        assert runner.plane is None
        assert leaked_segments() == []

    def test_share_dataset_false_never_publishes(self, config):
        with CohortRunner(
            config=config, jobs=2, with_device=False, share_dataset=False
        ) as runner:
            outcomes = runner.run_version("reduced", subjects=[0, 1])
        assert all(o.ok for o in outcomes)
        assert runner.plane is None
        assert leaked_segments() == []

    def test_publish_failure_degrades_to_per_worker_synthesis(
        self, config, monkeypatch, caplog
    ):
        def refuse(records, backend="auto", directory=None):
            raise OSError("plane refused")

        monkeypatch.setattr(
            runner_module.DatasetPlane, "publish", staticmethod(refuse)
        )
        with caplog.at_level("WARNING", logger="repro.experiments.runner"):
            with CohortRunner(config=config, jobs=2, with_device=False) as runner:
                outcomes = runner.run_version("reduced", subjects=[0, 1])
        assert all(o.ok for o in outcomes)
        assert runner.plane is None
        assert leaked_segments() == []
        # The degradation is no longer silent: the cause is logged.
        assert any(
            "OSError" in rec.message and "plane refused" in rec.message
            for rec in caplog.records
        )

    def test_no_leak_after_forced_worker_crash(
        self, config, monkeypatch, tmp_path
    ):
        """The plane survives the pool rebuild (workers re-attach the same
        segment) and is still unlinked exactly once at close."""
        sentinel = tmp_path / "crashed-once"
        real = runner_module.run_subject

        def crash_once(dataset, subject, version, cfg, with_device, chunk_size=None):
            if subject is dataset.subjects[1] and not sentinel.exists():
                sentinel.write_text("crashed")
                os._exit(17)
            return real(
                dataset,
                subject,
                version,
                cfg,
                with_device=with_device,
                chunk_size=chunk_size,
            )

        monkeypatch.setattr(runner_module, "run_subject", crash_once)
        with CohortRunner(
            config=config,
            jobs=2,
            with_device=False,
            max_retries=1,
            retry_backoff_s=0.0,
        ) as runner:
            outcomes = runner.run_version("reduced", subjects=[0, 1])
            assert runner.pool_rebuilds == 1
            assert runner.plane is not None and runner.plane.alive
        assert sentinel.exists()
        assert [o.ok for o in outcomes] == [True, True]
        assert leaked_segments() == []

    def test_no_leak_after_keyboard_interrupt(self, config, monkeypatch):
        published = {}

        def interrupt(self, tasks):
            assert self._plane is not None and self._plane.alive
            published["token"] = self._plane.manifest.token
            raise KeyboardInterrupt

        monkeypatch.setattr(CohortRunner, "_run_parallel", interrupt)
        runner = CohortRunner(config=config, jobs=2, with_device=False)
        with pytest.raises(KeyboardInterrupt):
            runner.run_version("reduced", subjects=[0, 1])
        assert published["token"].startswith("sift_plane_")
        assert runner.plane is None
        assert leaked_segments() == []
        runner.close()
