"""Fault tolerance of the hardened cohort runner.

Worker crashes and hangs are injected by monkeypatching
``repro.experiments.runner.run_subject`` *before* the pool starts: the
runner's pools fork, so the children inherit the patched module.  Each
test asserts the survivors' outcomes arrive complete, in cohort order,
with structured fault reports for the casualties.
"""

from __future__ import annotations

import os
import time

import pytest

import repro.experiments.runner as runner_module
from repro.core.backoff import JitteredBackoff
from repro.experiments.runner import CohortRunner, TaskFaultReport


@pytest.fixture(scope="module")
def config(quick_config):
    return quick_config


def _passthrough(real):
    def call(dataset, subject, version, cfg, with_device, chunk_size=None):
        return real(
            dataset,
            subject,
            version,
            cfg,
            with_device=with_device,
            chunk_size=chunk_size,
        )

    return call


class TestFaultReport:
    def test_error_string_keeps_legacy_format(self):
        report = TaskFaultReport(
            kind="exception", error_type="RuntimeError", message="boom", attempts=2
        )
        assert report.error == "RuntimeError: boom"
        assert "[exception]" in report.describe()
        assert "2 attempts" in report.describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            TaskFaultReport(
                kind="cosmic-ray", error_type="X", message="m", attempts=1
            )

    def test_knob_validation(self, config):
        with pytest.raises(ValueError, match="task_timeout_s"):
            CohortRunner(config=config, task_timeout_s=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            CohortRunner(config=config, max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff_s"):
            CohortRunner(config=config, retry_backoff_s=-0.5)
        with pytest.raises(ValueError, match="retry_jitter"):
            CohortRunner(config=config, retry_jitter=1.5)


class TestSerialRetries:
    def test_transient_failure_recovers(self, config, monkeypatch):
        real = runner_module.run_subject
        calls = {"n": 0}

        def flaky(dataset, subject, version, cfg, with_device, chunk_size=None):
            if subject is dataset.subjects[0]:
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise RuntimeError("transient")
            return _passthrough(real)(
                dataset, subject, version, cfg, with_device, chunk_size
            )

        monkeypatch.setattr(runner_module, "run_subject", flaky)
        runner = CohortRunner(
            config=config,
            jobs=1,
            with_device=False,
            max_retries=2,
            retry_backoff_s=0.0,
        )
        outcomes = runner.run_version("reduced", subjects=[0])
        assert outcomes[0].ok
        assert calls["n"] == 3

    def test_persistent_failure_reports_attempts(self, config, monkeypatch):
        def doomed(dataset, subject, version, cfg, with_device, chunk_size=None):
            raise RuntimeError("always broken")

        monkeypatch.setattr(runner_module, "run_subject", doomed)
        runner = CohortRunner(
            config=config,
            jobs=1,
            with_device=False,
            max_retries=2,
            retry_backoff_s=0.0,
        )
        outcomes = runner.run_version("reduced", subjects=[0])
        assert not outcomes[0].ok
        assert outcomes[0].error == "RuntimeError: always broken"
        fault = outcomes[0].fault
        assert fault.kind == "exception"
        assert fault.attempts == 3  # the first try plus two retries


class TestBackoffBudget:
    """The backoff invariant: sleep is paid only when a retry follows.

    ``_retry_after_failure`` is the single gate between a failure and its
    exponential sleep, so a task that exhausts its retries must sleep
    exactly ``sum(min(cap, base * 2**(k-1)) for k in 1..N)`` seconds in
    total for ``max_retries=N`` with jitter disabled -- never an extra
    capped sleep after the final attempt it already knows is the last --
    and, with jitter enabled, exactly the seeded
    :class:`~repro.core.backoff.JitteredBackoff` sequence.
    """

    @staticmethod
    def _record_sleeps(monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            runner_module.time, "sleep", lambda s: sleeps.append(s)
        )
        return sleeps

    def _doom(self, monkeypatch):
        def doomed(dataset, subject, version, cfg, with_device, chunk_size=None):
            raise RuntimeError("always broken")

        monkeypatch.setattr(runner_module, "run_subject", doomed)

    def test_serial_total_sleep_exact(self, config, monkeypatch):
        self._doom(monkeypatch)
        sleeps = self._record_sleeps(monkeypatch)
        runner = CohortRunner(
            config=config,
            jobs=1,
            with_device=False,
            max_retries=3,
            retry_backoff_s=0.5,
            retry_jitter=0.0,
        )
        outcomes = runner.run_version("reduced", subjects=[0])
        assert not outcomes[0].ok
        assert outcomes[0].fault.attempts == 4
        # 0.5, 1.0, 2.0 before retries 1..3; NO sleep after attempt 4.
        assert sleeps == [0.5, 1.0, 2.0]

    def test_jittered_sleeps_replay_the_seeded_schedule(
        self, config, monkeypatch
    ):
        """Default (jittered) backoff: each sleep is the seeded helper's
        draw -- inside ``[raw/2, raw]`` and bit-reproducible from the
        seed, so simultaneous failures with different seeds decorrelate
        while any single run stays replayable."""
        self._doom(monkeypatch)
        sleeps = self._record_sleeps(monkeypatch)
        runner = CohortRunner(
            config=config,
            jobs=1,
            with_device=False,
            max_retries=3,
            retry_backoff_s=0.5,
            backoff_seed=7,
        )
        outcomes = runner.run_version("reduced", subjects=[0])
        assert not outcomes[0].ok
        expected = JitteredBackoff(0.5, cap_s=30.0, jitter=0.5, seed=7)
        assert sleeps == [expected.delay(k) for k in (1, 2, 3)]
        for slept, raw in zip(sleeps, (0.5, 1.0, 2.0)):
            assert raw / 2 <= slept <= raw

    def test_serial_no_sleep_without_retries(self, config, monkeypatch):
        self._doom(monkeypatch)
        sleeps = self._record_sleeps(monkeypatch)
        runner = CohortRunner(
            config=config,
            jobs=1,
            with_device=False,
            max_retries=0,
            retry_backoff_s=0.5,
        )
        outcomes = runner.run_version("reduced", subjects=[0])
        assert not outcomes[0].ok
        assert sleeps == []

    def test_backoff_respects_cap(self, config, monkeypatch):
        self._doom(monkeypatch)
        sleeps = self._record_sleeps(monkeypatch)
        runner = CohortRunner(
            config=config,
            jobs=1,
            with_device=False,
            max_retries=4,
            retry_backoff_s=0.5,
            retry_jitter=0.0,
        )
        runner.max_backoff_s = 1.0
        outcomes = runner.run_version("reduced", subjects=[0])
        assert not outcomes[0].ok
        assert sleeps == [0.5, 1.0, 1.0, 1.0]

    def test_retry_gate_refuses_past_budget(self, config):
        runner = CohortRunner(
            config=config, with_device=False, max_retries=2, retry_backoff_s=0.0
        )
        assert runner._retry_after_failure(1)
        assert runner._retry_after_failure(2)
        assert not runner._retry_after_failure(3)


class TestWorkerCrash:
    def test_pool_rebuild_recovers_the_cohort(
        self, config, monkeypatch, tmp_path
    ):
        """A worker hard-crash (os._exit) breaks the pool once; the runner
        rebuilds it and every subject still completes, in cohort order."""
        sentinel = tmp_path / "crashed-once"
        real = runner_module.run_subject

        def crash_once(dataset, subject, version, cfg, with_device, chunk_size=None):
            if subject is dataset.subjects[1] and not sentinel.exists():
                sentinel.write_text("crashed")
                os._exit(17)
            return _passthrough(real)(
                dataset, subject, version, cfg, with_device, chunk_size
            )

        monkeypatch.setattr(runner_module, "run_subject", crash_once)
        with CohortRunner(
            config=config,
            jobs=2,
            with_device=False,
            max_retries=1,
            retry_backoff_s=0.0,
        ) as runner:
            outcomes = runner.run_version("reduced", subjects=[0, 1, 2])
        assert sentinel.exists()
        assert [o.ok for o in outcomes] == [True, True, True]
        assert runner.pool_rebuilds == 1
        expected = [runner.dataset.subjects[i].subject_id for i in (0, 1, 2)]
        assert [o.subject_id for o in outcomes] == expected

    def test_crash_without_retries_faults_as_broken_pool(
        self, config, monkeypatch, tmp_path
    ):
        """With retries disabled a broken pool costs its tasks their only
        attempt: the undone ones surface as structured broken-pool faults,
        and the parent survives."""
        sentinel = tmp_path / "crashed-once"
        real = runner_module.run_subject

        def crash_once(dataset, subject, version, cfg, with_device, chunk_size=None):
            if subject is dataset.subjects[0] and not sentinel.exists():
                sentinel.write_text("crashed")
                os._exit(17)
            return _passthrough(real)(
                dataset, subject, version, cfg, with_device, chunk_size
            )

        monkeypatch.setattr(runner_module, "run_subject", crash_once)
        with CohortRunner(
            config=config, jobs=2, with_device=False, max_retries=0
        ) as runner:
            outcomes = runner.run_version("reduced", subjects=[0, 1])
        faulted = [o for o in outcomes if not o.ok]
        assert faulted  # at least the crashed subject is reported
        for outcome in faulted:
            assert outcome.fault.kind == "broken-pool"
            assert outcome.error.startswith("BrokenProcessPool")
            assert outcome.result is None


class TestTaskHang:
    def test_hang_times_out_and_pool_mates_survive(self, config, monkeypatch):
        """A hung worker is terminated after task_timeout_s; the hung task
        gets a terminal timeout fault while its innocent pool-mates are
        requeued (attempt refunded) and complete on the rebuilt pool."""
        real = runner_module.run_subject

        def hang_first(dataset, subject, version, cfg, with_device, chunk_size=None):
            if subject is dataset.subjects[0]:
                time.sleep(600)
            return _passthrough(real)(
                dataset, subject, version, cfg, with_device, chunk_size
            )

        monkeypatch.setattr(runner_module, "run_subject", hang_first)
        with CohortRunner(
            config=config,
            jobs=2,
            with_device=False,
            task_timeout_s=15.0,
            max_retries=0,
            retry_backoff_s=0.0,
        ) as runner:
            started = time.monotonic()
            outcomes = runner.run_version("reduced", subjects=[0, 1, 2])
            elapsed = time.monotonic() - started
        assert elapsed < 120.0  # the hang was cut short, not waited out
        assert not outcomes[0].ok
        assert outcomes[0].fault.kind == "timeout"
        assert outcomes[0].error.startswith("TimeoutError")
        # Innocent pool-mates complete even with retries disabled.
        assert outcomes[1].ok
        assert outcomes[2].ok
        assert runner.pool_rebuilds >= 1
