"""Tests for the experiment harness (quick configurations)."""

import pytest

from repro.core.versions import DetectorVersion
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.pipeline import (
    ExperimentConfig,
    make_dataset,
    run_subject,
)
from repro.experiments.reporting import format_bar_chart, format_table
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


@pytest.fixture(scope="module")
def table2(config):
    return run_table2(config, versions=(DetectorVersion.SIMPLIFIED,))


@pytest.fixture(scope="module")
def table3(config):
    return run_table3(config)


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        config = ExperimentConfig()
        assert config.n_subjects == 12
        assert config.window_s == 3.0
        assert config.grid_n == 50
        assert config.train_duration_s == 20 * 60.0
        assert config.test_duration_s == 2 * 60.0
        assert config.altered_fraction == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_subjects=1)
        with pytest.raises(ValueError):
            ExperimentConfig(n_subjects=3, n_train_donors=2, n_test_donors=2)
        with pytest.raises(ValueError):
            ExperimentConfig(peak_source="psychic")

    def test_quick_overrides(self):
        config = ExperimentConfig.quick(window_s=6.0)
        assert config.window_s == 6.0
        assert config.n_subjects == 4


class TestRunSubject:
    def test_reference_only(self, config):
        dataset = make_dataset(config)
        result = run_subject(
            dataset, dataset.subjects[0], "reduced", config, with_device=False
        )
        assert result.device_report is None
        assert result.n_test_windows == 20
        assert 0.0 <= result.reference_report.accuracy <= 1.0

    def test_with_device(self, config):
        dataset = make_dataset(config)
        result = run_subject(
            dataset, dataset.subjects[1], "simplified", config, with_device=True
        )
        assert result.device_report is not None
        # Device and reference should be close.
        assert abs(
            result.device_report.accuracy - result.reference_report.accuracy
        ) <= 0.2


class TestTable2:
    def test_rows_and_platforms(self, table2):
        platforms = {(r.version, r.platform) for r in table2.rows}
        assert platforms == {
            (DetectorVersion.SIMPLIFIED, "amulet"),
            (DetectorVersion.SIMPLIFIED, "reference"),
        }
        assert len(table2.per_subject) == 4

    def test_detection_beats_chance(self, table2):
        for row in table2.rows:
            assert row.report.accuracy > 0.6

    def test_row_lookup(self, table2):
        row = table2.row(DetectorVersion.SIMPLIFIED, "amulet")
        assert row.platform == "amulet"
        with pytest.raises(KeyError):
            table2.row(DetectorVersion.ORIGINAL, "amulet")

    def test_formatting(self, table2):
        text = format_table2(table2)
        assert "TABLE II" in text
        assert "Simplified" in text
        assert "%" in text

    def test_paper_values_attached(self, table2):
        row = table2.row(DetectorVersion.SIMPLIFIED, "amulet")
        assert row.paper_values == (6.67, 7.58, 92.86, 93.43)


class TestTable3:
    def test_profiles_all_versions(self, table3):
        assert set(table3.profiles) == set(DetectorVersion)

    def test_lifetime_shape(self, table3):
        """The paper's headline: Reduced lives about twice as long."""
        ratio = table3.lifetime_ratio(
            DetectorVersion.ORIGINAL, DetectorVersion.REDUCED
        )
        assert ratio > 1.8

    def test_memory_shape(self, table3):
        original = table3.profile(DetectorVersion.ORIGINAL)
        reduced = table3.profile(DetectorVersion.REDUCED)
        assert original.system_fram_bytes > reduced.system_fram_bytes
        assert original.app_fram_bytes > 1.6 * reduced.app_fram_bytes
        assert original.app_sram_bytes == 259
        assert reduced.app_sram_bytes == 69

    def test_formatting(self, table3):
        text = format_table3(table3)
        assert "TABLE III" in text
        assert "Expected Lifetime" in text


class TestFig3:
    def test_breakdown_and_sweep(self, config):
        result = run_fig3(config, version=DetectorVersion.SIMPLIFIED,
                          periods=(1.5, 3.0, 6.0))
        assert set(result.period_sweep) == {1.5, 3.0, 6.0}
        # Longer period -> longer lifetime, monotonically.
        lifetimes = [result.period_sweep[p] for p in (1.5, 3.0, 6.0)]
        assert lifetimes == sorted(lifetimes)
        assert result.top_consumers(3)[0][1] >= result.top_consumers(3)[-1][1]
        text = format_fig3(result)
        assert "Fig. 3" in text
        assert "slider" in text


class TestGridResourceSweep:
    def test_sweep_shape(self, config):
        from repro.experiments.fig3 import run_grid_resource_sweep

        rows = run_grid_resource_sweep(config, grids=(10, 50, 100))
        by_grid = {row["grid_n"]: row for row in rows}
        assert by_grid[10.0]["deployable"] == 1.0
        assert by_grid[50.0]["deployable"] == 1.0
        # n = 100 exceeds the Insight #1 array limit (10000 B matrix).
        assert by_grid[100.0]["deployable"] == 0.0
        assert (
            by_grid[50.0]["detector_fram_kb"]
            > by_grid[10.0]["detector_fram_kb"]
        )
        assert (
            by_grid[50.0]["detector_sram_bytes"]
            > by_grid[10.0]["detector_sram_bytes"]
        )


class TestRobustnessStudies:
    def test_debounce_rows(self, config):
        from repro.experiments.robustness import debounce_study

        rows = debounce_study(config, settings=((1, 1), (2, 3)))
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["window_accuracy"] <= 1.0
            assert row["false_episodes_per_run"] >= 0.0
            assert 0.0 <= row["attack_catch_rate"] <= 1.0

    def test_artifact_rows(self, config):
        from repro.experiments.robustness import artifact_load_study

        rows = artifact_load_study(config, artifact_rates=(0.0, 8.0))
        assert [row["artifact_rate_per_min"] for row in rows] == [0.0, 8.0]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_validates(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_format_bar_chart(self):
        text = format_bar_chart([("x", 2.0), ("yy", 1.0)], unit="mA")
        assert "##" in text
        assert "yy" in text

    def test_format_bar_chart_empty(self):
        assert "(empty)" in format_bar_chart([])
