"""Tests for the universal-model study."""

import pytest

from repro.experiments.pipeline import ExperimentConfig
from repro.experiments.universal import run_universal_study


@pytest.fixture(scope="module")
def study():
    config = ExperimentConfig(
        n_subjects=5,
        train_duration_s=180.0,
        test_duration_s=60.0,
        n_train_donors=2,
        n_test_donors=2,
    )
    return run_universal_study(config)


class TestUniversalStudy:
    def test_universal_model_beats_chance(self, study):
        """Consistency checking transfers across wearers."""
        assert study.universal.accuracy > 0.7

    def test_per_user_enrollment_pays(self, study):
        """...but the paper's per-user models are at least as good: the
        enrollment step buys accuracy, it doesn't just add friction."""
        assert study.per_user.accuracy >= study.universal.accuracy - 0.02
        assert -0.05 <= study.accuracy_gap <= 0.3

    def test_per_subject_reports_complete(self, study):
        assert len(study.per_subject_universal) == 5
        for report in study.per_subject_universal.values():
            assert 0.0 <= report.accuracy <= 1.0
