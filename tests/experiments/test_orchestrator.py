"""Checkpoint semantics of the experiment orchestrator.

The contract under test: every completed (study, config) unit survives a
kill; a re-run recomputes only units without a valid checkpoint; a
resumed run's reports are bit-identical to an uninterrupted run's; and
``reeval`` renders every report with zero recomputation.  Most tests
drive a synthetic registry (instant units, observable side effects); the
kill/resume test interrupts a real subprocess with SIGINT mid-matrix.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.orchestrator import (
    CheckpointError,
    CheckpointStore,
    MissingCheckpointError,
    Orchestrator,
    StudyDefinition,
    UnitSpec,
    compare_trajectories,
    config_hash,
    drain_perf_samples,
    record_perf_sample,
    trajectory_from_samples,
    write_trajectory,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _counting_registry(calls: list[str], payload_of=None):
    """One synthetic study, three units, each run appended to ``calls``."""
    payload_of = payload_of or (lambda name: {"value": name.upper(), "n_windows": 10})

    def build_units(ctx):
        def make(name):
            def run(ctx):
                calls.append(name)
                return payload_of(name)

            return UnitSpec(
                name=name,
                params={"study": "synthetic", "unit": name, "quick": ctx.quick},
                run=run,
            )

        return [make("alpha"), make("beta"), make("gamma")]

    def render(ctx, payloads):
        lines = [f"{name}: {p['value']}" for name, p in payloads.items()]
        return {"synthetic": "\n".join(lines)}

    return {"synthetic": StudyDefinition("synthetic", build_units, render)}


def _orchestrator(tmp_path, registry, **kwargs):
    return Orchestrator(
        quick=True,
        checkpoint_dir=tmp_path / "checkpoints",
        results_dir=tmp_path / "results",
        registry=registry,
        **kwargs,
    )


class TestConfigHash:
    def test_stable_across_orderings(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_any_knob_change_invalidates(self):
        base = {"seed": 2017, "window_s": 3.0}
        assert config_hash(base) != config_hash({**base, "seed": 2018})
        assert config_hash(base) != config_hash({**base, "window_s": 1.5})

    def test_tuples_and_lists_hash_identically(self):
        # JSON round-trips turn tuples into lists; hashing must agree.
        assert config_hash({"sweep": (1, 2)}) == config_hash({"sweep": [1, 2]})

    def test_rejects_unserializable_params(self):
        with pytest.raises(TypeError, match="unhashable unit parameter"):
            config_hash({"fn": lambda: None})


class TestCheckpointStore:
    def test_roundtrip_latest_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append("s", {"unit": "u", "config_hash": "old", "payload": 1})
        store.append("s", {"unit": "u", "config_hash": "new", "payload": 2})
        records = store.load("s")
        assert records["u"]["config_hash"] == "new"
        assert records["u"]["payload"] == 2

    def test_truncated_tail_line_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append("s", {"unit": "done", "config_hash": "h", "payload": 1})
        # Simulate a kill mid-append: a half-written final line.
        with store.path("s").open("a") as handle:
            handle.write('{"unit": "torn", "config_hash": "h", "pay')
        records = store.load("s")
        assert set(records) == {"done"}

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointStore(tmp_path).load("never-ran") == {}

    def test_remove_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.append("s", {"unit": "u", "config_hash": "h", "payload": 1})
        store.remove("s")
        store.remove("s")
        assert store.load("s") == {}


class TestResume:
    def test_second_run_recomputes_nothing(self, tmp_path):
        calls: list[str] = []
        registry = _counting_registry(calls)
        orch = _orchestrator(tmp_path, registry)
        orch.run(trajectory=False)
        assert calls == ["alpha", "beta", "gamma"]
        run2 = orch.run(trajectory=False)
        assert calls == ["alpha", "beta", "gamma"]  # nothing recomputed
        assert all(u.cached for s in run2.studies for u in s.units)

    def test_partial_checkpoints_resume_mid_matrix(self, tmp_path):
        calls: list[str] = []
        registry = _counting_registry(calls)
        orch = _orchestrator(tmp_path, registry)
        run1 = orch.run(trajectory=False)
        report1 = run1.studies[0].reports["synthetic"].read_text()
        # Drop beta's checkpoint: simulate dying before it was written.
        store = orch.store
        records = [
            r for r in store.load("synthetic").values() if r["unit"] != "beta"
        ]
        store.path("synthetic").write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        calls.clear()
        run2 = orch.run(trajectory=False)
        assert calls == ["beta"]  # only the missing unit recomputed
        cached = {u.name: u.cached for u in run2.studies[0].units}
        assert cached == {"alpha": True, "beta": False, "gamma": True}
        report2 = run2.studies[0].reports["synthetic"].read_text()
        assert report2 == report1  # resumed report is bit-identical

    def test_config_change_invalidates_units(self, tmp_path):
        calls: list[str] = []
        registry = _counting_registry(calls)
        _orchestrator(tmp_path, registry).run(trajectory=False)
        calls.clear()
        # quick=False changes every unit's params, hence every hash.
        other = Orchestrator(
            quick=False,
            checkpoint_dir=tmp_path / "checkpoints",
            results_dir=tmp_path / "results",
            registry=_counting_registry(calls),
        )
        other.run(trajectory=False)
        assert calls == ["alpha", "beta", "gamma"]

    def test_fresh_drops_checkpoints(self, tmp_path):
        calls: list[str] = []
        registry = _counting_registry(calls)
        orch = _orchestrator(tmp_path, registry)
        orch.run(trajectory=False)
        calls.clear()
        orch.run(fresh=True, trajectory=False)
        assert calls == ["alpha", "beta", "gamma"]

    def test_payloads_render_from_json_on_first_run(self, tmp_path):
        """First-run reports must come from JSON-round-tripped payloads
        (tuples already lists), or resumed reports could differ."""
        seen: list = []

        def build_units(ctx):
            return [
                UnitSpec(
                    name="u",
                    params={"study": "tuples"},
                    run=lambda ctx: {"pair": (1, 2)},
                )
            ]

        def render(ctx, payloads):
            seen.append(payloads["u"]["pair"])
            return {}

        registry = {"tuples": StudyDefinition("tuples", build_units, render)}
        orch = _orchestrator(tmp_path, registry)
        orch.run(trajectory=False)
        orch.run(trajectory=False)
        assert seen[0] == seen[1] == [1, 2]

    def test_unknown_study_rejected(self, tmp_path):
        orch = _orchestrator(tmp_path, _counting_registry([]))
        with pytest.raises(CheckpointError, match="unknown study"):
            orch.run(studies=["nonesuch"], trajectory=False)


class TestReeval:
    def test_reeval_recomputes_nothing(self, tmp_path):
        calls: list[str] = []
        registry = _counting_registry(calls)
        orch = _orchestrator(tmp_path, registry)
        run1 = orch.run(trajectory=False)
        report1 = run1.studies[0].reports["synthetic"].read_text()
        calls.clear()
        run2 = orch.run(reeval=True)
        assert calls == []  # zero recomputation
        assert run2.trajectory is None  # no perf record for cached runs
        report2 = run2.studies[0].reports["synthetic"].read_text()
        assert report2 == report1

    def test_reeval_without_checkpoints_fails(self, tmp_path):
        orch = _orchestrator(tmp_path, _counting_registry([]))
        with pytest.raises(MissingCheckpointError, match="no checkpoint"):
            orch.run(reeval=True)

    def test_reeval_and_fresh_contradict(self, tmp_path):
        orch = _orchestrator(tmp_path, _counting_registry([]))
        with pytest.raises(CheckpointError, match="contradictory"):
            orch.run(reeval=True, fresh=True)


_KILLABLE_SCRIPT = """
import sys, time
from pathlib import Path

from repro.experiments.orchestrator import Orchestrator, StudyDefinition, UnitSpec

base = Path(sys.argv[1])
slow_unit = sys.argv[2] if len(sys.argv) > 2 else None

def build_units(ctx):
    def make(name):
        def run(ctx):
            if name == slow_unit:
                print(f"UNIT-STARTED {name}", flush=True)
                time.sleep(60.0)
            return {"value": name.upper(), "n_windows": 5}
        return UnitSpec(name=name, params={"study": "killable", "unit": name}, run=run)
    return [make(n) for n in ("alpha", "beta", "gamma")]

def render(ctx, payloads):
    lines = [f"{name}: {p['value']}" for name, p in payloads.items()]
    return {"killable": chr(10).join(lines)}

registry = {"killable": StudyDefinition("killable", build_units, render)}
orch = Orchestrator(
    quick=True,
    checkpoint_dir=base / "checkpoints",
    results_dir=base / "results",
    registry=registry,
)
orch.run(trajectory=False)
print("RUN-COMPLETE", flush=True)
"""


class TestKillAndResume:
    def test_sigint_mid_matrix_then_resume_bit_identical(self, tmp_path):
        """The acceptance scenario: kill the driver inside unit two, re-run,
        and require (a) unit one is never recomputed, (b) the resumed
        reports match an uninterrupted run's byte for byte."""
        script = tmp_path / "driver.py"
        script.write_text(_KILLABLE_SCRIPT)
        interrupted = tmp_path / "interrupted"
        env_dir = str(REPO_ROOT / "src")

        proc = subprocess.Popen(
            [sys.executable, str(script), str(interrupted), "beta"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            cwd=str(tmp_path),
            env={"PYTHONPATH": env_dir, "PATH": "/usr/bin:/bin"},
        )
        try:
            # Wait for the slow unit to start, then interrupt it.
            deadline = time.monotonic() + 60.0
            for line in proc.stdout:
                if "UNIT-STARTED beta" in line:
                    break
                assert time.monotonic() < deadline, "driver never reached beta"
            proc.send_signal(signal.SIGINT)
            output = proc.communicate(timeout=30.0)[0]
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode != 0
        assert "RUN-COMPLETE" not in output

        # Alpha completed before the kill and must have a durable checkpoint.
        store = CheckpointStore(interrupted / "checkpoints")
        survived = store.load("killable")
        assert "alpha" in survived
        assert "beta" not in survived

        # Resume: no slow unit this time; must reuse alpha's checkpoint.
        resumed = subprocess.run(
            [sys.executable, str(script), str(interrupted)],
            capture_output=True,
            text=True,
            timeout=120.0,
            cwd=str(tmp_path),
            env={"PYTHONPATH": env_dir, "PATH": "/usr/bin:/bin"},
        )
        assert resumed.returncode == 0, resumed.stdout + resumed.stderr
        assert "RUN-COMPLETE" in resumed.stdout

        records = store.load("killable")
        assert set(records) == {"alpha", "beta", "gamma"}
        # Alpha's checkpoint is the original, not a recompute: its file
        # line order proves it (alpha precedes the kill, beta/gamma follow).
        order = [
            json.loads(line)["unit"]
            for line in store.path("killable").read_text().splitlines()
            if line.strip()
        ]
        assert order[0] == "alpha" and order.count("alpha") == 1

        # Bit-identical against a never-interrupted control run.
        control = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "control")],
            capture_output=True,
            text=True,
            timeout=120.0,
            cwd=str(tmp_path),
            env={"PYTHONPATH": env_dir, "PATH": "/usr/bin:/bin"},
        )
        assert control.returncode == 0, control.stdout + control.stderr
        resumed_report = (interrupted / "results" / "killable.txt").read_bytes()
        control_report = (
            tmp_path / "control" / "results" / "killable.txt"
        ).read_bytes()
        assert resumed_report == control_report


class TestTrajectory:
    def test_run_emits_trajectory(self, tmp_path):
        registry = _counting_registry([])
        orch = _orchestrator(tmp_path, registry)
        run = orch.run()
        assert run.trajectory_path is not None and run.trajectory_path.exists()
        latest = tmp_path / "results" / "BENCH_latest.json"
        assert latest.exists()
        record = json.loads(latest.read_text())
        study = record["studies"]["synthetic"]
        assert study["recomputed_units"] == 3
        assert study["n_windows"] == 30
        assert record["calibration_s"] > 0
        assert {"hits", "misses", "evictions"} <= set(study["cache"])
        assert {"publishes", "attaches"} <= set(study["dataplane"])

    def test_fully_cached_run_writes_no_trajectory(self, tmp_path):
        """A resume that recomputed nothing measured nothing: it must not
        clobber BENCH_latest.json (the gate's input) with a ~0s record."""
        registry = _counting_registry([])
        orch = _orchestrator(tmp_path, registry)
        first = orch.run()
        stamp = first.trajectory_path.read_bytes()
        second = orch.run()
        assert second.trajectory is None
        latest = tmp_path / "results" / "BENCH_latest.json"
        assert latest.read_bytes() == stamp

    def test_perf_samples_aggregate(self):
        drain_perf_samples()
        record_perf_sample("table2", "original", 2.0, n_windows=100)
        record_perf_sample("table2", "simplified", 2.0, n_windows=100)
        record_perf_sample("fig3", "profile", 0.5)
        record = trajectory_from_samples(drain_perf_samples(), label="bench")
        assert drain_perf_samples() == []  # buffer drained
        table2 = record["studies"]["table2"]
        assert table2["wall_s"] == pytest.approx(4.0)
        assert table2["units"] == 2
        assert table2["n_windows"] == 200
        assert table2["windows_per_s"] == pytest.approx(50.0)
        assert record["studies"]["fig3"]["windows_per_s"] == 0.0

    def test_write_trajectory_files(self, tmp_path):
        record = trajectory_from_samples(
            [{"study": "s", "unit": "u", "wall_s": 1.0, "n_windows": 0}]
        )
        path = write_trajectory(record, tmp_path, stamp="test")
        assert path == tmp_path / "BENCH_test.json"
        assert json.loads(path.read_text()) == json.loads(
            (tmp_path / "BENCH_latest.json").read_text()
        )


def _study(wall_s, wps=0.0, recomputed=1):
    return {
        "wall_s": wall_s,
        "recomputed_units": recomputed,
        "windows_per_s": wps,
    }


def _trajectory(calibration_s=1.0, **studies):
    return {"schema": 1, "calibration_s": calibration_s, "studies": studies}


class TestRegressionGate:
    def test_within_threshold_passes(self):
        regressions, lines = compare_trajectories(
            _trajectory(s=_study(10.0)), _trajectory(s=_study(11.0))
        )
        assert regressions == []
        assert any("s:" in line for line in lines)

    def test_slowdown_past_threshold_fails(self):
        regressions, _ = compare_trajectories(
            _trajectory(s=_study(10.0)), _trajectory(s=_study(13.0))
        )
        assert len(regressions) == 1
        assert "wall-clock regressed" in regressions[0]

    def test_calibration_normalizes_machine_speed(self):
        # Twice the wall-clock on a machine measured twice as slow: even.
        regressions, _ = compare_trajectories(
            _trajectory(calibration_s=1.0, s=_study(10.0)),
            _trajectory(calibration_s=2.0, s=_study(20.0)),
        )
        assert regressions == []

    def test_noisy_calibration_alone_cannot_fail_the_gate(self):
        # Same machine, same wall-clock, but the calibration constant
        # came out 40% low on the second run: raw ratio ~1 must win.
        regressions, _ = compare_trajectories(
            _trajectory(calibration_s=1.0, s=_study(10.0)),
            _trajectory(calibration_s=0.6, s=_study(10.2)),
        )
        assert regressions == []

    def test_genuine_slowdown_inflates_both_ratios(self):
        regressions, _ = compare_trajectories(
            _trajectory(calibration_s=1.0, s=_study(10.0)),
            _trajectory(calibration_s=1.0, s=_study(15.0)),
        )
        assert len(regressions) == 1
        assert "raw x1.50" in regressions[0]
        assert "calibrated x1.50" in regressions[0]

    def test_throughput_drop_fails(self):
        regressions, _ = compare_trajectories(
            _trajectory(s=_study(10.0, wps=100.0)),
            _trajectory(s=_study(10.0, wps=50.0)),
        )
        assert len(regressions) == 1
        assert "throughput regressed" in regressions[0]

    def test_noise_floor_skips_fast_studies(self):
        regressions, lines = compare_trajectories(
            _trajectory(s=_study(0.1)), _trajectory(s=_study(0.9))
        )
        assert regressions == []
        assert any("noise floor" in line for line in lines)

    def test_cached_runs_never_gate(self):
        regressions, lines = compare_trajectories(
            _trajectory(s=_study(10.0)),
            _trajectory(s=_study(90.0, recomputed=0)),
        )
        assert regressions == []
        assert any("checkpoint-cached" in line for line in lines)

    def test_missing_study_reported_not_gated(self):
        regressions, lines = compare_trajectories(
            _trajectory(s=_study(10.0)), _trajectory()
        )
        assert regressions == []
        assert any("only in baseline" in line for line in lines)

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_trajectories(_trajectory(), _trajectory(), threshold=0.0)
