"""Tests for the parallel cohort runner and the experiment cache."""

import numpy as np
import pytest

from repro.core.versions import DetectorVersion
from repro.experiments.cache import EXPERIMENT_CACHE, ExperimentCache, cache_disabled
from repro.experiments.pipeline import (
    ExperimentConfig,
    make_dataset,
    run_subject,
)
from repro.experiments.runner import (
    CohortOutcome,
    CohortRunner,
    effective_workers,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


def _reports(outcomes):
    return [o.result.reference_report for o in outcomes]


class TestCohortRunnerSerial:
    def test_matches_direct_run_subject(self, config):
        """jobs=1 is the plain run_subject loop, result for result."""
        runner = CohortRunner(config=config, jobs=1, with_device=False)
        outcomes = runner.run_version("reduced")
        dataset = make_dataset(config)
        assert len(outcomes) == config.n_subjects
        for outcome, subject in zip(outcomes, dataset.subjects):
            assert outcome.ok
            assert outcome.subject_id == subject.subject_id
            direct = run_subject(
                dataset, subject, "reduced", config, with_device=False
            )
            assert outcome.result.reference_report == direct.reference_report
            assert outcome.result.n_test_windows == direct.n_test_windows

    def test_serial_keeps_runner_handle(self, config):
        runner = CohortRunner(config=config, jobs=1, with_device=True)
        outcomes = runner.run_version("reduced", subjects=[0])
        assert outcomes[0].ok
        assert outcomes[0].result.runner is not None
        assert outcomes[0].result.device_report is not None

    def test_subject_subset(self, config):
        runner = CohortRunner(config=config, jobs=1, with_device=False)
        outcomes = runner.run_version("reduced", subjects=[2, 0])
        dataset = make_dataset(config)
        assert [o.subject_id for o in outcomes] == [
            dataset.subjects[2].subject_id,
            dataset.subjects[0].subject_id,
        ]

    def test_run_multiple_versions_version_major(self, config):
        runner = CohortRunner(config=config, jobs=1, with_device=False)
        outcomes = runner.run(
            versions=("reduced", "simplified"), subjects=[0, 1]
        )
        assert [o.version for o in outcomes] == [
            DetectorVersion.REDUCED,
            DetectorVersion.REDUCED,
            DetectorVersion.SIMPLIFIED,
            DetectorVersion.SIMPLIFIED,
        ]

    def test_error_capture(self, config, monkeypatch):
        """One failing subject surfaces as an outcome, not an exception."""
        import repro.experiments.runner as runner_module

        real = runner_module.run_subject

        def failing(dataset, subject, version, cfg, with_device):
            if subject is dataset.subjects[1]:
                raise RuntimeError("synthetic failure")
            return real(dataset, subject, version, cfg, with_device=with_device)

        monkeypatch.setattr(runner_module, "run_subject", failing)
        runner = CohortRunner(config=config, jobs=1, with_device=False)
        outcomes = runner.run_version("reduced", subjects=[0, 1, 2])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error == "RuntimeError: synthetic failure"
        assert outcomes[1].result is None

    def test_jobs_validation(self, config):
        with pytest.raises(ValueError):
            CohortRunner(config=config, jobs=0)


class TestCohortRunnerParallel:
    def test_parallel_matches_serial(self, config):
        """jobs=2 must reproduce the serial reports exactly."""
        serial = CohortRunner(config=config, jobs=1, with_device=False)
        serial_outcomes = serial.run_version("reduced", subjects=[0, 1, 2])
        with CohortRunner(config=config, jobs=2, with_device=False) as parallel:
            parallel_outcomes = parallel.run_version(
                "reduced", subjects=[0, 1, 2]
            )
        assert [o.subject_id for o in parallel_outcomes] == [
            o.subject_id for o in serial_outcomes
        ]
        assert _reports(parallel_outcomes) == _reports(serial_outcomes)
        # The live Amulet harness never crosses the process boundary.
        for outcome in parallel_outcomes:
            assert outcome.result.runner is None


class TestExperimentCache:
    def test_get_or_create_hits(self):
        cache = ExperimentCache()
        calls = []

        def factory():
            calls.append(1)
            return "value"

        assert cache.get_or_create("k", factory) == "value"
        assert cache.get_or_create("k", factory) == "value"
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_disabled_bypasses(self):
        cache = ExperimentCache(enabled=False)
        calls = []
        cache.get_or_create("k", lambda: calls.append(1))
        cache.get_or_create("k", lambda: calls.append(1))
        assert len(calls) == 2
        assert cache.stats()["size"] == 0

    def test_clear(self):
        cache = ExperimentCache()
        cache.get_or_create("k", lambda: 1)
        cache.clear()
        assert cache.stats()["size"] == 0

    def test_cache_disabled_context(self):
        was_enabled = EXPERIMENT_CACHE.enabled
        with cache_disabled():
            assert not EXPERIMENT_CACHE.enabled
        assert EXPERIMENT_CACHE.enabled == was_enabled

    def test_cached_run_matches_uncached(self, config):
        """Caching is invisible: identical reports with and without it."""
        dataset = make_dataset(config)
        subject = dataset.subjects[0]
        cached = run_subject(dataset, subject, "reduced", config, with_device=False)
        with cache_disabled():
            uncached = run_subject(
                dataset, subject, "reduced", config, with_device=False
            )
        assert cached.reference_report == uncached.reference_report

    def test_detector_reused_across_calls(self, config):
        """Identical (config, subject, version) keys train once."""
        from repro.experiments.pipeline import train_detector

        dataset = make_dataset(config)
        subject = dataset.subjects[0]
        first = train_detector(dataset, subject, "reduced", config)
        second = train_detector(dataset, subject, "reduced", config)
        assert first is second
        with cache_disabled():
            fresh = train_detector(dataset, subject, "reduced", config)
        assert fresh is not first
        assert np.array_equal(fresh.svc.coef_, first.svc.coef_)
        assert fresh.svc.intercept_ == first.svc.intercept_


class TestTable2Jobs:
    def test_quick_table2_parallel_matches_serial(self, config):
        from repro.experiments.table2 import run_table2

        versions = (DetectorVersion.REDUCED,)
        serial = run_table2(config, versions=versions, jobs=1)
        parallel = run_table2(config, versions=versions, jobs=2)
        assert serial.failures == ()
        assert parallel.failures == ()
        for s_row, p_row in zip(serial.rows, parallel.rows):
            assert s_row.report == p_row.report


def test_effective_workers_clamps_to_cpus():
    import os

    available = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    assert effective_workers(1) == 1
    assert effective_workers(10_000) == available
    assert 1 <= effective_workers(2) <= 2


def test_cohort_outcome_ok():
    outcome = CohortOutcome(
        subject_id="s", version=DetectorVersion.REDUCED, result=None, error="E: x"
    )
    assert not outcome.ok
