"""Tests for the parallel cohort runner and the experiment cache."""

import numpy as np
import pytest

from repro.core.versions import DetectorVersion
from repro.experiments.cache import (
    EXPERIMENT_CACHE,
    ExperimentCache,
    cache_disabled,
    entry_cost,
    set_cache_budget,
)
from repro.experiments.pipeline import (
    ExperimentConfig,
    make_dataset,
    run_subject,
)
from repro.experiments.runner import (
    CohortOutcome,
    CohortRunner,
    effective_workers,
)


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig.quick()


def _reports(outcomes):
    return [o.result.reference_report for o in outcomes]


class TestCohortRunnerSerial:
    def test_matches_direct_run_subject(self, config):
        """jobs=1 is the plain run_subject loop, result for result."""
        runner = CohortRunner(config=config, jobs=1, with_device=False)
        outcomes = runner.run_version("reduced")
        dataset = make_dataset(config)
        assert len(outcomes) == config.n_subjects
        for outcome, subject in zip(outcomes, dataset.subjects):
            assert outcome.ok
            assert outcome.subject_id == subject.subject_id
            direct = run_subject(
                dataset, subject, "reduced", config, with_device=False
            )
            assert outcome.result.reference_report == direct.reference_report
            assert outcome.result.n_test_windows == direct.n_test_windows

    def test_serial_keeps_runner_handle(self, config):
        runner = CohortRunner(config=config, jobs=1, with_device=True)
        outcomes = runner.run_version("reduced", subjects=[0])
        assert outcomes[0].ok
        assert outcomes[0].result.runner is not None
        assert outcomes[0].result.device_report is not None

    def test_subject_subset(self, config):
        runner = CohortRunner(config=config, jobs=1, with_device=False)
        outcomes = runner.run_version("reduced", subjects=[2, 0])
        dataset = make_dataset(config)
        assert [o.subject_id for o in outcomes] == [
            dataset.subjects[2].subject_id,
            dataset.subjects[0].subject_id,
        ]

    def test_run_multiple_versions_version_major(self, config):
        runner = CohortRunner(config=config, jobs=1, with_device=False)
        outcomes = runner.run(
            versions=("reduced", "simplified"), subjects=[0, 1]
        )
        assert [o.version for o in outcomes] == [
            DetectorVersion.REDUCED,
            DetectorVersion.REDUCED,
            DetectorVersion.SIMPLIFIED,
            DetectorVersion.SIMPLIFIED,
        ]

    def test_error_capture(self, config, monkeypatch):
        """One failing subject surfaces as an outcome, not an exception."""
        import repro.experiments.runner as runner_module

        real = runner_module.run_subject

        def failing(dataset, subject, version, cfg, with_device, chunk_size=None):
            if subject is dataset.subjects[1]:
                raise RuntimeError("synthetic failure")
            return real(
                dataset,
                subject,
                version,
                cfg,
                with_device=with_device,
                chunk_size=chunk_size,
            )

        monkeypatch.setattr(runner_module, "run_subject", failing)
        runner = CohortRunner(config=config, jobs=1, with_device=False)
        outcomes = runner.run_version("reduced", subjects=[0, 1, 2])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error == "RuntimeError: synthetic failure"
        assert outcomes[1].result is None

    def test_jobs_validation(self, config):
        with pytest.raises(ValueError):
            CohortRunner(config=config, jobs=0)

    def test_chunk_size_and_budget_validation(self, config):
        with pytest.raises(ValueError, match="chunk_size"):
            CohortRunner(config=config, chunk_size=0)
        with pytest.raises(ValueError, match="cache_bytes"):
            CohortRunner(config=config, cache_bytes=-1)

    def test_chunk_size_does_not_change_results(self, config):
        """Chunked evaluation is bit-identical at any chunk size."""
        default = CohortRunner(config=config, jobs=1, with_device=False)
        tiny_chunks = CohortRunner(
            config=config, jobs=1, with_device=False, chunk_size=3
        )
        assert _reports(
            tiny_chunks.run_version("reduced", subjects=[0, 1])
        ) == _reports(default.run_version("reduced", subjects=[0, 1]))


class TestCohortRunnerParallel:
    def test_parallel_matches_serial(self, config):
        """jobs=2 must reproduce the serial reports exactly."""
        serial = CohortRunner(config=config, jobs=1, with_device=False)
        serial_outcomes = serial.run_version("reduced", subjects=[0, 1, 2])
        with CohortRunner(config=config, jobs=2, with_device=False) as parallel:
            parallel_outcomes = parallel.run_version(
                "reduced", subjects=[0, 1, 2]
            )
        assert [o.subject_id for o in parallel_outcomes] == [
            o.subject_id for o in serial_outcomes
        ]
        assert _reports(parallel_outcomes) == _reports(serial_outcomes)
        # The live Amulet harness never crosses the process boundary.
        for outcome in parallel_outcomes:
            assert outcome.result.runner is None


class TestExperimentCache:
    def test_get_or_create_hits(self):
        cache = ExperimentCache()
        calls = []

        def factory():
            calls.append(1)
            return "value"

        assert cache.get_or_create("k", factory) == "value"
        assert cache.get_or_create("k", factory) == "value"
        assert len(calls) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_disabled_bypasses(self):
        cache = ExperimentCache(enabled=False)
        calls = []
        cache.get_or_create("k", lambda: calls.append(1))
        cache.get_or_create("k", lambda: calls.append(1))
        assert len(calls) == 2
        assert cache.stats()["size"] == 0

    def test_clear(self):
        cache = ExperimentCache()
        cache.get_or_create("k", lambda: 1)
        cache.clear()
        assert cache.stats()["size"] == 0

    def test_clear_resets_counters(self):
        """Regression: hit/miss counters used to survive clear()."""
        cache = ExperimentCache()
        cache.get_or_create("k", lambda: 1)
        cache.get_or_create("k", lambda: 1)
        assert cache.stats()["hits"] == 1
        cache.clear()
        stats = cache.stats()
        assert stats["hits"] == 0
        assert stats["misses"] == 0
        assert stats["evictions"] == 0
        assert stats["resident_bytes"] == 0

    def test_reset_stats_keeps_entries(self):
        cache = ExperimentCache()
        cache.get_or_create("k", lambda: 1)
        cache.reset_stats()
        assert cache.stats()["misses"] == 0
        assert cache.stats()["size"] == 1
        cache.get_or_create("k", lambda: 2)  # still a hit: value survived
        assert cache.stats()["hits"] == 1

    def test_cache_disabled_context(self):
        was_enabled = EXPERIMENT_CACHE.enabled
        with cache_disabled():
            assert not EXPERIMENT_CACHE.enabled
        assert EXPERIMENT_CACHE.enabled == was_enabled

    def test_cached_run_matches_uncached(self, config):
        """Caching is invisible: identical reports with and without it."""
        dataset = make_dataset(config)
        subject = dataset.subjects[0]
        cached = run_subject(dataset, subject, "reduced", config, with_device=False)
        with cache_disabled():
            uncached = run_subject(
                dataset, subject, "reduced", config, with_device=False
            )
        assert cached.reference_report == uncached.reference_report

    def test_detector_reused_across_calls(self, config):
        """Identical (config, subject, version) keys train once."""
        from repro.experiments.pipeline import train_detector

        dataset = make_dataset(config)
        subject = dataset.subjects[0]
        first = train_detector(dataset, subject, "reduced", config)
        second = train_detector(dataset, subject, "reduced", config)
        assert first is second
        with cache_disabled():
            fresh = train_detector(dataset, subject, "reduced", config)
        assert fresh is not first
        assert np.array_equal(fresh.svc.coef_, first.svc.coef_)
        assert fresh.svc.intercept_ == first.svc.intercept_


def _array_kb(fill: float) -> np.ndarray:
    """A float64 array costing exactly 1024 bytes."""
    return np.full(128, fill)


class TestCacheEviction:
    def test_lru_eviction_order(self):
        cache = ExperimentCache(max_bytes=2048)
        cache.get_or_create("a", lambda: _array_kb(1.0))
        cache.get_or_create("b", lambda: _array_kb(2.0))
        cache.get_or_create("c", lambda: _array_kb(3.0))  # evicts "a"
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 1
        assert stats["resident_bytes"] == 2048
        rebuilt = []
        cache.get_or_create("a", lambda: rebuilt.append(1) or _array_kb(1.0))
        assert rebuilt == [1]  # "a" was gone; recreated deterministically

    def test_hit_refreshes_recency(self):
        cache = ExperimentCache(max_bytes=2048)
        cache.get_or_create("a", lambda: _array_kb(1.0))
        cache.get_or_create("b", lambda: _array_kb(2.0))
        cache.get_or_create("a", lambda: _array_kb(0.0))  # hit: "a" now MRU
        cache.get_or_create("c", lambda: _array_kb(3.0))  # evicts "b", not "a"
        hits_before = cache.stats()["hits"]
        cache.get_or_create("a", lambda: _array_kb(0.0))
        assert cache.stats()["hits"] == hits_before + 1

    def test_oversized_entry_returned_then_dropped(self):
        cache = ExperimentCache(max_bytes=100)
        value = cache.get_or_create("big", lambda: _array_kb(1.0))
        assert value.nbytes == 1024  # the caller still gets the value
        stats = cache.stats()
        assert stats["size"] == 0
        assert stats["evictions"] == 1
        assert stats["resident_bytes"] == 0

    def test_unbounded_budget_never_evicts(self):
        cache = ExperimentCache(max_bytes=None)
        for i in range(50):
            cache.get_or_create(i, lambda: _array_kb(0.0))
        stats = cache.stats()
        assert stats["size"] == 50
        assert stats["evictions"] == 0
        assert stats["max_bytes"] == -1

    def test_entry_cost_prefers_nbytes(self):
        assert entry_cost(np.zeros(10)) == 80
        assert entry_cost("text") >= 1
        assert entry_cost(0) >= 1  # never bills below one byte

    def test_entry_cost_recurses_into_containers(self):
        """Regression: a shallow getsizeof billed a dict of arrays at
        container overhead (~64 B) no matter how many megabytes its
        members pinned, so budget eviction never fired for composites."""
        member = np.zeros(1024 * 1024, dtype=np.uint8)  # 1 MiB
        assert entry_cost({"a": member}) >= member.nbytes
        assert entry_cost([member, np.zeros(10)]) >= member.nbytes + 80
        assert entry_cost((member,)) >= member.nbytes
        assert entry_cost({"nested": {"deep": [member]}}) >= member.nbytes

    def test_entry_cost_bills_shared_members_once(self):
        member = np.zeros(1000, dtype=np.float64)  # 8000 B
        shared = entry_cost([member, member])
        assert member.nbytes <= shared < 2 * member.nbytes

    def test_entry_cost_tolerates_reference_cycles(self):
        cycle: list = []
        cycle.append(cycle)
        assert entry_cost(cycle) >= 1

    def test_composite_entries_actually_evict(self):
        """The budget must see through containers: two 1 MiB dict values
        under a 1.5 MiB budget cannot both stay resident."""
        cache = ExperimentCache(max_bytes=int(1.5 * 1024 * 1024))
        cache.put("first", {"payload": np.zeros(1024 * 1024, dtype=np.uint8)})
        cache.put("second", {"payload": np.zeros(1024 * 1024, dtype=np.uint8)})
        stats = cache.stats()
        assert stats["evictions"] >= 1
        assert stats["resident_bytes"] <= cache.max_bytes

    def test_set_cache_budget_roundtrip(self):
        original = EXPERIMENT_CACHE.max_bytes
        try:
            previous = set_cache_budget(42)
            assert previous == original
            assert EXPERIMENT_CACHE.max_bytes == 42
        finally:
            set_cache_budget(original)

    def test_shrinking_budget_evicts_immediately(self):
        original = EXPERIMENT_CACHE.max_bytes
        EXPERIMENT_CACHE.clear()
        try:
            set_cache_budget(None)
            EXPERIMENT_CACHE.get_or_create(
                ("eviction-test", 1), lambda: _array_kb(1.0)
            )
            set_cache_budget(100)
            assert EXPERIMENT_CACHE.stats()["size"] == 0
        finally:
            set_cache_budget(original)
            EXPERIMENT_CACHE.clear()

    def test_tiny_budget_run_bit_identical(self, config):
        """Acceptance: evictions change memory use, never results."""
        dataset = make_dataset(config)
        subject = dataset.subjects[0]
        baseline = run_subject(dataset, subject, "reduced", config, with_device=False)
        original = EXPERIMENT_CACHE.max_bytes
        EXPERIMENT_CACHE.clear()
        try:
            set_cache_budget(1)  # every record/detector is oversized
            starved = run_subject(
                dataset, subject, "reduced", config, with_device=False
            )
            assert EXPERIMENT_CACHE.stats()["evictions"] > 0
            assert EXPERIMENT_CACHE.stats()["size"] == 0
        finally:
            set_cache_budget(original)
            EXPERIMENT_CACHE.clear()
        assert starved.reference_report == baseline.reference_report


class TestNbytesCosting:
    """The duck-typed costs the cache budget is priced in."""

    def test_record_nbytes(self, config):
        dataset = make_dataset(config)
        record = dataset.record(dataset.subjects[0], 10.0, purpose="test")
        expected = (
            record.ecg.nbytes
            + record.abp.nbytes
            + record.r_peaks.nbytes
            + record.systolic_peaks.nbytes
        )
        assert record.nbytes == expected
        assert entry_cost(record) == expected

    def test_stream_nbytes_sums_windows(self, labeled_stream):
        assert labeled_stream.nbytes == sum(
            w.nbytes for w in labeled_stream.windows
        )
        assert labeled_stream.nbytes > 0

    def test_detector_nbytes(self, trained_detectors):
        for detector in trained_detectors.values():
            assert detector.nbytes > 0
            assert entry_cost(detector) == detector.nbytes


class TestTable2Jobs:
    def test_quick_table2_parallel_matches_serial(self, config):
        from repro.experiments.table2 import run_table2

        versions = (DetectorVersion.REDUCED,)
        serial = run_table2(config, versions=versions, jobs=1)
        parallel = run_table2(config, versions=versions, jobs=2)
        assert serial.failures == ()
        assert parallel.failures == ()
        for s_row, p_row in zip(serial.rows, parallel.rows):
            assert s_row.report == p_row.report


def test_effective_workers_clamps_to_cpus():
    import os

    available = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )
    assert effective_workers(1) == 1
    assert effective_workers(10_000) == available
    assert 1 <= effective_workers(2) <= 2


def test_cohort_outcome_ok():
    outcome = CohortOutcome(
        subject_id="s", version=DetectorVersion.REDUCED, result=None, error="E: x"
    )
    assert not outcome.ok
