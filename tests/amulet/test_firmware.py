"""Tests for the firmware toolchain: static checks and demand linking."""

import pytest

from repro.amulet.firmware import (
    ArrayDeclaration,
    FirmwareToolchain,
    StaticCheckError,
)
from repro.amulet.qm import QMApp, State, StateMachine
from repro.core.versions import DetectorVersion
from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.harness import deploy_model


class _StubApp(QMApp):
    """Configurable app for toolchain tests."""

    def __init__(
        self,
        name="stub",
        arrays=(),
        sram=64,
        libm=False,
        code=512,
        data=128,
        services=frozenset({"float_arithmetic"}),
    ):
        machine = StateMachine([State("only")], initial="only")
        super().__init__(name, machine)
        self._arrays = list(arrays)
        self._sram = sram
        self._libm = libm
        self._code = code
        self._data = data
        self._services = set(services)

    def code_inventory(self):
        return {"all": self._code}

    def static_data_bytes(self):
        return {"all": self._data}

    def sram_peak_bytes(self):
        return self._sram

    def uses_libm(self):
        return self._libm

    def array_declarations(self):
        return self._arrays

    def required_services(self):
        return self._services


@pytest.fixture(scope="module")
def sift_apps(trained_detectors):
    return {
        version: SIFTDetectorApp(version, deploy_model(detector))
        for version, detector in trained_detectors.items()
    }


class TestArrayDeclaration:
    def test_total_bytes(self):
        assert ArrayDeclaration("a", element_bytes=4, length=1080).total_bytes == 4320

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayDeclaration("a", element_bytes=0, length=10)
        with pytest.raises(ValueError):
            ArrayDeclaration("a", element_bytes=4, length=10, dimensions=0)


class TestStaticChecks:
    def test_rejects_2d_arrays(self):
        """Insight #1: the platform does not support 2-D arrays."""
        app = _StubApp(
            arrays=[ArrayDeclaration("grid", 1, 2500, dimensions=2)]
        )
        with pytest.raises(StaticCheckError, match="2-D"):
            FirmwareToolchain().check_app(app)

    def test_rejects_oversized_array(self):
        """Insight #1: large arrays are not allowed."""
        app = _StubApp(arrays=[ArrayDeclaration("big", 4, 2000)])
        with pytest.raises(StaticCheckError, match="array limit"):
            FirmwareToolchain().check_app(app)

    def test_paper_signal_arrays_just_fit(self):
        """The two 1080-element float arrays (4320 B) pass the check."""
        app = _StubApp(arrays=[ArrayDeclaration("ecg", 4, 1080),
                               ArrayDeclaration("abp", 4, 1080)])
        build = FirmwareToolchain().check_app(app)
        assert build.name == "stub"

    def test_rejects_unknown_service(self):
        app = _StubApp(services={"quantum_rng"})
        with pytest.raises(StaticCheckError, match="quantum_rng"):
            FirmwareToolchain().check_app(app)

    def test_rejects_oversized_image(self):
        app = _StubApp(code=120 * 1024, data=30 * 1024)
        with pytest.raises(StaticCheckError, match="FRAM"):
            FirmwareToolchain().build([app])

    def test_rejects_sram_overflow(self):
        app = _StubApp(sram=4096)
        with pytest.raises(StaticCheckError, match="SRAM"):
            FirmwareToolchain().build([app])

    def test_rejects_duplicate_app_names(self):
        with pytest.raises(StaticCheckError, match="duplicate"):
            FirmwareToolchain().build([_StubApp("a"), _StubApp("a")])

    def test_rejects_empty_image(self):
        with pytest.raises(StaticCheckError):
            FirmwareToolchain().build([])


class TestDemandLinking:
    def test_libm_linked_only_when_needed(self):
        plain = FirmwareToolchain().build([_StubApp()])
        assert not plain.links_libm
        mathy = FirmwareToolchain().build([_StubApp(libm=True)])
        assert mathy.links_libm

    def test_libm_app_pulls_double_arithmetic(self):
        image = FirmwareToolchain().build([_StubApp(libm=True)])
        names = {c.name for c in image.components}
        assert "softfp_double" in names

    def test_unneeded_components_absent(self):
        image = FirmwareToolchain().build([_StubApp()])
        names = {c.name for c in image.components}
        assert "grid_dsp_api" not in names
        assert "libm" not in names

    def test_sift_system_fram_ordering(self, sift_apps):
        """Original > Simplified > Reduced system footprint (Table III)."""
        toolchain = FirmwareToolchain()
        sizes = {
            version: toolchain.build([app]).system_fram_bytes
            for version, app in sift_apps.items()
        }
        assert (
            sizes[DetectorVersion.ORIGINAL]
            > sizes[DetectorVersion.SIMPLIFIED]
            > sizes[DetectorVersion.REDUCED]
        )

    def test_sift_detector_fram_ordering(self, sift_apps):
        toolchain = FirmwareToolchain()
        sizes = {
            version: toolchain.build([app]).build_for(app.name).fram_bytes
            for version, app in sift_apps.items()
        }
        assert (
            sizes[DetectorVersion.ORIGINAL]
            > sizes[DetectorVersion.SIMPLIFIED]
            > sizes[DetectorVersion.REDUCED]
        )
        # "consumes almost 50% less memory than the original"
        assert sizes[DetectorVersion.REDUCED] < 0.6 * sizes[DetectorVersion.ORIGINAL]

    def test_sift_sram_matches_paper(self, sift_apps):
        """The paper's measured SRAM: 259 B matrix builds, 69 B reduced."""
        toolchain = FirmwareToolchain()
        for version, app in sift_apps.items():
            build = toolchain.check_app(app)
            expected = 69 if version is DetectorVersion.REDUCED else 259
            assert build.sram_bytes == expected

    def test_memory_map_accounts_everything(self, sift_apps):
        app = sift_apps[DetectorVersion.ORIGINAL]
        image = FirmwareToolchain().build([app])
        rows = image.memory_map()
        total = sum(size for _, _, size in rows)
        assert total == image.total_fram_bytes

    def test_multi_app_image(self, sift_apps):
        """AmuletOS hosts multiple apps in one image."""
        a = sift_apps[DetectorVersion.REDUCED]
        b = _StubApp(name="pedometer")
        image = FirmwareToolchain().build([a, b])
        assert image.build_for("pedometer").code_bytes == 512
        assert image.app_fram_bytes == a.fram_bytes + b.fram_bytes

    def test_build_for_unknown_app(self, sift_apps):
        image = FirmwareToolchain().build([sift_apps[DetectorVersion.REDUCED]])
        with pytest.raises(KeyError):
            image.build_for("ghost")
