"""Tests for AmuletOS: event loop, isolation, services."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amulet.amulet_os import AmuletOS
from repro.amulet.firmware import FirmwareToolchain
from repro.amulet.qm import Event, QMApp, State, StateMachine
from repro.amulet.restricted import RestrictedEnvironmentError


class _EchoApp(QMApp):
    """Counts events; exercises math and display services."""

    def __init__(self, name="echo", libm=False):
        state = State("run")
        state.on("TICK", self._on_tick)
        state.on("SENSOR_DATA", self._on_data)
        super().__init__(name, StateMachine([state], initial="run"))
        self._libm = libm
        self.ticks = 0
        self.received = []

    @staticmethod
    def _on_tick(app, event):
        app.ticks += 1
        app.services.math.add(np.ones(100), np.ones(100))
        return None

    @staticmethod
    def _on_data(app, event):
        app.received.append(app.services.fetch_window())
        return None

    def code_inventory(self):
        return {"handlers": 200}

    def static_data_bytes(self):
        return {}

    def sram_peak_bytes(self):
        return 40

    def uses_libm(self):
        return self._libm


def _os(*apps):
    image = FirmwareToolchain().build(list(apps))
    return AmuletOS(image)


class TestEventLoop:
    def test_post_and_step(self):
        app = _EchoApp()
        os = _os(app)
        os.post("echo", Event("TICK"))
        assert os.pending_events == 1
        assert os.step()
        assert app.ticks == 1
        assert not os.step()  # idle

    def test_run_until_idle(self):
        app = _EchoApp()
        os = _os(app)
        for _ in range(5):
            os.post("echo", Event("TICK"))
        assert os.run_until_idle() == 5
        assert app.ticks == 5

    def test_post_to_unknown_app(self):
        os = _os(_EchoApp())
        with pytest.raises(KeyError):
            os.post("ghost", Event("TICK"))

    def test_self_posting_loop_detected(self):
        class _LoopApp(_EchoApp):
            @staticmethod
            def _on_tick(app, event):
                app.services.post("TICK")
                return None

        state = State("run").on("TICK", _LoopApp._on_tick)
        app = _LoopApp.__new__(_LoopApp)
        QMApp.__init__(app, "loop", StateMachine([state], initial="run"))
        app._libm = False
        app.ticks = 0
        app.received = []
        os = _os(app)
        os.post("loop", Event("TICK"))
        with pytest.raises(RuntimeError, match="did not drain"):
            os.run_until_idle(max_dispatches=50)

    def test_ledger_charges_cycles_and_time(self):
        app = _EchoApp()
        os = _os(app)
        os.post("echo", Event("TICK"))
        os.run_until_idle()
        assert os.ledger.cycles_by_app["echo"] > 0
        assert os.ledger.sim_time_s > 0
        assert os.ledger.dispatches == 1
        assert os.ledger.ops_by_app["echo"].counts["float_add"] == 100

    def test_sensor_delivery(self):
        app = _EchoApp()
        os = _os(app)
        os.deliver_sensor_window("echo", {"payload": 1})
        os.run_until_idle()
        assert app.received == [{"payload": 1}]
        assert os.ledger.peripheral_events["ble_radio"] == 1

    def test_fetch_from_empty_mailbox(self):
        app = _EchoApp()
        os = _os(app)
        os.post("echo", Event("SENSOR_DATA"))
        os.run_until_idle()
        assert app.received == [None]


class TestIsolation:
    def test_apps_have_separate_counters(self):
        a, b = _EchoApp("a"), _EchoApp("b")
        os = _os(a, b)
        os.post("a", Event("TICK"))
        os.run_until_idle()
        assert os.ledger.cycles_by_app.get("a", 0) > 0
        assert os.ledger.cycles_by_app.get("b", 0) == 0

    def test_libm_gate_follows_build(self):
        restricted = _EchoApp("restricted", libm=False)
        os = _os(restricted)
        with pytest.raises(RestrictedEnvironmentError):
            restricted.services.math.sqrt(np.array([2.0]))

        privileged = _EchoApp("privileged", libm=True)
        os = _os(privileged)
        out = privileged.services.math.sqrt(np.array([4.0]))
        assert float(out[0]) == pytest.approx(2.0)

    def test_mailboxes_are_separate(self):
        a, b = _EchoApp("a"), _EchoApp("b")
        os = _os(a, b)
        os.deliver_sensor_window("a", "for-a")
        os.run_until_idle()
        assert a.received == ["for-a"]
        assert b.received == []


class TestServices:
    def test_display_and_alert(self):
        app = _EchoApp()
        os = _os(app)
        app.services.display_write(0, "hello")
        assert os.display.lines[0] == "hello"
        app.services.alert("ECG ALTERED")
        assert os.display.contains("! ECG ALTERED")
        assert os.ledger.peripheral_events["display"] == 2
        assert os.ledger.peripheral_events["haptic"] == 1

    def test_float_to_string_known_values(self):
        app = _EchoApp()
        _os(app)
        fts = app.services.float_to_string
        assert fts(3.14159, 2) == "3.14"
        assert fts(-2.5, 1) == "-2.5"
        assert fts(0.0, 2) == "0.00"
        assert fts(9.999, 2) == "10.00"
        assert fts(42.0, 0) == "42"
        assert fts(0.05, 1) == "0.1"  # rounds half away from zero

    def test_float_to_string_validation(self):
        app = _EchoApp()
        _os(app)
        with pytest.raises(ValueError):
            app.services.float_to_string(1.0, decimals=9)

    def test_string_to_float_known_values(self):
        app = _EchoApp()
        _os(app)
        stf = app.services.string_to_float
        assert stf("3.14") == pytest.approx(3.14)
        assert stf("-0.5") == pytest.approx(-0.5)
        assert stf("  42 ") == pytest.approx(42.0)
        assert stf("+7.125") == pytest.approx(7.125)

    def test_string_to_float_rejects_garbage(self):
        app = _EchoApp()
        _os(app)
        for bad in ("", ".", "-", "1.2.3", "abc", "1e5"):
            with pytest.raises(ValueError):
                app.services.string_to_float(bad)

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(-1e5, 1e5), decimals=st.integers(0, 6))
    def test_property_conversion_roundtrip(self, value, decimals):
        """The hand-written conversions agree to the printed precision."""
        app = _EchoApp()
        _os(app)
        text = app.services.float_to_string(value, decimals)
        back = app.services.string_to_float(text)
        assert back == pytest.approx(value, abs=0.51 * 10**-decimals)

    def test_conversions_are_billed(self):
        app = _EchoApp()
        os = _os(app)
        before = app.services.math.counter.total()
        app.services.float_to_string(123.456, 3)
        assert app.services.math.counter.total() > before
