"""Stateful property test: AmuletOS invariants under random event traffic.

A hypothesis rule-based machine drives an OS hosting two isolated apps
with arbitrary interleavings of posts, sensor deliveries and run-to-idle
calls, and checks the invariants the platform guarantees:

* events are never lost or duplicated (per-app processed counts match
  per-app delivered counts after the queue drains);
* isolation: app A's cycle ledger never changes from app B's traffic;
* the ledger's cycle total is non-decreasing and consistent with
  simulated time;
* the state machines always return to their initial state (all handlers
  here are run-to-completion loops).
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.amulet.amulet_os import AmuletOS
from repro.amulet.firmware import FirmwareToolchain
from repro.amulet.qm import Event, QMApp, State, StateMachine


class _CountingApp(QMApp):
    """Processes TICK and SENSOR_DATA; counts everything it sees."""

    def __init__(self, name: str) -> None:
        running = State("Running")
        running.on("TICK", self._on_tick)
        running.on("SENSOR_DATA", self._on_data)
        super().__init__(name, StateMachine([running], initial="Running"))
        self.ticks = 0
        self.payloads: list = []

    @staticmethod
    def _on_tick(app, event):
        app.ticks += 1
        app.services.math.add(np.ones(16), np.ones(16))
        return None

    @staticmethod
    def _on_data(app, event):
        app.payloads.append(app.services.fetch_window())
        return None

    def code_inventory(self):
        return {"handlers": 128}

    def static_data_bytes(self):
        return {}

    def sram_peak_bytes(self):
        return 16

    def uses_libm(self):
        return False


class AmuletOSMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.alpha = _CountingApp("alpha")
        self.beta = _CountingApp("beta")
        image = FirmwareToolchain().build([self.alpha, self.beta])
        self.os = AmuletOS(image)
        self.sent = {"alpha": 0, "beta": 0}
        self.delivered_payloads = {"alpha": 0, "beta": 0}
        self.last_total_cycles = 0

    # -- rules -----------------------------------------------------------

    @rule(target_app=st.sampled_from(["alpha", "beta"]))
    def post_tick(self, target_app):
        self.os.post(target_app, Event("TICK"))
        self.sent[target_app] += 1

    @rule(target_app=st.sampled_from(["alpha", "beta"]), payload=st.integers())
    def deliver_sensor(self, target_app, payload):
        self.os.deliver_sensor_window(target_app, payload)
        self.delivered_payloads[target_app] += 1

    @rule()
    def drain(self):
        self.os.run_until_idle()

    @rule(n=st.integers(0, 5))
    def step_a_few(self, n):
        for _ in range(n):
            if not self.os.step():
                break

    # -- invariants --------------------------------------------------------

    @invariant()
    def cycles_monotone(self):
        total = self.os.ledger.total_cycles()
        assert total >= self.last_total_cycles
        self.last_total_cycles = total

    @invariant()
    def no_events_lost_when_idle(self):
        if self.os.pending_events == 0:
            assert self.alpha.ticks == self.sent["alpha"]
            assert self.beta.ticks == self.sent["beta"]
            assert len(self.alpha.payloads) == self.delivered_payloads["alpha"]
            assert len(self.beta.payloads) == self.delivered_payloads["beta"]

    @invariant()
    def machines_in_initial_state(self):
        assert self.alpha.machine.current.name == "Running"
        assert self.beta.machine.current.name == "Running"

    @invariant()
    def isolation_holds(self):
        """An app with no traffic has no cycles billed."""
        for name, app in (("alpha", self.alpha), ("beta", self.beta)):
            if self.sent[name] == 0 and self.delivered_payloads[name] == 0:
                assert self.os.ledger.cycles_by_app.get(name, 0) == 0

    @invariant()
    def ledger_time_consistent(self):
        expected = self.os.hardware.mcu.cycles_to_seconds(
            self.os.ledger.total_cycles()
        )
        assert abs(self.os.ledger.sim_time_s - expected) < 1e-9


TestAmuletOSStateful = AmuletOSMachine.TestCase
TestAmuletOSStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
