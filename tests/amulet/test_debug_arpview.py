"""Tests for the debugging tools (Insight #3) and ARP-view rendering."""

import pytest

from repro.amulet.amulet_os import AmuletOS
from repro.amulet.arpview import (
    render_comparison,
    render_memory_map,
    render_profile,
)
from repro.amulet.debug import DebugTracer, DisplayRecorder
from repro.amulet.firmware import FirmwareToolchain
from repro.amulet.qm import Event
from repro.core.versions import DetectorVersion
from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.harness import AmuletSIFTRunner, deploy_model
from repro.sift_app.payload import DeviceWindow


@pytest.fixture()
def traced_run(trained_detectors, labeled_stream):
    detector = trained_detectors[DetectorVersion.SIMPLIFIED]
    app = SIFTDetectorApp(DetectorVersion.SIMPLIFIED, deploy_model(detector))
    os = AmuletOS(FirmwareToolchain().build([app]))
    tracer = DebugTracer(os)
    recorder = DisplayRecorder(os)
    for window in labeled_stream.windows[:6]:
        os.deliver_sensor_window(app.name, DeviceWindow.from_signal_window(window))
    os.run_until_idle()
    return app, os, tracer, recorder


class TestDebugTracer:
    def test_traces_every_dispatch(self, traced_run):
        _, os, tracer, _ = traced_run
        assert len(tracer.traces) == os.ledger.dispatches == 6

    def test_run_to_completion_visible_in_trace(self, traced_run):
        """One SENSOR_DATA dispatch walks all three states and returns to
        PeaksDataCheck before the dispatch ends -- so the trace shows no
        *net* transition, exactly the run-to-completion semantics."""
        app, _, tracer, _ = traced_run
        assert tracer.transitions() == []
        for trace in tracer.traces:
            assert trace.signal == "SENSOR_DATA"
            assert trace.state_before == "PeaksDataCheck"
            assert trace.state_after == "PeaksDataCheck"
            # ...yet the full pipeline's work was done inside it.
            assert trace.cycles > 100_000

    def test_cycles_attributed(self, traced_run):
        _, os, tracer, _ = traced_run
        assert sum(t.cycles for t in tracer.traces) == os.ledger.total_cycles()
        assert tracer.cycles_by_signal()["SENSOR_DATA"] > 0

    def test_hottest_dispatches_sorted(self, traced_run):
        _, _, tracer, _ = traced_run
        hottest = tracer.hottest_dispatches(3)
        assert hottest[0].cycles >= hottest[-1].cycles

    def test_format_trace(self, traced_run):
        _, _, tracer, _ = traced_run
        text = tracer.format_trace(last=2)
        assert "SENSOR_DATA" in text
        assert "cycles" in text

    def test_detach_restores_step(self, traced_run):
        app, os, tracer, _ = traced_run
        tracer.detach()
        n_before = len(tracer.traces)
        os.post(app.name, Event("NOPE"))
        os.run_until_idle()
        assert len(tracer.traces) == n_before

    def test_bounded_memory(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.REDUCED]
        app = SIFTDetectorApp(DetectorVersion.REDUCED, deploy_model(detector))
        os = AmuletOS(FirmwareToolchain().build([app]))
        tracer = DebugTracer(os, max_entries=3)
        from repro.amulet.qm import Event

        for _ in range(10):
            os.post(app.name, Event("IGNORED"))
        os.run_until_idle()
        assert len(tracer.traces) == 3
        assert tracer.dropped == 7

    def test_validation(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.REDUCED]
        app = SIFTDetectorApp(DetectorVersion.REDUCED, deploy_model(detector))
        os = AmuletOS(FirmwareToolchain().build([app]))
        with pytest.raises(ValueError):
            DebugTracer(os, max_entries=0)


class TestDisplayRecorder:
    def test_records_frames(self, traced_run):
        _, _, _, recorder = traced_run
        assert recorder.n_frames > 0

    def test_frame_history_searchable(self, traced_run):
        app, _, _, recorder = traced_run
        # PeaksDataCheck displays each snippet; detection alerts may fire.
        assert recorder.ever_showed("ECG")
        if any(app.predictions):
            assert recorder.ever_showed("ALTERED")

    def test_history_outlives_screen(self, traced_run):
        """The recorder retains frames that later scrolled off."""
        _, os, _, recorder = traced_run
        first_frame_text = recorder.frames[0][1]
        assert first_frame_text != os.display.visible_text() or len(
            recorder.frames
        ) == 1

    def test_detach(self, traced_run):
        _, os, _, recorder = traced_run
        recorder.detach()
        n = recorder.n_frames
        os.display.scroll_message("after detach")
        assert recorder.n_frames == n


class TestARPView:
    @pytest.fixture()
    def profiles(self, trained_detectors, labeled_stream):
        out = {}
        for version, detector in trained_detectors.items():
            runner = AmuletSIFTRunner(detector)
            runner.run_stream(labeled_stream)
            out[version.value] = (runner.image, runner.profile(period_s=3.0))
        return out

    def test_memory_map_rendering(self, profiles):
        image, _ = profiles["original"]
        text = render_memory_map(image)
        assert "os_core" in text
        assert "libm" in text
        assert "% used" in text

    def test_profile_rendering(self, profiles):
        _, profile = profiles["simplified"]
        text = render_profile(profile)
        assert "battery-life slider" in text
        assert "<- current" in text
        assert "TOTAL" in text

    def test_comparison_rendering(self, profiles):
        text = render_comparison(
            {name: profile for name, (_, profile) in profiles.items()}
        )
        assert "lifetime (days)" in text
        for name in ("original", "simplified", "reduced"):
            assert name in text

    def test_comparison_empty(self):
        assert render_comparison({}) == "(no profiles)"
