"""Tests for the QM state-machine framework."""

import pytest

from repro.amulet.qm import Event, QMApp, State, StateMachine


class _RecordingApp(QMApp):
    """Minimal concrete app for framework tests."""

    def __init__(self, machine: StateMachine) -> None:
        super().__init__("recorder", machine)
        self.trace: list[str] = []

    def code_inventory(self):
        return {"handler": 100}

    def static_data_bytes(self):
        return {"buffer": 16}

    def sram_peak_bytes(self):
        return 32

    def uses_libm(self):
        return False


def _simple_machine():
    idle = State("idle")
    busy = State("busy")
    idle.on("GO", lambda app, e: app.trace.append("go") or "busy")
    busy.on("DONE", lambda app, e: app.trace.append("done") or "idle")
    busy.on("PING", lambda app, e: app.trace.append("ping") or None)
    return StateMachine([idle, busy], initial="idle")


class TestEvent:
    def test_requires_signal(self):
        with pytest.raises(ValueError):
            Event("")

    def test_payload_optional(self):
        assert Event("X").payload is None
        assert Event("X", 42).payload == 42


class TestState:
    def test_duplicate_handler_rejected(self):
        state = State("s").on("A", lambda app, e: None)
        with pytest.raises(ValueError, match="already handles"):
            state.on("A", lambda app, e: None)

    def test_signals_listed(self):
        state = State("s").on("A", lambda app, e: None).on("B", lambda app, e: None)
        assert state.signals == ("A", "B")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            State("")


class TestStateMachine:
    def test_transition_on_handler_return(self):
        app = _RecordingApp(_simple_machine())
        app.start()
        assert app.machine.current.name == "idle"
        assert app.dispatch(Event("GO"))
        assert app.machine.current.name == "busy"
        assert app.dispatch(Event("DONE"))
        assert app.machine.current.name == "idle"
        assert app.trace == ["go", "done"]

    def test_unhandled_event_ignored(self):
        app = _RecordingApp(_simple_machine())
        app.start()
        assert not app.dispatch(Event("DONE"))  # not handled in idle
        assert app.machine.current.name == "idle"

    def test_handler_staying_in_state(self):
        app = _RecordingApp(_simple_machine())
        app.start()
        app.dispatch(Event("GO"))
        app.dispatch(Event("PING"))
        assert app.machine.current.name == "busy"

    def test_dispatch_before_start_raises(self):
        app = _RecordingApp(_simple_machine())
        with pytest.raises(RuntimeError, match="not started"):
            app.dispatch(Event("GO"))

    def test_dispatch_count(self):
        app = _RecordingApp(_simple_machine())
        app.start()
        app.dispatch(Event("GO"))
        app.dispatch(Event("PING"))
        app.dispatch(Event("NOPE"))
        assert app.machine.dispatch_count == 2

    def test_entry_actions_chain_run_to_completion(self):
        order = []
        a = State("a", on_entry=lambda app: order.append("a") or "b")
        b = State("b", on_entry=lambda app: order.append("b") or "c")
        c = State("c", on_entry=lambda app: order.append("c") or None)
        machine = StateMachine([a, b, c], initial="a")
        app = _RecordingApp(machine)
        app.start()
        assert order == ["a", "b", "c"]
        assert machine.current.name == "c"

    def test_entry_cycle_detected(self):
        a = State("a", on_entry=lambda app: "b")
        b = State("b", on_entry=lambda app: "a")
        machine = StateMachine([a, b], initial="a")
        app = _RecordingApp(machine)
        with pytest.raises(RuntimeError, match="cycle"):
            app.start()

    def test_transition_to_unknown_state(self):
        s = State("s").on("X", lambda app, e: "nowhere")
        machine = StateMachine([s], initial="s")
        app = _RecordingApp(machine)
        app.start()
        with pytest.raises(ValueError, match="unknown state"):
            app.dispatch(Event("X"))

    def test_validation(self):
        with pytest.raises(ValueError):
            StateMachine([], initial="x")
        with pytest.raises(ValueError):
            StateMachine([State("a")], initial="b")
        with pytest.raises(ValueError):
            StateMachine([State("a"), State("a")], initial="a")


class TestQMAppDeclarations:
    def test_footprint_properties(self):
        app = _RecordingApp(_simple_machine())
        assert app.code_bytes == 100
        assert app.data_bytes == 16
        assert app.fram_bytes == 116

    def test_requires_name(self):
        with pytest.raises(ValueError):
            QMApp.__init__(object.__new__(_RecordingApp), "", _simple_machine())
