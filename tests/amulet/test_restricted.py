"""Tests for the restricted execution environment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amulet.restricted import (
    CycleCostModel,
    OpCounter,
    RestrictedEnvironmentError,
    RestrictedMath,
)


class TestOpCounter:
    def test_charge_accumulates(self):
        counter = OpCounter()
        counter.charge("float_add", 10)
        counter.charge("float_add", 5)
        counter.charge("int_op", 1)
        assert counter.counts == {"float_add": 15, "int_op": 1}
        assert counter.total() == 16

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.charge("branch", 2)
        b.charge("branch", 3)
        b.charge("int_mul", 1)
        a.merge(b)
        assert a.counts == {"branch": 5, "int_mul": 1}

    def test_reset(self):
        counter = OpCounter()
        counter.charge("int_op")
        counter.reset()
        assert counter.total() == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            OpCounter().charge("int_op", -1)


class TestCycleCostModel:
    def test_cycles_for_known_tally(self):
        model = CycleCostModel()
        counter = OpCounter()
        counter.charge("float_add", 2)
        counter.charge("libm_sqrt", 1)
        expected = 2 * model.float_add + model.libm_sqrt
        assert model.cycles_for(counter) == expected

    def test_unknown_op_rejected(self):
        counter = OpCounter()
        counter.charge("teleport", 1)
        with pytest.raises(KeyError):
            CycleCostModel().cycles_for(counter)

    def test_double_ops_cost_more_than_single(self):
        model = CycleCostModel()
        assert model.double_add > model.float_add
        assert model.double_div > model.float_div

    def test_libm_dominates(self):
        model = CycleCostModel()
        assert model.libm_atan > model.float_div
        assert model.libm_sqrt > model.float_div


class TestLibmGate:
    def test_sqrt_blocked_without_libm(self):
        math = RestrictedMath(allow_libm=False)
        with pytest.raises(RestrictedEnvironmentError, match="math library"):
            math.sqrt(np.array([4.0]))

    def test_atan2_blocked_without_libm(self):
        math = RestrictedMath(allow_libm=False)
        with pytest.raises(RestrictedEnvironmentError):
            math.atan2(1.0, 1.0)

    def test_exp_blocked_without_libm(self):
        math = RestrictedMath(allow_libm=False)
        with pytest.raises(RestrictedEnvironmentError):
            math.exp(1.0)

    def test_allowed_with_libm(self):
        math = RestrictedMath(allow_libm=True)
        assert float(math.sqrt(np.array([4.0]))[0]) == pytest.approx(2.0)
        assert float(math.atan2(1.0, 1.0)) == pytest.approx(np.pi / 4)


class TestPrecision:
    def test_libm_build_computes_in_double(self):
        math = RestrictedMath(allow_libm=True)
        assert math.add(1.0, 2.0).dtype == np.float64

    def test_restricted_build_computes_in_float32(self):
        math = RestrictedMath(allow_libm=False)
        assert math.add(1.0, 2.0).dtype == np.float32

    def test_ops_billed_at_matching_precision(self):
        single = RestrictedMath(allow_libm=False)
        single.mul(np.ones(10), np.ones(10))
        assert single.counter.counts.get("float_mul") == 10
        double = RestrictedMath(allow_libm=True)
        double.mul(np.ones(10), np.ones(10))
        assert double.counter.counts.get("double_mul") == 10


class TestArithmetic:
    def test_div_saturates_on_zero_denominator(self):
        math = RestrictedMath()
        out = math.div(np.array([1.0]), np.array([0.0]))
        assert np.isfinite(out).all()
        assert out[0] > 1e30

    def test_div_preserves_sign(self):
        math = RestrictedMath()
        out = math.div(np.array([1.0, 1.0]), np.array([-0.0, 0.0]))
        assert out[0] < 0 or out[1] > 0  # signed saturation

    def test_normalize_minmax(self):
        math = RestrictedMath()
        out = math.normalize_minmax(np.array([2.0, 4.0, 6.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0])

    def test_normalize_flat(self):
        math = RestrictedMath()
        assert np.allclose(math.normalize_minmax(np.full(5, 7.0)), 0.5)

    def test_reductions(self):
        math = RestrictedMath()
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert float(math.sum(a)) == pytest.approx(10.0)
        assert float(math.mean(a)) == pytest.approx(2.5)
        assert float(math.min(a)) == 1.0
        assert float(math.max(a)) == 4.0

    def test_dot(self):
        math = RestrictedMath()
        assert float(
            math.dot(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        ) == pytest.approx(11.0)

    def test_dot_shape_mismatch(self):
        with pytest.raises(ValueError):
            RestrictedMath().dot(np.ones(2), np.ones(3))

    def test_fixed_mac_matches_model_semantics(self):
        math = RestrictedMath()
        weights = np.array([1 << 14, 2 << 14])  # 1.0 and 2.0 at Q14
        features = np.array([3 << 14, 4 << 14])  # 3.0 and 4.0
        acc = math.fixed_mac(weights, features, 14)
        assert acc / (1 << 14) == pytest.approx(11.0)

    def test_every_op_is_billed(self):
        math = RestrictedMath()
        math.add(np.ones(7), np.ones(7))
        math.mul(np.ones(3), 2.0)
        math.sum(np.ones(5))
        counts = math.counter.counts
        assert counts["float_add"] == 7 + 4  # add + sum reduction
        assert counts["float_mul"] == 3


class TestHistogram2D:
    def test_counts_match_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.random(500), rng.random(500)
        math = RestrictedMath()
        ours = math.histogram2d(x, y, 20, saturate=None)
        cols = np.minimum((x * 20).astype(int), 19)
        rows = np.minimum((y * 20).astype(int), 19)
        reference = np.zeros((20, 20), dtype=int)
        np.add.at(reference, (rows, cols), 1)
        # float32 coordinate scaling may move borderline points one cell.
        assert np.abs(ours - reference).sum() <= 4

    def test_saturation(self):
        math = RestrictedMath()
        x = np.full(1000, 0.5)
        y = np.full(1000, 0.5)
        matrix = math.histogram2d(x, y, 10, saturate=255)
        assert matrix.max() == 255

    def test_charges_per_point(self):
        math = RestrictedMath()
        math.histogram2d(np.random.default_rng(1).random(100),
                         np.random.default_rng(2).random(100), 10)
        assert math.counter.counts["float_mul"] == 200

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 40),
        size=st.integers(0, 200),
        seed=st.integers(0, 9999),
    )
    def test_property_total_preserved(self, n, size, seed):
        rng = np.random.default_rng(seed)
        math = RestrictedMath()
        matrix = math.histogram2d(rng.random(size), rng.random(size), n,
                                  saturate=None)
        assert matrix.sum() == size

    def test_int_helpers(self):
        math = RestrictedMath()
        assert math.int_sum(np.array([1, 2, 3])) == 6
        assert math.int_sq_sum(np.array([1, 2, 3])) == 14
        assert math.int_to_real(np.array([1, 2])).dtype == np.float32
