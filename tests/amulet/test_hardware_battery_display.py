"""Tests for the hardware, battery and display models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amulet.battery import Battery
from repro.amulet.display import Display
from repro.amulet.hardware import MSP430FR5989, AmuletHardware, Peripheral


class TestMSP430:
    def test_paper_memory_sizes(self):
        mcu = MSP430FR5989()
        assert mcu.sram_bytes == 2 * 1024
        assert mcu.fram_bytes == 128 * 1024

    def test_cycles_to_seconds(self):
        mcu = MSP430FR5989(clock_hz=8e6)
        assert mcu.cycles_to_seconds(8_000_000) == pytest.approx(1.0)

    def test_active_charge(self):
        mcu = MSP430FR5989(clock_hz=8e6, active_current_ma=0.9)
        # One hour of continuous execution.
        assert mcu.active_charge_mah(int(3600 * 8e6)) == pytest.approx(0.9)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            MSP430FR5989().cycles_to_seconds(-1)


class TestAmuletHardware:
    def test_battery_capacity_matches_paper(self):
        assert AmuletHardware().battery_capacity_mah == 110.0

    def test_baseline_current_is_static_sum(self):
        hw = AmuletHardware()
        expected = hw.mcu.sleep_current_ma + sum(
            p.static_current_ma for p in hw.peripherals.values()
        )
        assert hw.baseline_current_ma == pytest.approx(expected)

    def test_peripheral_lookup(self):
        hw = AmuletHardware()
        assert hw.peripheral("display").name == "display"
        with pytest.raises(KeyError, match="unknown peripheral"):
            hw.peripheral("laser")

    def test_peripheral_validation(self):
        with pytest.raises(ValueError):
            Peripheral("x", static_current_ma=-1.0)


class TestBattery:
    def test_lifetime_inverse_to_current(self):
        battery = Battery(capacity_mah=110.0, self_discharge_per_month=0.0)
        assert battery.lifetime_hours(1.0) == pytest.approx(99.0)
        assert battery.lifetime_hours(0.5) == pytest.approx(198.0)

    def test_self_discharge_bounds_zero_load(self):
        battery = Battery()
        assert battery.lifetime_days(0.0) < 2000  # not infinite

    def test_infinite_without_any_drain(self):
        battery = Battery(self_discharge_per_month=0.0)
        assert battery.lifetime_hours(0.0) == float("inf")

    def test_state_of_charge(self):
        battery = Battery(capacity_mah=100.0, usable_fraction=1.0,
                          self_discharge_per_month=0.0)
        assert battery.state_of_charge_after(1.0, 50.0) == pytest.approx(0.5)
        assert battery.state_of_charge_after(1.0, 200.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Battery(capacity_mah=0.0)
        with pytest.raises(ValueError):
            Battery(usable_fraction=1.5)
        with pytest.raises(ValueError):
            Battery().lifetime_hours(-1.0)
        with pytest.raises(ValueError):
            Battery().state_of_charge_after(1.0, -1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        current=st.floats(0.001, 10.0),
        extra=st.floats(0.001, 10.0),
    )
    def test_property_monotonic(self, current, extra):
        battery = Battery()
        assert battery.lifetime_hours(current) > battery.lifetime_hours(
            current + extra
        )


class TestDisplay:
    def test_write_and_read(self):
        display = Display()
        display.write_line(0, "hello world this line is longer than width")
        assert display.lines[0] == "hello world this line is"[: display.line_width]
        assert display.refresh_count == 1

    def test_scroll(self):
        display = Display(n_lines=3)
        for text in ("a", "b", "c", "d"):
            display.scroll_message(text)
        assert display.lines == ["b", "c", "d"]

    def test_contains(self):
        display = Display()
        display.scroll_message("! ECG ALTERED")
        assert display.contains("ALTERED")
        assert not display.contains("OK")

    def test_clear(self):
        display = Display()
        display.write_line(1, "x")
        display.clear()
        assert display.visible_text().strip() == ""

    def test_bounds(self):
        display = Display(n_lines=2)
        with pytest.raises(IndexError):
            display.write_line(2, "x")

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            Display(n_lines=0)
