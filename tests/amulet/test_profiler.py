"""Tests for the Amulet Resource Profiler."""

import pytest

from repro.amulet.battery import Battery
from repro.amulet.profiler import AmuletResourceProfiler
from repro.core.versions import DetectorVersion
from repro.sift_app.harness import AmuletSIFTRunner


@pytest.fixture(scope="module")
def profiled_runner(trained_detectors, labeled_stream):
    runner = AmuletSIFTRunner(trained_detectors[DetectorVersion.SIMPLIFIED])
    runner.run_stream(labeled_stream)
    return runner


@pytest.fixture(scope="module")
def profile(profiled_runner):
    return profiled_runner.profile(period_s=3.0)


class TestResourceProfile:
    def test_breakdown_sums_to_average(self, profile):
        assert sum(profile.current_breakdown.values()) == pytest.approx(
            profile.average_current_ma
        )

    def test_memory_matches_image(self, profiled_runner, profile):
        image = profiled_runner.image
        assert profile.system_fram_bytes == image.system_fram_bytes
        assert profile.app_fram_bytes == image.build_for(
            profiled_runner.app.name
        ).fram_bytes

    def test_lifetime_consistent_with_battery(self, profile):
        expected = Battery().lifetime_days(profile.average_current_ma)
        assert profile.lifetime_days == pytest.approx(expected)

    def test_static_floor_present(self, profile):
        assert profile.current_breakdown["static.mcu_sleep"] > 0
        assert profile.current_breakdown["static.sensors"] > 0

    def test_cpu_components_labelled(self, profile):
        cpu_labels = [k for k in profile.current_breakdown if k.startswith("cpu.")]
        assert "cpu.float_div" in cpu_labels
        # The no-libm build must not bill any libm operations.
        assert not any("libm" in label for label in cpu_labels)

    def test_table_row_formatting(self, profile):
        row = profile.table_row()
        assert "KB_system" in row["Memory Use (FRAM)"]
        assert row["Expected Lifetime"].endswith("days")

    def test_with_period_slider(self, profile):
        slower = profile.with_period(6.0)
        assert slower.lifetime_days > profile.lifetime_days
        faster = profile.with_period(1.5)
        assert faster.lifetime_days < profile.lifetime_days
        # Static draws do not scale with the period.
        assert slower.current_breakdown["static.sensors"] == pytest.approx(
            profile.current_breakdown["static.sensors"]
        )
        # Compute scales inversely with the period.
        assert slower.current_breakdown["cpu.float_div"] == pytest.approx(
            profile.current_breakdown["cpu.float_div"] / 2.0
        )

    def test_with_period_validation(self, profile):
        with pytest.raises(ValueError):
            profile.with_period(0.0)

    def test_profile_requires_events(self, profiled_runner):
        profiler = AmuletResourceProfiler()
        with pytest.raises(ValueError):
            profiler.profile(
                profiled_runner.image,
                profiled_runner.app.name,
                profiled_runner.os.ledger,
                n_events=0,
                period_s=3.0,
            )

    def test_runner_requires_run_before_profile(self, trained_detectors):
        runner = AmuletSIFTRunner(trained_detectors[DetectorVersion.REDUCED])
        with pytest.raises(RuntimeError, match="run at least one"):
            runner.profile()


class TestVersionEnergyOrdering:
    """Table III's energy story, from measured cycles."""

    @pytest.fixture(scope="class")
    def profiles(self, trained_detectors, labeled_stream):
        out = {}
        for version, detector in trained_detectors.items():
            runner = AmuletSIFTRunner(detector)
            runner.run_stream(labeled_stream)
            out[version] = runner.profile(period_s=3.0)
        return out

    def test_lifetime_ordering(self, profiles):
        assert (
            profiles[DetectorVersion.REDUCED].lifetime_days
            > profiles[DetectorVersion.SIMPLIFIED].lifetime_days
            > profiles[DetectorVersion.ORIGINAL].lifetime_days
        )

    def test_reduced_lasts_about_twice_original(self, profiles):
        ratio = (
            profiles[DetectorVersion.REDUCED].lifetime_days
            / profiles[DetectorVersion.ORIGINAL].lifetime_days
        )
        assert 1.8 <= ratio <= 3.0  # paper: 55 / 23 = 2.4

    def test_cycle_ordering(self, profiles):
        assert (
            profiles[DetectorVersion.ORIGINAL].cycles_per_event
            > profiles[DetectorVersion.SIMPLIFIED].cycles_per_event
            > profiles[DetectorVersion.REDUCED].cycles_per_event
        )

    def test_reduced_skips_the_array_passes(self, profiles):
        """The Reduced build's compute is at least 10x cheaper."""
        assert (
            profiles[DetectorVersion.REDUCED].cycles_per_event
            < profiles[DetectorVersion.SIMPLIFIED].cycles_per_event / 10
        )
