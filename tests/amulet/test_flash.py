"""Tests for the firmware flash manager."""

import pytest

from repro.amulet.firmware import FirmwareToolchain
from repro.amulet.flash import FlashManager
from repro.core.versions import DetectorVersion
from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.harness import deploy_model


@pytest.fixture(scope="module")
def staged(trained_detectors):
    manager = FlashManager()
    toolchain = FirmwareToolchain()
    for version, detector in trained_detectors.items():
        app = SIFTDetectorApp(version, deploy_model(detector))
        manager.stage(version.value, toolchain.build([app]))
    return manager


class TestFlashManager:
    def test_flash_cost_scales_with_image(self, staged):
        original = staged.flash_cost("original")
        reduced = staged.flash_cost("reduced")
        assert original[0] > reduced[0]  # duration
        assert original[1] > reduced[1]  # charge

    def test_flash_installs_and_records(self, trained_detectors):
        manager = FlashManager()
        toolchain = FirmwareToolchain()
        for version, detector in trained_detectors.items():
            app = SIFTDetectorApp(version, deploy_model(detector))
            manager.stage(version.value, toolchain.build([app]))
        op = manager.flash("simplified", at_time_h=1.0)
        assert manager.installed == "simplified"
        assert op.duration_s > 1.0  # ~70 KB at 4 KB/s
        assert op.charge_mah > 0
        manager.flash("reduced", at_time_h=2.0)
        assert len(manager.history) == 2
        assert manager.total_flash_charge_mah == pytest.approx(
            sum(o.charge_mah for o in manager.history)
        )
        assert manager.total_downtime_s > 0

    def test_reflash_same_image_rejected(self, trained_detectors):
        manager = FlashManager()
        toolchain = FirmwareToolchain()
        detector = trained_detectors[DetectorVersion.REDUCED]
        app = SIFTDetectorApp(DetectorVersion.REDUCED, deploy_model(detector))
        manager.stage("reduced", toolchain.build([app]))
        manager.flash("reduced")
        with pytest.raises(ValueError, match="already installed"):
            manager.flash("reduced")

    def test_unknown_image(self, staged):
        with pytest.raises(KeyError, match="no staged image"):
            staged.flash_cost("ghost")

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashManager(write_bytes_per_s=0)
        with pytest.raises(ValueError):
            FlashManager(flash_current_ma=-1)
        with pytest.raises(ValueError):
            FlashManager().stage("", None)

    def test_switch_cost_is_small_vs_lifetime_budget(self, staged):
        """Sanity: a handful of switches costs well under 1% of the cell,
        so adaptive switching is energetically worthwhile."""
        _, charge = staged.flash_cost("original")
        assert 5 * charge < 0.01 * 110.0
