"""Tests for on-device peak detection."""

import numpy as np
import pytest

from repro.amulet.amulet_os import AmuletOS
from repro.amulet.firmware import FirmwareToolchain
from repro.amulet.restricted import OpCounter, RestrictedMath
from repro.core.versions import DetectorVersion
from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.device_peaks import (
    device_detect_r_peaks,
    device_detect_systolic_peaks,
    with_live_peaks,
)
from repro.sift_app.harness import deploy_model
from repro.sift_app.payload import DeviceWindow


def _math():
    return RestrictedMath(counter=OpCounter(), allow_libm=False)


@pytest.fixture(scope="module")
def device_windows(labeled_stream):
    return [DeviceWindow.from_signal_window(w) for w in labeled_stream.windows]


class TestDeviceRPeaks:
    def test_recalls_prestored_truth(self, device_windows):
        """The device detector finds the true beats; under motion
        artifacts it may add spurious ones (a fidelity trade-off the
        detector's anomalous-feature path absorbs), so the check is
        recall-first with a bounded detection count."""
        total_true, total_found, recalled = 0, 0, 0
        for window in device_windows:
            detected = device_detect_r_peaks(_math(), window.ecg, window.sample_rate)
            total_true += window.r_peaks.size
            total_found += detected.size
            if window.r_peaks.size and detected.size:
                errors = np.abs(
                    window.r_peaks[:, None] - detected[None, :]
                ).min(axis=1)
                recalled += int(np.sum(errors <= 5))
        assert recalled >= 0.8 * total_true
        assert total_found <= 2.0 * total_true

    def test_no_libm_used(self, device_windows):
        math = _math()
        device_detect_r_peaks(math, device_windows[0].ecg, 360.0)
        assert not any("libm" in op for op in math.counter.counts)
        assert math.counter.total() > 0

    def test_flat_signal(self):
        assert device_detect_r_peaks(_math(), np.zeros(1080, np.float32), 360.0).size == 0

    def test_short_signal(self):
        assert device_detect_r_peaks(_math(), np.ones(4, np.float32), 360.0).size == 0

    def test_refractory_enforced(self, device_windows):
        detected = device_detect_r_peaks(
            _math(), device_windows[0].ecg, 360.0, refractory_s=0.25
        )
        if detected.size >= 2:
            assert np.min(np.diff(detected)) >= int(0.25 * 360) - 2 * int(0.06 * 360)

    def test_validation(self):
        with pytest.raises(ValueError):
            device_detect_r_peaks(_math(), np.zeros(100, np.float32), 0.0)


class TestDeviceSystolicPeaks:
    def test_close_to_prestored_truth(self, device_windows):
        matched = 0
        total = 0
        for window in device_windows:
            detected = device_detect_systolic_peaks(
                _math(), window.abp, window.sample_rate
            )
            total += window.systolic_peaks.size
            if window.systolic_peaks.size and detected.size:
                errors = np.abs(
                    detected[:, None] - window.systolic_peaks[None, :]
                ).min(axis=1)
                matched += int(np.sum(errors <= 8))
        assert matched >= 0.8 * total

    def test_flat_signal(self):
        flat = np.full(1080, 80.0, dtype=np.float32)
        assert device_detect_systolic_peaks(_math(), flat, 360.0).size == 0


class TestLivePeaksInApp:
    def test_live_mode_matches_prestored_mode_verdicts(
        self, trained_detectors, labeled_stream
    ):
        """The end-to-end check of the paper's 'simple extension': verdicts
        with live detection agree with pre-stored-index verdicts on most
        windows."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        verdicts = {}
        for live in (False, True):
            app = SIFTDetectorApp(
                DetectorVersion.SIMPLIFIED,
                deploy_model(detector),
                live_peak_detection=live,
            )
            os = AmuletOS(FirmwareToolchain().build([app]))
            for window in labeled_stream.windows:
                os.deliver_sensor_window(
                    app.name, DeviceWindow.from_signal_window(window)
                )
            os.run_until_idle()
            verdicts[live] = np.array(app.predictions)
        agreement = np.mean(verdicts[False] == verdicts[True])
        assert agreement >= 0.8

    def test_live_mode_costs_more_cycles(self, trained_detectors, labeled_stream):
        from repro.amulet.restricted import CycleCostModel

        detector = trained_detectors[DetectorVersion.REDUCED]
        cycles = {}
        for live in (False, True):
            app = SIFTDetectorApp(
                DetectorVersion.REDUCED,
                deploy_model(detector),
                live_peak_detection=live,
            )
            os = AmuletOS(FirmwareToolchain().build([app]))
            os.deliver_sensor_window(
                app.name,
                DeviceWindow.from_signal_window(labeled_stream.windows[0]),
            )
            os.run_until_idle()
            cycles[live] = os.ledger.cycles_by_app[app.name]
        assert cycles[True] > cycles[False]

    def test_live_mode_grows_the_firmware(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.REDUCED]
        stored = SIFTDetectorApp(DetectorVersion.REDUCED, deploy_model(detector))
        live = SIFTDetectorApp(
            DetectorVersion.REDUCED,
            deploy_model(detector),
            live_peak_detection=True,
        )
        assert live.code_bytes > stored.code_bytes

    def test_with_live_peaks_replaces_indexes(self, device_windows):
        rederived = with_live_peaks(_math(), device_windows[0])
        assert rederived.n_samples == device_windows[0].n_samples
        assert rederived.r_peaks.size > 0
        assert rederived.systolic_peaks.size > 0
