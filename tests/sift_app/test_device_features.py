"""Tests for device-side feature extraction: parity with the reference."""

import numpy as np
import pytest

from repro.amulet.restricted import (
    OpCounter,
    RestrictedEnvironmentError,
    RestrictedMath,
)
from repro.core.versions import DetectorVersion, make_extractor
from repro.sift_app.device_features import (
    device_extract_features,
    device_extract_original,
    device_extract_reduced,
    device_extract_simplified,
)
from repro.sift_app.payload import DeviceWindow


def _math(libm=False):
    return RestrictedMath(counter=OpCounter(), allow_libm=libm)


@pytest.fixture(scope="module")
def device_windows(labeled_stream):
    return [
        DeviceWindow.from_signal_window(w) for w in labeled_stream.windows[:8]
    ]


class TestReferenceParity:
    """The device pipeline must track the float64 reference closely --
    the Amulet-vs-MATLAB agreement in the paper's Table II."""

    @pytest.mark.parametrize(
        "version,device_fn,libm",
        [
            (DetectorVersion.ORIGINAL, device_extract_original, True),
            (DetectorVersion.SIMPLIFIED, device_extract_simplified, False),
            (DetectorVersion.REDUCED, device_extract_reduced, False),
        ],
        ids=["original", "simplified", "reduced"],
    )
    def test_features_match_reference(
        self, version, device_fn, libm, labeled_stream, device_windows
    ):
        extractor = make_extractor(version)
        for signal_window, device_window in zip(
            labeled_stream.windows, device_windows
        ):
            reference = extractor.extract_window(signal_window)
            device = device_fn(_math(libm), device_window)
            assert device.shape == reference.shape
            # float32 arithmetic and the uint8 matrix introduce only
            # small deviations on healthy windows.
            np.testing.assert_allclose(device, reference, rtol=2e-2, atol=2e-2)

    def test_original_device_is_nearly_exact(
        self, labeled_stream, device_windows
    ):
        """The libm build computes in double: deviations are at the level
        of the float32 *input* cast only."""
        extractor = make_extractor(DetectorVersion.ORIGINAL)
        reference = extractor.extract_window(labeled_stream.windows[0])
        device = device_extract_original(_math(True), device_windows[0])
        np.testing.assert_allclose(device, reference, rtol=1e-4, atol=1e-4)


class TestLibmGate:
    def test_original_requires_libm(self, device_windows):
        with pytest.raises(RestrictedEnvironmentError):
            device_extract_original(_math(False), device_windows[0])

    def test_simplified_runs_without_libm(self, device_windows):
        features = device_extract_simplified(_math(False), device_windows[0])
        assert np.isfinite(features).all()

    def test_reduced_runs_without_libm(self, device_windows):
        features = device_extract_reduced(_math(False), device_windows[0])
        assert np.isfinite(features).all()

    def test_no_libm_ops_billed_by_simplified(self, device_windows):
        math = _math(False)
        device_extract_simplified(math, device_windows[0])
        assert not any("libm" in op for op in math.counter.counts)


class TestOperationCosts:
    def test_reduced_is_much_cheaper(self, device_windows):
        from repro.amulet.restricted import CycleCostModel

        model = CycleCostModel()
        costs = {}
        for name, fn, libm in (
            ("simplified", device_extract_simplified, False),
            ("reduced", device_extract_reduced, False),
        ):
            math = _math(libm)
            fn(math, device_windows[0])
            costs[name] = model.cycles_for(math.counter)
        assert costs["reduced"] < costs["simplified"] / 10

    def test_original_costs_more_than_simplified(self, device_windows):
        from repro.amulet.restricted import CycleCostModel

        model = CycleCostModel()
        math_o = _math(True)
        device_extract_original(math_o, device_windows[0])
        math_s = _math(False)
        device_extract_simplified(math_s, device_windows[0])
        assert model.cycles_for(math_o.counter) > model.cycles_for(
            math_s.counter
        )

    def test_dispatcher_matches_direct_call(self, device_windows):
        direct = device_extract_simplified(_math(False), device_windows[0])
        routed = device_extract_features(
            _math(False), DetectorVersion.SIMPLIFIED, device_windows[0]
        )
        assert np.array_equal(direct, routed)


class TestDegenerateWindows:
    def _window(self, ecg, abp, r=(), s=()):
        return DeviceWindow(
            ecg=np.asarray(ecg, dtype=np.float32),
            abp=np.asarray(abp, dtype=np.float32),
            r_peaks=np.asarray(r, dtype=np.intp),
            systolic_peaks=np.asarray(s, dtype=np.intp),
            sample_rate=360.0,
        )

    def test_no_peaks(self):
        window = self._window(np.sin(np.arange(1080) / 10), np.cos(np.arange(1080) / 10))
        for fn, libm in (
            (device_extract_original, True),
            (device_extract_simplified, False),
            (device_extract_reduced, False),
        ):
            features = fn(_math(libm), window)
            assert np.isfinite(features).all()

    def test_flat_signals(self):
        window = self._window(np.zeros(1080), np.full(1080, 80.0), r=[100], s=[200])
        features = device_extract_simplified(_math(False), window)
        assert np.isfinite(features).all()

    def test_unpaired_peaks(self):
        # Systolic peak BEFORE the R peak: no pair forms.
        window = self._window(
            np.sin(np.arange(1080) / 10), np.cos(np.arange(1080) / 10),
            r=[800], s=[100],
        )
        features = device_extract_reduced(_math(False), window)
        assert features[4] == 0.0  # paired distance defaults to 0


class TestDeviceWindow:
    def test_from_signal_window_casts(self, labeled_stream):
        device = DeviceWindow.from_signal_window(labeled_stream.windows[0])
        assert device.ecg.dtype == np.float32
        assert device.n_samples == labeled_stream.windows[0].n_samples

    def test_rejects_out_of_range_peaks(self):
        with pytest.raises(ValueError, match="out-of-window"):
            DeviceWindow(
                ecg=np.zeros(100, dtype=np.float32),
                abp=np.zeros(100, dtype=np.float32),
                r_peaks=np.array([150]),
                systolic_peaks=np.array([], dtype=np.intp),
                sample_rate=360.0,
            )

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            DeviceWindow(
                ecg=np.zeros(100, dtype=np.float32),
                abp=np.zeros(99, dtype=np.float32),
                r_peaks=np.array([], dtype=np.intp),
                systolic_peaks=np.array([], dtype=np.intp),
                sample_rate=360.0,
            )
