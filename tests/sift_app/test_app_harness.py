"""Tests for the SIFT QM app and the deployment harness."""

import numpy as np
import pytest

from repro.amulet.amulet_os import AmuletOS
from repro.amulet.firmware import FirmwareToolchain
from repro.core.versions import DetectorVersion
from repro.sift_app.app import SIFTDetectorApp
from repro.sift_app.harness import AmuletSIFTRunner, deploy_model
from repro.sift_app.models import (
    FixedPointDeployedModel,
    FloatLinearModel,
)
from repro.sift_app.payload import DeviceWindow


@pytest.fixture(scope="module")
def simplified_app(trained_detectors):
    detector = trained_detectors[DetectorVersion.SIMPLIFIED]
    return SIFTDetectorApp(
        DetectorVersion.SIMPLIFIED, deploy_model(detector)
    )


class TestDeployModel:
    def test_original_deploys_float(self, trained_detectors):
        model = deploy_model(trained_detectors[DetectorVersion.ORIGINAL])
        assert isinstance(model, FloatLinearModel)

    def test_others_deploy_fixed_point(self, trained_detectors):
        for version in (DetectorVersion.SIMPLIFIED, DetectorVersion.REDUCED):
            model = deploy_model(trained_detectors[version])
            assert isinstance(model, FixedPointDeployedModel)

    def test_float_model_matches_reference_decision(
        self, trained_detectors, labeled_stream
    ):
        from repro.amulet.restricted import RestrictedMath

        detector = trained_detectors[DetectorVersion.ORIGINAL]
        model = deploy_model(detector)
        math = RestrictedMath(allow_libm=True)
        for window in labeled_stream.windows[:5]:
            features = detector.extract_features(window)
            _, score = model.classify(math, features)
            assert score == pytest.approx(
                detector.decision_value(window), abs=1e-6
            )


class TestSIFTDetectorApp:
    def test_state_machine_shape(self, simplified_app):
        names = set(simplified_app.machine.states)
        assert names == {"PeaksDataCheck", "FeatureExtraction", "MLClassifier"}
        assert simplified_app.machine.initial == "PeaksDataCheck"

    def test_version_model_mismatch_rejected(self, trained_detectors):
        reduced_model = deploy_model(trained_detectors[DetectorVersion.REDUCED])
        with pytest.raises(ValueError, match="features"):
            SIFTDetectorApp(DetectorVersion.SIMPLIFIED, reduced_model)

    def test_full_cycle_on_one_window(self, trained_detectors, labeled_stream):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        app = SIFTDetectorApp(DetectorVersion.SIMPLIFIED, deploy_model(detector))
        os = AmuletOS(FirmwareToolchain().build([app]))
        window = DeviceWindow.from_signal_window(labeled_stream.windows[0])
        os.deliver_sensor_window(app.name, window)
        os.run_until_idle()
        assert app.windows_processed == 1
        assert len(app.predictions) == 1
        # Back in the initial state, ready for the next snippet.
        assert app.machine.current.name == "PeaksDataCheck"

    def test_alert_on_positive_window(self, trained_detectors, labeled_stream):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        app = SIFTDetectorApp(DetectorVersion.SIMPLIFIED, deploy_model(detector))
        os = AmuletOS(FirmwareToolchain().build([app]))
        altered = [w for w in labeled_stream.windows if w.altered]
        for window in altered:
            os.deliver_sensor_window(
                app.name, DeviceWindow.from_signal_window(window)
            )
        os.run_until_idle()
        if any(app.predictions):
            assert os.display.contains("ECG ALTERED")
            assert os.ledger.peripheral_events.get("haptic", 0) >= 1

    def test_rejects_corrupt_peak_metadata(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        app = SIFTDetectorApp(DetectorVersion.SIMPLIFIED, deploy_model(detector))
        os = AmuletOS(FirmwareToolchain().build([app]))
        bad = DeviceWindow(
            ecg=np.zeros(1080, dtype=np.float32),
            abp=np.zeros(1080, dtype=np.float32),
            r_peaks=np.array([500, 300]),  # not increasing
            systolic_peaks=np.array([], dtype=np.intp),
            sample_rate=360.0,
        )
        os.deliver_sensor_window(app.name, bad)
        os.run_until_idle()
        assert app.windows_processed == 0
        assert app.rejected_windows == 1
        assert app.machine.current.name == "PeaksDataCheck"

    def test_code_inventory_per_version(self, trained_detectors):
        apps = {
            version: SIFTDetectorApp(version, deploy_model(detector))
            for version, detector in trained_detectors.items()
        }
        original = apps[DetectorVersion.ORIGINAL].code_inventory()
        simplified = apps[DetectorVersion.SIMPLIFIED].code_inventory()
        reduced = apps[DetectorVersion.REDUCED].code_inventory()
        assert "peak_angles_atan" in original
        assert "peak_angles_atan" not in simplified
        assert "histogram" not in reduced
        # PeaksDataCheck is identical across versions (paper Sec. III).
        assert (
            original["peaks_data_check"]
            == simplified["peaks_data_check"]
            == reduced["peaks_data_check"]
        )

    def test_only_matrix_builds_declare_the_grid(self, trained_detectors):
        for version, detector in trained_detectors.items():
            app = SIFTDetectorApp(version, deploy_model(detector))
            arrays = {a.name for a in app.array_declarations()}
            assert ("occupancy_matrix" in arrays) == version.uses_matrix_features
            for declaration in app.array_declarations():
                assert declaration.dimensions == 1  # platform limit


class TestAmuletSIFTRunner:
    @pytest.mark.parametrize("version", list(DetectorVersion))
    def test_device_agrees_with_reference(
        self, version, trained_detectors, labeled_stream
    ):
        detector = trained_detectors[version]
        runner = AmuletSIFTRunner(detector)
        result = runner.run_stream(labeled_stream)
        reference = np.array(
            [detector.classify_window(w) for w in labeled_stream.windows]
        )
        agreement = np.mean(result.predictions == reference)
        assert agreement >= 0.9  # quantization may flip boundary windows

    def test_result_shape(self, trained_detectors, labeled_stream):
        runner = AmuletSIFTRunner(trained_detectors[DetectorVersion.REDUCED])
        result = runner.run_stream(labeled_stream)
        assert result.n_windows == len(labeled_stream)
        assert result.predictions.shape == (len(labeled_stream),)
        assert result.labels.shape == (len(labeled_stream),)
        assert 0.0 <= result.report.accuracy <= 1.0

    def test_consecutive_streams_accumulate(
        self, trained_detectors, labeled_stream
    ):
        runner = AmuletSIFTRunner(trained_detectors[DetectorVersion.REDUCED])
        runner.run_stream(labeled_stream)
        result2 = runner.run_stream(labeled_stream)
        assert result2.n_windows == len(labeled_stream)
        assert runner.app.windows_processed == 2 * len(labeled_stream)

    def test_soak_thousand_windows(self, trained_detectors, labeled_stream):
        """Long-deployment soak: 1000 windows through one OS instance.

        Verifies the event loop, ledger and state machine stay consistent
        over a day-scale workload (1000 windows = 50 re-runs of the
        fixture stream) and that per-window cost stays constant -- no
        hidden superlinear behaviour."""
        runner = AmuletSIFTRunner(trained_detectors[DetectorVersion.REDUCED])
        first = runner.run_stream(labeled_stream)
        cycles_first = runner.os.ledger.cycles_by_app[runner.app.name]
        for _ in range(49):
            runner.run_stream(labeled_stream)
        total = runner.os.ledger.cycles_by_app[runner.app.name]
        n = 50 * len(labeled_stream)
        assert runner.app.windows_processed == n
        assert runner.os.ledger.dispatches == n
        assert runner.os.pending_events == 0
        # Per-window cost is stable (identical streams, identical work).
        assert total == pytest.approx(50 * cycles_first, rel=1e-6)
        assert runner.app.machine.current.name == "PeaksDataCheck"
        # Verdicts for identical inputs are identical across the soak.
        assert runner.app.predictions[: len(labeled_stream)] == (
            runner.app.predictions[-len(labeled_stream):]
        )
