"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro.attacks import AttackScenario, ReplacementAttack, ReplayAttack
from repro.core import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.sift_app import AmuletSIFTRunner


class TestEndToEnd:
    def test_device_and_reference_agree_on_most_windows(
        self, trained_detectors, labeled_stream
    ):
        """The paper's central deployment claim: the constrained
        implementation performs comparably to the gold standard."""
        for version, detector in trained_detectors.items():
            reference = detector.evaluate(labeled_stream)
            device = AmuletSIFTRunner(detector).run_stream(labeled_stream).report
            assert abs(device.accuracy - reference.accuracy) <= 0.15, version

    def test_detector_generalizes_to_fresh_attack_stream(
        self, trained_detectors, dataset, victim
    ):
        """Different unseen data, different donors, different seed."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        others = [s for s in dataset.subjects if s is not victim]
        record = dataset.record(victim, 60.0, purpose="extra")
        donors = [dataset.record(others[-1], 60.0, purpose="extra")]
        stream = AttackScenario(ReplacementAttack(donors)).build(
            record, np.random.default_rng(777)
        )
        assert detector.evaluate(stream).accuracy > 0.7

    def test_sift_checks_consistency_not_identity(
        self, dataset, trained_detectors
    ):
        """SIFT flags ECG that is inconsistent with the tandem ABP -- not
        ECG that merely belongs to someone else.  A stranger's *own*
        synchronized windows are internally consistent, so the victim's
        model mostly passes them; it is the cross-pairing of the victim's
        ABP with foreign ECG that gets flagged (previous test)."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        stranger = dataset.subjects[3]
        record = dataset.record(stranger, 60.0, purpose="extra")
        windows = [
            record.window(i * 1080, 1080) for i in range(record.n_samples // 1080)
        ]
        flagged = sum(detector.classify_window(w) for w in windows)
        assert flagged / len(windows) < 0.5

    def test_replay_attack_detectable_above_chance(
        self, trained_detectors, dataset, victim
    ):
        detector = trained_detectors[DetectorVersion.ORIGINAL]
        record = dataset.record(victim, 60.0, purpose="extra")
        captured = dataset.record(victim, 60.0, purpose="train")
        stream = AttackScenario(ReplayAttack(captured)).build(
            record, np.random.default_rng(5)
        )
        report = detector.evaluate(stream)
        assert report.accuracy > 0.6

    def test_retraining_is_deterministic(self, train_record, train_donors, labeled_stream):
        a = SIFTDetector(version="reduced").fit(train_record, train_donors)
        b = SIFTDetector(version="reduced").fit(train_record, train_donors)
        va = [a.decision_value(w) for w in labeled_stream.windows[:5]]
        vb = [b.decision_value(w) for w in labeled_stream.windows[:5]]
        assert va == pytest.approx(vb)

    def test_generated_c_code_is_faithful(self, trained_detectors, labeled_stream):
        """Execute the generated C decision function (translated back to
        Python semantics) and compare with the model object."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        model = detector.deploy(frac_bits=14)
        source = model.to_c_source()

        # Parse the weight table back out of the C source.
        import re

        weights = [
            int(x)
            for x in re.search(r"\{ (.*) \}", source).group(1).split(", ")
        ]
        bias = int(re.search(r"sift_bias = (-?\d+);", source).group(1))
        assert weights == model.weights_q.tolist()
        assert bias == model.bias_q

        for window in labeled_stream.windows[:10]:
            features_q = model.quantize(detector.extract_features(window))
            acc = bias
            for w, f in zip(weights, features_q.tolist()):
                acc += (w * f) >> 14
            assert (acc >= 0) == model.predict_bool_fixed(features_q)
