"""Tests for the crash-isolated scoring backend.

The supervision layer's load-bearing promises: (1) with zero injected
faults the supervised backend's decision values are *bit-identical* to
in-process scoring; (2) every fault kind (crash, stall, timeout,
poison) is detected by its own signal, retried with a child restart,
and -- when retries run out -- absorbed by the degraded backend or
surfaced as :class:`ScoringUnavailable`; (3) the circuit breaker's
closed -> open -> half-open ladder is deterministic (cooldown counted
in batches, not seconds).
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.versions import DetectorVersion
from repro.faults.runtime import RuntimeFaultPlan
from repro.gateway import (
    InProcessBackend,
    ScoringUnavailable,
    SupervisedScoringBackend,
    window_from_slot,
)
from repro.wiot.channel import DeliveredPacket
from repro.wiot.sensor import BodySensor

# Chaos-speed knobs: ms-scale watchdog so fault tests finish fast.
FAST = dict(
    heartbeat_interval_s=0.01,
    heartbeat_timeout_s=0.15,
    batch_timeout_s=5.0,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
)


def _windows(record):
    """The record's device-format windows, assembled like the gateway's."""
    out = []
    ecg = BodySensor("s-ecg", "ecg", record)
    abp = BodySensor("s-abp", "abp", record)
    for e, a in zip(ecg.packets(), abp.packets()):
        slot = {
            "ecg": DeliveredPacket(packet=e, arrival_time_s=e.start_time_s),
            "abp": DeliveredPacket(packet=a, arrival_time_s=a.start_time_s),
        }
        out.append(window_from_slot(slot))
    return out


@pytest.fixture
def detector(trained_detectors):
    return trained_detectors[DetectorVersion.SIMPLIFIED]


@pytest.fixture
def keyed(detector):
    return {detector.version.value: detector}


class TestBitIdentity:
    def test_zero_faults_matches_in_process_bitwise(
        self, keyed, detector, test_record
    ):
        windows = _windows(test_record)
        key = detector.version.value
        reference = InProcessBackend(keyed).score(key, windows)

        backend = SupervisedScoringBackend(keyed, **FAST)
        backend.start()
        try:
            # Mixed batch sizes: isolation must not perturb values.
            got = np.concatenate(
                [
                    backend.score(key, windows[:7]),
                    backend.score(key, windows[7:12]),
                    backend.score(key, windows[12:]),
                ]
            )
        finally:
            backend.close()
        assert got.dtype == reference.dtype == np.float64
        assert got.tobytes() == reference.tobytes()
        stats = backend.stats()
        assert stats.faults == 0
        assert stats.scored_isolated == len(windows)
        assert stats.batches_degraded == 0

    def test_sigkilled_child_restarts_and_stream_stays_bit_identical(
        self, keyed, detector, test_record
    ):
        """An *external* SIGKILL (OOM killer stand-in) mid-stream: the
        next batch detects the crash, restarts, and the full value
        stream is still bitwise equal to in-process scoring."""
        windows = _windows(test_record)
        key = detector.version.value
        reference = InProcessBackend(keyed).score(key, windows)

        backend = SupervisedScoringBackend(keyed, **FAST)
        backend.start()
        try:
            first = backend.score(key, windows[:8])
            pid = backend.child_pid
            assert pid is not None
            os.kill(pid, signal.SIGKILL)
            # Let the kill land before the next request probes liveness.
            deadline = time.perf_counter() + 5.0
            while backend._process.is_alive():
                if time.perf_counter() > deadline:
                    pytest.fail("SIGKILLed child never died")
                time.sleep(0.01)
            second = backend.score(key, windows[8:])
        finally:
            backend.close()
        got = np.concatenate([first, second])
        assert got.tobytes() == reference.tobytes()
        stats = backend.stats()
        assert stats.crashes >= 1
        assert stats.restarts >= 1
        assert stats.batches_degraded == 0  # retry recovered it in isolation


class TestFaultLadder:
    def test_crash_is_retried_transparently(self, keyed, detector, test_record):
        windows = _windows(test_record)[:6]
        key = detector.version.value
        plan = RuntimeFaultPlan(crash=frozenset({1}))
        backend = SupervisedScoringBackend(keyed, fault_plan=plan, **FAST)
        backend.start()
        try:
            values = backend.score(key, windows)
        finally:
            backend.close()
        reference = InProcessBackend(keyed).score(key, windows)
        assert values.tobytes() == reference.tobytes()
        stats = backend.stats()
        assert stats.crashes == 1
        assert stats.retries == 1
        assert stats.restarts == 1
        assert stats.recoveries == 1
        assert stats.mean_recovery_s > 0.0

    def test_stall_detected_by_heartbeat_not_deadline(
        self, keyed, detector, test_record
    ):
        windows = _windows(test_record)[:4]
        key = detector.version.value
        plan = RuntimeFaultPlan(stall=frozenset({1}))
        # Batch deadline is far away: only the missing heartbeat can
        # unblock this batch quickly.
        backend = SupervisedScoringBackend(
            keyed, fault_plan=plan, **{**FAST, "batch_timeout_s": 60.0}
        )
        backend.start()
        started = time.perf_counter()
        try:
            values = backend.score(key, windows)
        finally:
            backend.close()
        elapsed = time.perf_counter() - started
        assert elapsed < 10.0  # nowhere near the 60 s deadline
        stats = backend.stats()
        assert stats.stalls == 1
        assert stats.timeouts == 0
        reference = InProcessBackend(keyed).score(key, windows)
        assert values.tobytes() == reference.tobytes()

    def test_slow_batch_hits_the_deadline(self, keyed, detector, test_record):
        windows = _windows(test_record)[:4]
        key = detector.version.value
        plan = RuntimeFaultPlan(slow={1: 5.0})
        backend = SupervisedScoringBackend(
            keyed, fault_plan=plan, **{**FAST, "batch_timeout_s": 0.4}
        )
        backend.start()
        try:
            values = backend.score(key, windows)
        finally:
            backend.close()
        stats = backend.stats()
        assert stats.timeouts == 1
        assert stats.stalls == 0  # it kept beating, it was just slow
        reference = InProcessBackend(keyed).score(key, windows)
        assert values.tobytes() == reference.tobytes()

    def test_exhausted_retries_fall_to_degraded_bit_identically(
        self, keyed, detector, test_record
    ):
        windows = _windows(test_record)[:5]
        key = detector.version.value
        # Every attempt poisoned: ordinals 1..3 cover the initial try
        # plus both retries.
        plan = RuntimeFaultPlan(poison=frozenset({1, 2, 3}))
        backend = SupervisedScoringBackend(
            keyed, fault_plan=plan, max_retries=2, **FAST
        )
        backend.start()
        try:
            values = backend.score(key, windows)
        finally:
            backend.close()
        reference = InProcessBackend(keyed).score(key, windows)
        assert values.tobytes() == reference.tobytes()
        stats = backend.stats()
        assert stats.poisons == 3
        assert stats.retries == 2
        assert stats.batches_degraded == 1
        assert stats.windows_degraded == len(windows)

    def test_no_degraded_backend_raises_scoring_unavailable(
        self, keyed, detector, test_record
    ):
        windows = _windows(test_record)[:5]
        key = detector.version.value
        plan = RuntimeFaultPlan(poison=frozenset(range(1, 10)))
        backend = SupervisedScoringBackend(
            keyed, degraded=None, fault_plan=plan, max_retries=1, **FAST
        )
        backend.start()
        try:
            with pytest.raises(ScoringUnavailable):
                backend.score(key, windows)
        finally:
            backend.close()
        stats = backend.stats()
        assert stats.batches_unscorable == 1
        assert stats.windows_unscorable == len(windows)


class TestCircuitBreaker:
    def test_trip_cooldown_probe_and_close(self, keyed, detector, test_record):
        """The full ladder: failure trips the breaker, the cooldown
        routes batches to degraded without touching the child, a failed
        half-open probe re-trips, a clean probe closes."""
        windows = _windows(test_record)[:3]
        key = detector.version.value
        # Ordinals 1 and 2 are the only poisoned requests: batch 1 fails
        # (trip), the probe fails (re-trip), the second probe is clean.
        plan = RuntimeFaultPlan(poison=frozenset({1, 2}))
        backend = SupervisedScoringBackend(
            keyed,
            fault_plan=plan,
            max_retries=0,
            breaker_threshold=1,
            breaker_cooldown_batches=1,
            **FAST,
        )
        backend.start()
        try:
            backend.score(key, windows)  # ordinal 1: poison -> trip
            assert backend.stats().breaker_state == "open"
            assert backend.stats().breaker_trips == 1

            backend.score(key, windows)  # cooldown: degraded, child idle
            assert backend.requests_sent == 1  # child never consulted

            backend.score(key, windows)  # probe (ordinal 2): poison -> re-trip
            assert backend.stats().breaker_trips == 2
            assert backend.stats().breaker_state == "open"

            backend.score(key, windows)  # cooldown again
            values = backend.score(key, windows)  # clean probe -> closed
            assert backend.stats().breaker_state == "closed"
        finally:
            backend.close()
        reference = InProcessBackend(keyed).score(key, windows)
        assert values.tobytes() == reference.tobytes()
        stats = backend.stats()
        # Both failed batches fall through to degraded, plus 2 cooldowns.
        assert stats.batches_degraded == 4
        assert stats.poisons == 2

    def test_consecutive_threshold_counts_batches_not_attempts(
        self, keyed, detector, test_record
    ):
        windows = _windows(test_record)[:3]
        key = detector.version.value
        # 2 poisoned batches (1 attempt each), threshold 2: the second
        # batch trips it; a single batch's retries never would.
        plan = RuntimeFaultPlan(poison=frozenset({1, 2}))
        backend = SupervisedScoringBackend(
            keyed,
            fault_plan=plan,
            max_retries=0,
            breaker_threshold=2,
            breaker_cooldown_batches=4,
            **FAST,
        )
        backend.start()
        try:
            backend.score(key, windows)
            assert backend.stats().breaker_state == "closed"
            backend.score(key, windows)
            assert backend.stats().breaker_state == "open"
        finally:
            backend.close()
        assert backend.stats().breaker_trips == 1


class TestShutdownRace:
    def test_spawn_after_close_does_not_leak_a_child(self, keyed):
        """A worker-thread restart racing ``close()`` must not respawn.

        The scoring thread calls ``_spawn`` after a fault; if ``close``
        (or ``abort``) has already run, that respawn would leak a child
        process with nobody left to reap it.  The guard makes the late
        ``_spawn`` a no-op.
        """
        backend = SupervisedScoringBackend(keyed, **FAST)
        backend.start()
        backend.close()
        backend._spawn()  # the racing restart, after shutdown
        assert backend._process is None


class TestValidation:
    def test_rejects_bad_knobs(self, keyed):
        with pytest.raises(ValueError):
            SupervisedScoringBackend({})
        with pytest.raises(ValueError):
            SupervisedScoringBackend(keyed, heartbeat_timeout_s=0.01,
                                     heartbeat_interval_s=0.02)
        with pytest.raises(ValueError):
            SupervisedScoringBackend(keyed, batch_timeout_s=0.0)
        with pytest.raises(ValueError):
            SupervisedScoringBackend(keyed, max_retries=-1)
        with pytest.raises(ValueError):
            SupervisedScoringBackend(keyed, breaker_threshold=0)

    def test_score_before_start_refused(self, keyed, detector):
        backend = SupervisedScoringBackend(keyed)
        with pytest.raises(RuntimeError):
            backend.score(detector.version.value, [])
