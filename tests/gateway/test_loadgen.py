"""Tests for the wearer fleet simulator and the gateway-bench CLI."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.versions import DetectorVersion
from repro.gateway import (
    IngestionGateway,
    run_gateway_load,
    train_serving_detectors,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRunGatewayLoad:
    def test_small_fleet_accounting(self):
        report = run_gateway_load(
            n_wearers=6, stream_s=12.0, batch_size=8, loss_probability=0.1,
            seed=11,
        )
        stats = report.stats
        assert stats.sessions_started == 6
        assert report.leaked_sessions == 0
        assert stats.sessions_active == 0
        assert report.windows_sent == 6 * 4  # 12 s = 4 windows each
        # Conservation: every sent window got a disposition (windows
        # whose both halves the channel dropped are counted sender-side).
        assert (
            stats.verdicts
            + stats.windows_shed
            + stats.incomplete_windows
            + report.windows_vanished
            == report.windows_sent
        )
        assert stats.verdicts > 0
        # 10% packet loss must surface as incompletes, never vanish.
        assert report.packets_dropped > 0
        assert stats.incomplete_windows > 0
        assert not report.interrupted
        # perf_counter latencies are positive and ordered.
        assert 0.0 < report.p50_latency_s <= report.p99_latency_s
        assert report.windows_per_s > 0

    def test_degradation_fleet_runs(self):
        report = run_gateway_load(
            n_wearers=4, stream_s=9.0, batch_size=8, loss_probability=0.0,
            with_degradation=True, seed=5,
        )
        assert report.leaked_sessions == 0
        assert report.stats.verdicts == report.windows_sent

    def test_stop_event_interrupts_cleanly(self):
        import asyncio

        from repro.gateway import run_fleet

        data, fitted = train_serving_detectors(versions=("simplified",), seed=9)
        detector = fitted[DetectorVersion.SIMPLIFIED]
        records = [data.record(data.subjects[0], 60.0, purpose="test")]

        async def run():
            gateway = IngestionGateway(detector, batch_size=8, linger_s=0.001)
            stop = asyncio.Event()

            async def tripwire():
                await asyncio.sleep(0.01)
                stop.set()

            task = asyncio.get_running_loop().create_task(tripwire())
            report = await run_fleet(
                gateway, records, n_wearers=8, stop=stop
            )
            await task
            return report

        report = asyncio.run(run())
        assert report.interrupted
        assert report.leaked_sessions == 0
        # Whatever was sent before the stop is still fully accounted.
        stats = report.stats
        assert (
            stats.verdicts
            + stats.windows_shed
            + stats.incomplete_windows
            + report.windows_vanished
            == report.windows_sent
        )

    def test_validation(self):
        import asyncio

        from repro.gateway import run_fleet

        data, fitted = train_serving_detectors(versions=("simplified",), seed=9)
        detector = fitted[DetectorVersion.SIMPLIFIED]
        gateway = IngestionGateway(detector)
        with pytest.raises(ValueError):
            asyncio.run(run_fleet(gateway, [], n_wearers=1))


@pytest.mark.skipif(
    not hasattr(signal, "SIGINT") or os.name == "nt",
    reason="POSIX signal delivery required",
)
class TestGatewayBenchCLI:
    def test_sigint_shuts_down_cleanly(self):
        """SIGINT mid-run must drain, finalize every session, print the
        report, and exit 0 -- the CI smoke contract."""
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "gateway-bench",
                "--wearers", "16", "--stream-s", "600", "--seed", "3",
            ],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(3.0)  # let training finish and streaming start
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 0, stderr
        assert "leaked sessions    0" in stdout
        assert "verdict latency" in stdout
