"""Every gateway test runs under the event-loop stall sanitizer.

The static ASYNC rules prove no *known* blocking call is reachable from
the gateway's coroutines; this autouse fixture checks the claim
dynamically -- any test whose event loop is held past the default
threshold fails at teardown with the offending callbacks named.
"""

import pytest

from repro.analysis import LoopStallSanitizer


@pytest.fixture(autouse=True)
def loop_stall_sanitizer():
    with LoopStallSanitizer() as sanitizer:
        yield sanitizer
    sanitizer.check()
