"""Tests for gateway session snapshot/restore and the epoch store.

The contract under test: a restored session is *indistinguishable* from
one that never stopped -- same export (round-tripped through JSON, as
the store persists it), same future verdicts for the same future
windows, same duplicate rejection.  The store side: an epoch is durable
exactly when its commit line is, and any byte-level truncation falls
back to the newest surviving committed epoch without raising.
"""

import asyncio
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.versions import DetectorVersion
from repro.gateway import IngestionGateway, SessionSnapshotStore, WearerSession
from repro.gateway.snapshot import decode_delivered, encode_delivered
from repro.wiot.channel import DeliveredPacket
from repro.wiot.sensor import BodySensor


def _session(detector, wearer_id="w0"):
    return WearerSession(
        wearer_id,
        detector,
        votes_needed=2,
        vote_window=3,
        verdict_history=16,
    )


def _json_roundtrip(state):
    """Exactly what the store does to a session export (sans packets)."""
    return json.loads(json.dumps(state))


# -- property: snapshot round-trip ---------------------------------------

# One wearer's verdict history: abstains interleaved with finite scores
# (NaN is the abstain sentinel itself, so scored values are finite).
_OPS = st.lists(
    st.one_of(
        st.none(),  # abstain
        st.floats(allow_nan=False, allow_infinity=False, width=64),
    ),
    max_size=30,
)


class TestSessionRoundTrip:
    @settings(deadline=None, max_examples=60)
    @given(ops=_OPS, future=st.lists(st.floats(-4, 4), max_size=6))
    def test_restore_is_bit_identical_and_continues_identically(
        self, trained_detectors, ops, future
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        original = _session(detector)
        for sequence, op in enumerate(ops):
            if op is None:
                original.record_abstain(sequence, sequence * 3.0, 0.1, 0.0)
            else:
                original.record_score(
                    sequence, sequence * 3.0, op, detector.version, None, 0.0
                )

        exported = _json_roundtrip(original.export_state())
        restored = _session(detector)
        restored.restore_state(exported)

        # Bit-identical export, NaN abstain sentinels included (NaN
        # breaks dict equality, so compare the serialized form).
        assert json.dumps(restored.export_state()) == json.dumps(
            original.export_state()
        )

        # The two sessions are now interchangeable: identical future
        # verdicts, episode structure, and debouncer horizon.
        for offset, value in enumerate(future):
            sequence = len(ops) + offset
            a = original.record_score(
                sequence, sequence * 3.0, value, detector.version, None, 0.0
            )
            b = restored.record_score(
                sequence, sequence * 3.0, value, detector.version, None, 0.0
            )
            assert (a.altered, a.decision_value) == (b.altered, b.decision_value)
        original.finalize()
        restored.finalize()
        assert original.episodes == restored.episodes

    def test_refuses_snapshot_with_windows_in_flight(self, trained_detectors):
        session = _session(trained_detectors[DetectorVersion.SIMPLIFIED])
        session.inflight = 1
        with pytest.raises(RuntimeError, match="in flight"):
            session.export_state()

    def test_refuses_foreign_wearer_snapshot(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        exported = _session(detector, "w-a").export_state()
        with pytest.raises(ValueError, match="belongs to"):
            _session(detector, "w-b").restore_state(exported)

    def test_refuses_degradation_disagreement(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        exported = _session(detector).export_state()
        exported["degradation"] = {"anything": 1}
        with pytest.raises(ValueError, match="degradation"):
            _session(detector).restore_state(exported)


class TestPendingHalves:
    def test_pending_and_dedup_survive_the_round_trip(
        self, trained_detectors, test_record
    ):
        """A restored assembler completes the same windows and rejects
        the same duplicates as one that never stopped."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        ecg = list(BodySensor("s-ecg", "ecg", test_record).packets())[:4]
        abp = list(BodySensor("s-abp", "abp", test_record).packets())[:4]

        def deliver(packet):
            return DeliveredPacket(
                packet=packet, arrival_time_s=packet.start_time_s
            )

        original = _session(detector)
        # Sequence 0 completes; 1 and 2 are left as pending ECG halves.
        original.assemble(deliver(ecg[0]))
        original.assemble(deliver(abp[0]))
        original.assemble(deliver(ecg[1]))
        original.assemble(deliver(ecg[2]))

        exported = original.export_state()
        restored = _session(detector)
        restored.restore_state(exported)
        assert restored.assembler.n_pending == 2
        assert restored.assembler.highest_sequence == 2

        # The surviving halves complete identically in both sessions...
        for session in (original, restored):
            completed = session.assemble(deliver(abp[1]))
            assert completed is not None
            sequence, _, window = completed
            assert sequence == 1
            assert window.ecg.tobytes() == ecg[1].samples.astype("f4").tobytes()
        # ...and a replay of the resolved sequence 0 is rejected by both.
        for session in (original, restored):
            assert session.assemble(deliver(ecg[0])) is None
        assert restored.assembler.duplicate_packets == 1


class TestResumePoints:
    def test_resume_point_drops_below_pending_halves(
        self, tmp_path, trained_detectors, test_record
    ):
        """A pending window's missing half was never delivered, so the
        resume point must sit below the oldest pending sequence, not at
        the high-water mark -- a sender replaying from resume+1 would
        otherwise strand those windows until they expire incomplete."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        ecg = list(BodySensor("s-ecg", "ecg", test_record).packets())[:4]
        abp = list(BodySensor("s-abp", "abp", test_record).packets())[:4]

        def deliver(packet):
            return DeliveredPacket(
                packet=packet, arrival_time_s=packet.start_time_s
            )

        store = SessionSnapshotStore(tmp_path / "s.jsonl")

        async def _run():
            gateway = IngestionGateway(detector)
            async with gateway:
                # Window 0 completes; 1 and 3 are stranded ECG halves.
                gateway.submit("w0", deliver(ecg[0]))
                gateway.submit("w0", deliver(abp[0]))
                gateway.submit("w0", deliver(ecg[1]))
                gateway.submit("w0", deliver(ecg[3]))
                await gateway.snapshot(store)

        asyncio.run(_run())
        successor = IngestionGateway(detector)
        # highest_sequence is 3, but pending windows 1 and 3 still need
        # their ABP halves: replay must restart at sequence 1.
        assert successor.restore_sessions(store) == {"w0": 0}


class TestPacketCodec:
    def test_bit_exact_for_device_floats(self, rng):
        from repro.wiot.sensor import SensorPacket

        samples = rng.standard_normal(750).astype(np.float32)
        packet = SensorPacket(
            sensor_id="s-ecg",
            channel="ecg",
            sequence=41,
            start_time_s=123.456,
            samples=samples,
            peak_indexes=np.asarray([10, 400, 700], dtype=np.intp),
            sample_rate=250.0,
        )
        delivered = DeliveredPacket(
            packet=packet,
            arrival_time_s=123.789,
            crc32=packet.payload_crc32(),
        )
        decoded = decode_delivered(
            json.loads(json.dumps(encode_delivered(delivered)))
        )
        assert decoded.packet.samples.dtype == np.float32
        assert decoded.packet.samples.tobytes() == samples.tobytes()
        assert decoded.packet.payload_crc32() == delivered.crc32
        assert decoded.arrival_time_s == delivered.arrival_time_s
        assert np.array_equal(decoded.packet.peak_indexes, packet.peak_indexes)
        assert decoded.packet.peak_indexes.dtype == np.intp

    @pytest.mark.parametrize("dtype", [np.int32, np.int64, np.uint16])
    def test_peak_index_dtype_survives(self, rng, dtype):
        """The round trip is exact for *whatever* dtype the device used
        -- widening to int64 on decode would break bit-identity checks
        that compare ``tobytes()`` across a restart."""
        from repro.wiot.sensor import SensorPacket

        packet = SensorPacket(
            sensor_id="s-ecg",
            channel="ecg",
            sequence=0,
            start_time_s=0.0,
            samples=rng.standard_normal(750).astype(np.float32),
            peak_indexes=np.asarray([3, 99, 512], dtype=dtype),
            sample_rate=250.0,
        )
        delivered = DeliveredPacket(packet=packet, arrival_time_s=0.5)
        decoded = decode_delivered(
            json.loads(json.dumps(encode_delivered(delivered)))
        )
        assert decoded.packet.peak_indexes.dtype == dtype
        assert (
            decoded.packet.peak_indexes.tobytes()
            == packet.peak_indexes.tobytes()
        )


class TestSnapshotStore:
    def _epoch(self, detector, values):
        session = _session(detector)
        for sequence, value in enumerate(values):
            session.record_score(
                sequence, sequence * 3.0, value, detector.version, None, 0.0
            )
        return session.export_state()

    def test_newest_committed_epoch_wins(self, tmp_path, trained_detectors):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        store = SessionSnapshotStore(tmp_path / "s.jsonl")
        assert store.load() is None  # cold start
        store.write_epoch({"n": 1}, [self._epoch(detector, [0.1])])
        store.write_epoch({"n": 2}, [self._epoch(detector, [0.1, -0.5])])
        epoch, gateway_state, sessions = store.load()
        assert epoch == 2
        assert gateway_state == {"n": 2}
        assert sessions[0]["windows_scored"] == 2

    def test_every_truncation_point_recovers_a_committed_epoch(
        self, tmp_path, trained_detectors
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        path = tmp_path / "s.jsonl"
        store = SessionSnapshotStore(path)
        store.write_epoch({"n": 1}, [self._epoch(detector, [0.1])])
        boundary = path.stat().st_size  # epoch 1's commit is durable here
        store.write_epoch({"n": 2}, [self._epoch(detector, [0.1, -0.5])])
        payload = path.read_bytes()

        last_epoch = 0
        for cut in range(len(payload) + 1):
            torn = tmp_path / "torn.jsonl"
            torn.write_bytes(payload[:cut])
            loaded = SessionSnapshotStore(torn).load()
            epoch = 0 if loaded is None else loaded[0]
            # Recovery is monotone in surviving bytes and epoch 1 is
            # recoverable from exactly its commit point onward.
            assert epoch >= last_epoch
            if cut >= boundary:
                assert epoch >= 1
            # Epoch 2 needs its full commit JSON (the trailing newline
            # is dispensable -- the last line still parses without it).
            if cut < len(payload) - 1:
                assert epoch < 2
            last_epoch = epoch
        assert last_epoch == 2

        # A restored session from the torn-at-boundary file still works.
        epoch, _, sessions = SessionSnapshotStore(path).load()
        restored = _session(detector)
        restored.restore_state(sessions[0])
        assert restored.windows_scored == 2

    def test_torn_tail_then_write_then_load_recovers_the_new_epoch(
        self, tmp_path, trained_detectors
    ):
        """The crash-mid-snapshot shape: epoch 2 is begun (begin + a
        session line) but never committed.  The reopened store must not
        reuse epoch number 2 -- a reused number merges the torn and
        fresh attempts into one bucket whose session count can never
        match its commit, silently rejecting the fresh epoch."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        path = tmp_path / "s.jsonl"
        store = SessionSnapshotStore(path)
        store.write_epoch({"n": 1}, [self._epoch(detector, [0.1])])
        boundary = path.stat().st_size
        store.write_epoch({"n": 2}, [self._epoch(detector, [0.1, -0.5])])
        # Tear epoch 2 mid-write: keep its begin + session lines, drop
        # the gateway and commit tail.
        lines = path.read_bytes().splitlines(keepends=True)
        torn = b"".join(lines[:-2])
        assert len(torn) > boundary  # epoch 2 really is begun
        path.write_bytes(torn)

        reopened = SessionSnapshotStore(path)
        written = reopened.write_epoch(
            {"n": 3}, [self._epoch(detector, [0.2, 0.3, -0.1])]
        )
        assert written == 3  # torn epoch 2's number is not reused
        epoch, gateway_state, sessions = SessionSnapshotStore(path).load()
        assert (epoch, gateway_state) == (3, {"n": 3})
        assert sessions[0]["windows_scored"] == 3

    def test_second_attempt_at_same_epoch_number_wins(
        self, tmp_path, trained_detectors
    ):
        """Defense in depth for files written before epoch numbering
        advanced past torn attempts: two begin-delimited attempts at one
        number may coexist, and the committed last attempt must load."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        path = tmp_path / "s.jsonl"
        store = SessionSnapshotStore(path)
        store.write_epoch({"n": 1}, [self._epoch(detector, [0.1])])
        with path.open("a") as fh:  # torn first attempt at epoch 2
            fh.write(json.dumps({"kind": "begin", "epoch": 2}) + "\n")
            fh.write(
                json.dumps(
                    {"kind": "session", "epoch": 2, "state": {"bogus": 1}}
                )
                + "\n"
            )
        store._next_epoch = 2  # simulate the legacy reopen numbering
        store.write_epoch({"n": 2}, [self._epoch(detector, [0.1, -0.5])])
        epoch, gateway_state, sessions = SessionSnapshotStore(path).load()
        assert (epoch, gateway_state) == (2, {"n": 2})
        assert len(sessions) == 1
        assert sessions[0]["windows_scored"] == 2

    def test_garbage_lines_are_skipped_not_fatal(
        self, tmp_path, trained_detectors
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        path = tmp_path / "s.jsonl"
        store = SessionSnapshotStore(path)
        store.write_epoch({"n": 1}, [self._epoch(detector, [0.1])])
        with path.open("a") as fh:
            fh.write("{not json at all\n")
            fh.write(json.dumps({"kind": "commit", "epoch": "bogus"}) + "\n")
        epoch, gateway_state, _ = SessionSnapshotStore(path).load()
        assert (epoch, gateway_state) == (1, {"n": 1})

    def test_compact_keeps_only_the_newest_epoch(
        self, tmp_path, trained_detectors
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        path = tmp_path / "s.jsonl"
        store = SessionSnapshotStore(path)
        for n in range(1, 4):
            store.write_epoch(
                {"n": n}, [self._epoch(detector, [0.1] * n)]
            )
        before = path.stat().st_size
        assert store.compact()
        assert path.stat().st_size < before
        epoch, gateway_state, sessions = SessionSnapshotStore(path).load()
        assert (epoch, gateway_state["n"]) == (3, 3)
        assert sessions[0]["windows_scored"] == 3
        # Epoch numbering keeps climbing after compaction.
        assert SessionSnapshotStore(path).write_epoch({"n": 4}, []) == 4

    def test_nan_decision_values_round_trip(self, tmp_path, trained_detectors):
        """Abstained verdicts carry NaN; the store must not corrupt
        them (json allows NaN literals by default -- pin that)."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        session = _session(detector)
        session.record_abstain(0, 0.0, 0.05, 0.0)
        store = SessionSnapshotStore(tmp_path / "s.jsonl")
        store.write_epoch({}, [session.export_state()])
        _, _, sessions = store.load()
        value = sessions[0]["recent_verdicts"][0]["decision_value"]
        assert math.isnan(value)
