"""Tests for the async ingestion gateway.

The load-bearing property is *bit-identity*: micro-batching windows
across wearer sessions must produce, for every wearer, exactly the
verdict sequence a per-wearer sequential
:class:`~repro.core.streaming.StreamingDetector` run would have -- same
decision values (bitwise), same abstains, same episodes.  Everything
else here is the backpressure and lifecycle accounting contract.
"""

import asyncio
import dataclasses

import numpy as np
import pytest

from repro.adaptive.degradation import DegradationController
from repro.core.streaming import StreamingDetector
from repro.core.versions import DetectorVersion
from repro.gateway import IngestionGateway, window_from_slot
from repro.signals.quality import SignalQualityIndex
from repro.wiot.channel import DeliveredPacket
from repro.wiot.sensor import BodySensor


def _deliveries(record, flatline=()):
    """One wearer's in-order deliveries (ECG+ABP per sequence); sequences
    in ``flatline`` get zeroed ECG samples so the SQI gate abstains."""
    out = []
    ecg = BodySensor("s-ecg", "ecg", record)
    abp = BodySensor("s-abp", "abp", record)
    for e, a in zip(ecg.packets(), abp.packets()):
        if e.sequence in flatline:
            e = dataclasses.replace(e, samples=np.zeros_like(e.samples))
        out.append(DeliveredPacket(packet=e, arrival_time_s=e.start_time_s))
        out.append(DeliveredPacket(packet=a, arrival_time_s=a.start_time_s))
    return out


def _windows_of(deliveries):
    """The float32 windows those deliveries assemble into, in order."""
    windows = []
    for e, a in zip(deliveries[0::2], deliveries[1::2]):
        windows.append(window_from_slot({"ecg": e, "abp": a}))
    return windows


async def _drive(gateway, streams):
    """Submit every wearer's stream, round-robin, through a started
    gateway; returns the per-wearer session objects."""
    sessions = {}
    async with gateway:
        iters = {w: iter(d) for w, d in streams.items()}
        alive = set(iters)
        while alive:
            for wearer_id in sorted(alive):
                try:
                    gateway.submit(wearer_id, next(iters[wearer_id]))
                except StopIteration:
                    alive.discard(wearer_id)
                sessions.setdefault(wearer_id, gateway.session(wearer_id))
            await asyncio.sleep(0)
    return sessions


class TestBitIdentity:
    def test_cross_session_batches_match_sequential(
        self, trained_detectors, test_record, test_donor_records
    ):
        """Three wearers, interleaved, scored in shared micro-batches
        (batch_size forces mixing) == three independent sequential runs."""
        detector = trained_detectors[DetectorVersion.ORIGINAL]
        gate = SignalQualityIndex()
        records = [test_record, *test_donor_records]
        # Wearer 0 gets two flatlined windows so abstains interleave with
        # scores inside shared batches.
        streams = {
            f"w{i}": _deliveries(record, flatline=(3, 4) if i == 0 else ())
            for i, record in enumerate(records)
        }
        gateway = IngestionGateway(
            detector,
            quality_gate=gate,
            votes_needed=2,
            vote_window=3,
            batch_size=5,  # not a multiple of anything: batches straddle wearers
            linger_s=0.001,
        )
        sessions = asyncio.run(_drive(gateway, streams))
        # Micro-batching actually crossed sessions.
        assert gateway.stats().mean_batch_size > 1.0

        for wearer_id, deliveries in streams.items():
            session = sessions[wearer_id]
            reference = StreamingDetector(
                detector, votes_needed=2, vote_window=3, quality_gate=gate
            )
            expected = []
            for window in _windows_of(deliveries):
                report = gate.assess(window)
                if not report.usable:
                    expected.append(("abstain", None))
                else:
                    expected.append(("score", detector.decision_value(window)))
                reference.process_window(window)
            reference.finish()

            got = [
                ("abstain", None) if v.abstained else ("score", v.decision_value)
                for v in session.recent_verdicts
            ]
            # Bitwise-equal decision values, same abstain placement.
            assert got == expected
            # Identical episode structure and debouncer state.
            assert session.episodes == reference.episodes
            assert (
                session.debouncer.abstained_indexes
                == reference.abstained_indexes
            )

    def test_degraded_tiers_match_sequential(
        self, trained_detectors, dataset, victim
    ):
        """Per-session tier controllers: a noisy wearer steps down to the
        fallback tier exactly where its own sequential run would."""
        primary = trained_detectors[DetectorVersion.ORIGINAL]
        fallbacks = {
            v: d for v, d in trained_detectors.items() if v is not primary.version
        }
        gate = SignalQualityIndex()
        record = dataset.record(victim, 90.0, purpose="extra")
        # A run of flatlined windows long enough to trip the controller.
        streams = {
            "noisy": _deliveries(record, flatline=(2, 3, 4, 5, 6)),
            "clean": _deliveries(record),
        }
        template = DegradationController(degrade_after=2, recover_after=30)
        gateway = IngestionGateway(
            primary,
            quality_gate=gate,
            fallbacks=fallbacks,
            degradation=template,
            batch_size=4,
            linger_s=0.001,
        )
        sessions = asyncio.run(_drive(gateway, streams))

        for wearer_id, deliveries in streams.items():
            session = sessions[wearer_id]
            reference = StreamingDetector(
                primary,
                quality_gate=gate,
                fallbacks=fallbacks,
                degradation=template.clone(),
            )
            for window in _windows_of(deliveries):
                reference.process_window(window)
            got = [
                v.decision_value
                for v in session.recent_verdicts
                if not v.abstained
            ]
            # Recompute the reference values sequentially with a second
            # independent controller to pin the tier schedule.
            control = template.clone()
            expected = []
            for window in _windows_of(deliveries):
                report = gate.assess(window)
                control.observe(report)
                if not report.usable:
                    continue
                version = control.active
                active = primary if version is primary.version else fallbacks[version]
                expected.append(active.decision_value(window))
            assert got == expected
            assert session.episodes == reference.episodes
        # The noisy wearer actually switched tiers; the clean one never did.
        assert sessions["noisy"].degradation.switches
        assert not sessions["clean"].degradation.switches


class TestBackpressure:
    def test_per_session_inflight_cap_sheds_only_the_slow_wearer(
        self, trained_detectors, test_record
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        deliveries = _deliveries(test_record)  # 20 windows

        async def run():
            gateway = IngestionGateway(
                detector,
                batch_size=64,
                linger_s=0.0,
                queue_windows=1024,
                max_inflight_per_session=3,
            )
            async with gateway:
                shed = 0
                # Submit every window with no yield: the batcher cannot
                # drain, so the 4th assembled window onward must shed.
                for delivered in deliveries:
                    if not gateway.submit("slow", delivered):
                        shed += 1
                session = gateway.session("slow")
                assert session.inflight == 3
                assert shed == 17
                assert session.windows_shed == 17
                assert gateway.windows_shed_session == 17
                assert gateway.windows_shed_queue == 0
                return gateway, session

        gateway, session = asyncio.run(run())
        # Shutdown scored the 3 queued windows; accounting conserves.
        stats = gateway.stats()
        assert stats.windows_scored == 3
        assert stats.windows_assembled == 20
        assert (
            stats.verdicts + stats.windows_shed == stats.windows_assembled
        )
        assert session.closed

    def test_full_queue_sheds_with_global_accounting(
        self, trained_detectors, test_record
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        deliveries = _deliveries(test_record)

        async def run():
            gateway = IngestionGateway(
                detector,
                batch_size=64,
                linger_s=0.0,
                queue_windows=2,
                max_inflight_per_session=100,
            )
            async with gateway:
                results = [
                    gateway.submit("w", delivered) for delivered in deliveries
                ]
                # 20 assembled windows into a 2-slot queue: 18 shed.
                assert results.count(False) == 18
                assert gateway.windows_shed_queue == 18
                assert gateway.windows_shed_session == 0
                return gateway

        gateway = asyncio.run(run())
        stats = gateway.stats()
        assert stats.windows_scored == 2
        assert stats.verdicts + stats.windows_shed == stats.windows_assembled

    def test_shed_windows_never_reach_the_debouncer(
        self, trained_detectors, test_record
    ):
        """A shed window is a loss, not a verdict: the debouncer's clock
        only advances for scored/abstained windows."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        deliveries = _deliveries(test_record)

        async def run():
            gateway = IngestionGateway(
                detector, batch_size=8, linger_s=0.0, max_inflight_per_session=5
            )
            async with gateway:
                for delivered in deliveries:
                    gateway.submit("w", delivered)
                session = gateway.session("w")
                return gateway, session

        _, session = asyncio.run(run())
        assert session.windows_shed > 0
        assert (
            session.debouncer.state.window_index
            == session.windows_scored + session.windows_abstained
        )


class TestLifecycle:
    def test_shutdown_leaves_zero_sessions(self, trained_detectors, test_record):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        streams = {
            f"w{i}": _deliveries(test_record) for i in range(3)
        }
        gateway = IngestionGateway(detector, batch_size=16, linger_s=0.001)
        sessions = asyncio.run(_drive(gateway, streams))
        assert gateway.active_sessions == 0
        assert all(s.closed for s in sessions.values())
        stats = gateway.stats()
        assert stats.sessions_started == 3
        assert stats.sessions_active == 0
        assert stats.windows_assembled == 60
        assert stats.verdicts + stats.windows_shed == 60

    def test_submit_after_shutdown_raises(self, trained_detectors, test_record):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        delivered = _deliveries(test_record)[0]

        async def run():
            gateway = IngestionGateway(detector)
            async with gateway:
                pass
            with pytest.raises(RuntimeError, match="shutting down"):
                gateway.submit("w", delivered)

        asyncio.run(run())

    def test_end_session_with_inflight_finalizes_after_scoring(
        self, trained_detectors, test_record
    ):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        deliveries = _deliveries(test_record)[:8]  # 4 windows

        async def run():
            gateway = IngestionGateway(detector, batch_size=64, linger_s=0.0)
            async with gateway:
                for delivered in deliveries:
                    gateway.submit("w", delivered)
                session = gateway.end_session("w")
                # Still awaiting scoring: detached but not yet finalized.
                assert session.ending and not session.closed
                assert gateway.active_sessions == 0
                await gateway.drain()
                assert session.closed
                assert session.windows_scored == 4
                return session

        session = asyncio.run(run())
        assert session.episodes is not None  # debouncer was finished

    def test_lost_halves_count_per_session(self, trained_detectors, test_record):
        """Dropping one half of a window surfaces as an incomplete window
        in the gateway stats, never a verdict."""
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        deliveries = _deliveries(test_record)
        del deliveries[6 * 2 + 1]  # drop window 6's ABP half

        async def run():
            gateway = IngestionGateway(detector, batch_size=8, linger_s=0.0,
                                       max_inflight_per_session=100)
            async with gateway:
                for delivered in deliveries:
                    gateway.submit("w", delivered)
                    await asyncio.sleep(0)
                return gateway

        gateway = asyncio.run(run())
        stats = gateway.stats()
        assert stats.windows_assembled == 19
        assert stats.incomplete_windows == 1
        assert stats.verdicts == 19

    def test_validation(self, trained_detectors):
        detector = trained_detectors[DetectorVersion.SIMPLIFIED]
        with pytest.raises(ValueError):
            IngestionGateway(detector, batch_size=0)
        with pytest.raises(ValueError):
            IngestionGateway(detector, linger_s=-1.0)
        with pytest.raises(ValueError):
            IngestionGateway(detector, queue_windows=0)
        with pytest.raises(ValueError):
            IngestionGateway(detector, max_inflight_per_session=0)
        with pytest.raises(ValueError, match="quality_gate"):
            IngestionGateway(detector, degradation=DegradationController())
