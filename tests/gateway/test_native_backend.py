"""The gateway's ``platform="native"`` lane: backend wiring and verdict
bit-identity against the NumPy fleet, in-process and supervised."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.versions import DetectorVersion
from repro.gateway.loadgen import run_gateway_load, train_serving_detectors
from repro.gateway.supervisor import InProcessBackend, NativeBackend
from repro.native import native_status

COMMON = dict(
    n_wearers=6, stream_s=9.0, batch_size=16, loss_probability=0.0, seed=5
)


def _collect(**kwargs):
    verdicts = []
    report = run_gateway_load(
        on_verdict=verdicts.append, **COMMON, **kwargs
    )
    ordered = sorted(verdicts, key=lambda v: (v.wearer_id, v.sequence))
    keys = [(v.wearer_id, v.sequence) for v in ordered]
    values = np.array([v.decision_value for v in ordered])
    return report, keys, values


@pytest.fixture()
def simplified_copy(trained_detectors):
    """A private copy -- NativeBackend mutates its detectors' platform,
    and the session fixtures are immutable."""
    import copy

    return copy.deepcopy(trained_detectors[DetectorVersion.SIMPLIFIED])


class TestNativeBackend:
    def test_is_the_scoring_backend_variant(self, simplified_copy):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = NativeBackend({"simplified": simplified_copy})
        assert isinstance(backend, InProcessBackend)
        for detector in backend.detectors.values():
            assert detector.platform == "native"

    def test_construction_records_platform_per_key(self, simplified_copy):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            backend = NativeBackend({"simplified": simplified_copy})
        assert set(backend.platform_by_key) == {"simplified"}
        assert backend.platform_by_key["simplified"] in ("native", "numpy")

    def test_rejects_empty_detectors(self):
        with pytest.raises(ValueError):
            NativeBackend({})


class TestNativeFleetParity:
    def test_rejects_unknown_platform(self):
        with pytest.raises(ValueError, match="platform"):
            run_gateway_load(platform="fpga", **COMMON)

    def test_train_serving_detectors_platform(self):
        _, fitted = train_serving_detectors(
            versions=("reduced",), n_subjects=4, train_s=60.0, platform="native"
        )
        assert fitted[DetectorVersion.REDUCED].platform == "native"

    def test_native_fleet_verdicts_bit_identical(self):
        """The acceptance gateway run: a native fleet's verdict stream is
        bit-identical to the numpy fleet's (falls back transparently on
        hosts without a toolchain -- still bit-identical by construction)."""
        _, numpy_keys, numpy_values = _collect()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            _, native_keys, native_values = _collect(platform="native")
        assert native_keys == numpy_keys
        assert np.array_equal(native_values, numpy_values, equal_nan=True)

    def test_supervised_native_fleet_bit_identical(self):
        """Native + supervised: the child rebuilds the extension from the
        artifact cache; crash isolation and parity compose."""
        available, reason = native_status(DetectorVersion.ORIGINAL)
        if not available:
            pytest.skip(f"native backend unavailable: {reason}")
        _, numpy_keys, numpy_values = _collect()
        _, native_keys, native_values = _collect(
            platform="native", supervised=True
        )
        assert native_keys == numpy_keys
        assert np.array_equal(native_values, numpy_values, equal_nan=True)
