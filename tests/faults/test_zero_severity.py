"""The zero-severity contract: severity 0 is the clean pipeline, bit for bit.

Every fault cell at severity 0, the injector with zero-severity faults,
the quality-gated streaming path on clean signal, and the hardened runner
with its fault-tolerance knobs at their defaults must all reproduce the
unfaulted pipeline exactly -- not approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import ReplacementAttack
from repro.core.streaming import StreamingDetector
from repro.core.versions import DetectorVersion
from repro.faults import build_fault_cell, fault_names
from repro.signals.quality import SignalQualityIndex
from repro.wiot.environment import WIoTEnvironment


def _verdict_signature(environment: WIoTEnvironment) -> list[tuple]:
    return [
        (v.sequence, v.altered, v.decision_value, v.abstained)
        for v in environment.base_station.verdicts
    ]


def _run(detector, record, donors, channel=None, injector=None):
    environment = WIoTEnvironment(detector, channel=channel)
    summary = environment.run(
        record,
        attack=ReplacementAttack(donors),
        attack_after_s=30.0,
        rng=np.random.default_rng(7),
        sensor_faults=injector,
    )
    return environment, summary


@pytest.fixture(scope="module")
def baseline(trained_detectors, test_record, test_donor_records):
    detector = trained_detectors[DetectorVersion.SIMPLIFIED]
    return _run(detector, test_record, test_donor_records)


@pytest.mark.parametrize("name", fault_names())
def test_zero_severity_cell_is_bit_identical_to_clean(
    name, baseline, trained_detectors, test_record, test_donor_records
):
    clean_env, clean_summary = baseline
    cell = build_fault_cell(name, 0.0, seed=1234)
    env, summary = _run(
        trained_detectors[DetectorVersion.SIMPLIFIED],
        test_record,
        test_donor_records,
        channel=cell.channel,
        injector=cell.injector,
    )
    assert _verdict_signature(env) == _verdict_signature(clean_env)
    assert summary.n_windows_sent == clean_summary.n_windows_sent
    assert summary.n_windows_classified == clean_summary.n_windows_classified
    assert summary.n_windows_lost == clean_summary.n_windows_lost
    assert summary.alert_count == clean_summary.alert_count
    assert summary.coverage == 1.0
    assert summary.abstain_rate == 0.0
    if cell.injector is not None:
        assert cell.injector.packets_faulted == 0


def test_permissive_gate_matches_ungated_streaming(
    trained_detectors, labeled_stream
):
    """The gated per-window path scores exactly like the batch path."""
    detector = trained_detectors[DetectorVersion.SIMPLIFIED]
    ungated = StreamingDetector(detector)
    gated = StreamingDetector(
        detector, quality_gate=SignalQualityIndex(threshold=1e-9)
    )
    windows = list(labeled_stream.windows)
    ungated.process_stream(windows, flush=True)
    gated.process_stream(windows, flush=True)
    assert gated.abstain_count == 0
    assert gated.episodes == ungated.episodes
    assert gated.state.window_index == ungated.state.window_index


def test_hardening_knobs_at_rest_change_nothing(quick_config):
    """Retries/backoff enabled on a healthy serial cohort is a no-op."""
    from repro.experiments import CohortRunner

    with CohortRunner(
        config=quick_config, jobs=1, with_device=False
    ) as plain:
        base = plain.run_version("reduced", subjects=[0])
    with CohortRunner(
        config=quick_config,
        jobs=1,
        with_device=False,
        max_retries=3,
        retry_backoff_s=0.0,
    ) as hardened:
        again = hardened.run_version("reduced", subjects=[0])
    assert [o.ok for o in base] == [o.ok for o in again] == [True]
    assert (
        base[0].result.reference_report == again[0].result.reference_report
    )
    assert hardened.pool_rebuilds == 0


class TestEnvironmentFaultAccounting:
    """Non-zero severities surface as *accounted* coverage loss."""

    def test_corruption_is_rejected_and_counted(
        self, trained_detectors, test_record, test_donor_records
    ):
        cell = build_fault_cell("corruption", 1.0, seed=5)
        env, summary = _run(
            trained_detectors[DetectorVersion.SIMPLIFIED],
            test_record,
            test_donor_records,
            channel=cell.channel,
        )
        assert summary.n_packets_corrupted > 0
        # Corrupted halves never reach the detector: those windows are
        # incomplete, not misclassified.
        assert summary.n_windows_classified < summary.n_windows_sent
        assert (
            summary.n_windows_classified + summary.n_windows_lost
            == summary.n_windows_sent
        )

    def test_duplicates_are_dropped_at_the_door(
        self, trained_detectors, test_record, test_donor_records
    ):
        cell = build_fault_cell("duplication", 1.0, seed=5)
        env, summary = _run(
            trained_detectors[DetectorVersion.SIMPLIFIED],
            test_record,
            test_donor_records,
            channel=cell.channel,
        )
        assert summary.n_packets_duplicated > 0
        # Every window is still classified exactly once.
        sequences = [v.sequence for v in env.base_station.verdicts]
        assert len(sequences) == len(set(sequences))

    def test_flatline_abstains_through_the_gate(
        self, trained_detectors, test_record, test_donor_records
    ):
        cell = build_fault_cell("flatline", 1.0, seed=5)
        environment = WIoTEnvironment(
            trained_detectors[DetectorVersion.SIMPLIFIED],
            channel=cell.channel,
            quality_gate=SignalQualityIndex(threshold=0.6),
        )
        summary = environment.run(
            test_record,
            attack=ReplacementAttack(test_donor_records),
            attack_after_s=30.0,
            rng=np.random.default_rng(7),
            sensor_faults=cell.injector,
        )
        assert summary.n_windows_abstained > 0
        assert summary.abstain_rate > 0.0
        # Abstains are tracked, never silently dropped: sent windows are
        # fully partitioned into decided + abstained + lost.
        assert (
            summary.n_windows_classified
            + summary.n_windows_abstained
            + summary.n_windows_lost
            == summary.n_windows_sent
        )
