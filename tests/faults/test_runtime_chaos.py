"""Tests for the deterministic runtime chaos harness.

These are the harness's own contracts -- plan reproducibility, every
named schedule passing its invariant audit, the kill-and-restart
bit-identity run, and the snapshot truncation sweep.  The invariants
themselves (conservation, detection, bit-identity) are asserted inside
the runners; a passing runner *is* the assertion.
"""

import pytest

from repro.faults.runtime import (
    RuntimeFaultPlan,
    run_chaos_schedule,
    run_restart_chaos,
    run_truncation_chaos,
    schedule_names,
)


class TestFaultPlan:
    def test_seeded_plans_replay(self):
        a = RuntimeFaultPlan.seeded(7, 40, crash_rate=0.1, poison_rate=0.1)
        b = RuntimeFaultPlan.seeded(7, 40, crash_rate=0.1, poison_rate=0.1)
        assert (a.crash, a.stall, a.slow, a.poison) == (
            b.crash,
            b.stall,
            b.slow,
            b.poison,
        )
        c = RuntimeFaultPlan.seeded(8, 40, crash_rate=0.1, poison_rate=0.1)
        assert (a.crash, a.poison) != (c.crash, c.poison)

    def test_requested_kind_always_fires_at_least_once(self):
        plan = RuntimeFaultPlan.seeded(0, 4, crash_rate=0.01, stall_rate=0.01)
        assert len(plan.crash) == 1
        assert len(plan.stall) == 1

    def test_one_action_per_ordinal(self):
        with pytest.raises(ValueError, match="multiple actions"):
            RuntimeFaultPlan(crash=frozenset({3}), poison=frozenset({3}))
        plan = RuntimeFaultPlan(
            crash=frozenset({1}), slow={2: 0.5}, poison=frozenset({4})
        )
        assert plan.action_for(1) == ("crash", 0.0)
        assert plan.action_for(2) == ("slow", 0.5)
        assert plan.action_for(3) is None
        assert plan.action_for(4) == ("poison", 0.0)

    def test_rates_past_capacity_rejected(self):
        with pytest.raises(ValueError, match="past 1.0"):
            RuntimeFaultPlan.seeded(0, 4, crash_rate=0.8, poison_rate=0.8)


class TestSchedules:
    @pytest.mark.parametrize("schedule", schedule_names())
    def test_schedule_passes_its_invariant_audit(self, schedule):
        report = run_chaos_schedule(schedule, seed=2017)
        assert report.ok
        assert report.planned_faults >= 1
        sup = report.report.supervisor
        assert sup.faults >= report.planned_faults
        # Conservation closed under fire.
        assert report.report.conservation_ok
        assert report.report.leaked_sessions == 0

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            run_chaos_schedule("meteor-strike")

    def test_same_seed_same_outcome(self):
        a = run_chaos_schedule("poison", seed=11).to_payload()
        b = run_chaos_schedule("poison", seed=11).to_payload()
        # Recovery time is wall-clock; everything else must replay.
        a.pop("mean_recovery_ms")
        b.pop("mean_recovery_ms")
        assert a == b


class TestRestartChaos:
    def test_killed_gateway_resumes_bit_identically(self, tmp_path):
        report = run_restart_chaos(tmp_path / "sessions.jsonl", seed=2017)
        assert report.ok
        assert report.bit_identical_outside_restart
        assert report.episodes_match
        # The restart window actually existed: some windows really were
        # verdicted twice, and the contract held anyway.
        assert report.restart_window_verdicts > 0
        assert report.snapshot_window < report.crash_window


class TestTruncationChaos:
    def test_every_torn_tail_recovers(self, tmp_path):
        report = run_truncation_chaos(tmp_path, seed=2017)
        assert report.ok
        assert report.points_checked >= 32
        # Both epochs were reachable across the sweep.
        assert max(report.recovered_epochs) == 2
        assert min(report.recovered_epochs) == 0
