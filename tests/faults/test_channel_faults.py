"""Channel-side faults: bursty loss, corruption, duplication, reordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    FaultyChannel,
    GilbertElliottChannel,
    build_fault_cell,
    fault_names,
)
from repro.wiot.channel import WirelessChannel
from tests.faults.test_sensor_faults import make_packet


class TestGilbertElliott:
    def test_zero_severity_never_drops(self):
        channel = GilbertElliottChannel.from_severity(0.0)
        for i in range(200):
            assert channel.transmit(make_packet(sequence=i)) is not None
        assert channel.delivery_rate == 1.0

    def test_high_severity_drops_in_bursts(self):
        channel = GilbertElliottChannel.from_severity(1.0, seed=3)
        outcomes = [
            channel.transmit(make_packet(sequence=i)) is None
            for i in range(500)
        ]
        assert channel.packets_dropped > 0
        assert channel.delivery_rate < 1.0
        # Bursty: at least one run of >= 3 consecutive drops.
        run = best = 0
        for lost in outcomes:
            run = run + 1 if lost else 0
            best = max(best, run)
        assert best >= 3

    def test_reset_restores_the_exact_loss_pattern(self):
        channel = GilbertElliottChannel.from_severity(0.8, seed=5)
        first = [
            channel.transmit(make_packet(sequence=i)) is None for i in range(100)
        ]
        channel.reset()
        second = [
            channel.transmit(make_packet(sequence=i)) is None for i in range(100)
        ]
        assert first == second
        assert channel.packets_sent == 100

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError, match="bad_loss"):
            GilbertElliottChannel(bad_loss=1.5)
        with pytest.raises(ValueError, match="severity"):
            GilbertElliottChannel.from_severity(2.0)


class TestFaultyChannel:
    def test_stamps_preflight_crc(self):
        channel = FaultyChannel(WirelessChannel())
        packet = make_packet()
        (delivered,) = channel.deliver(packet)
        assert delivered.crc32 == packet.payload_crc32()
        assert delivered.packet.payload_crc32() == delivered.crc32

    def test_corruption_breaks_the_crc(self):
        channel = FaultyChannel(WirelessChannel(), corrupt_probability=1.0)
        packet = make_packet()
        (delivered,) = channel.deliver(packet)
        assert channel.packets_corrupted == 1
        # The stamp still matches the *sent* payload, not the corrupted one.
        assert delivered.crc32 == packet.payload_crc32()
        assert delivered.packet.payload_crc32() != delivered.crc32

    def test_duplication_delivers_twice(self):
        channel = FaultyChannel(WirelessChannel(), duplicate_probability=1.0)
        deliveries = channel.deliver(make_packet())
        assert len(deliveries) == 2
        assert channel.packets_duplicated == 1

    def test_reordering_holds_and_swaps(self):
        channel = FaultyChannel(WirelessChannel(), reorder_probability=1.0)
        assert channel.deliver(make_packet(sequence=0)) == []
        swapped = channel.deliver(make_packet(sequence=1))
        assert [d.packet.sequence for d in swapped] == [1, 0]
        assert channel.packets_reordered == 1

    def test_drain_releases_the_held_packet(self):
        channel = FaultyChannel(WirelessChannel(), reorder_probability=1.0)
        channel.deliver(make_packet(sequence=0))
        (held,) = channel.drain()
        assert held.packet.sequence == 0
        assert channel.drain() == []

    def test_reset_clears_wrapper_and_inner(self):
        inner = WirelessChannel(loss_probability=0.5, seed=2)
        channel = FaultyChannel(
            inner, duplicate_probability=0.5, reorder_probability=1.0, seed=4
        )
        for i in range(20):
            channel.deliver(make_packet(sequence=i))
        channel.reset()
        assert channel.packets_sent == 0
        assert channel.packets_duplicated == 0
        assert channel.packets_reordered == 0
        assert channel.drain() == []

    def test_rejects_invalid_probabilities(self):
        with pytest.raises(ValueError, match="corrupt_probability"):
            FaultyChannel(corrupt_probability=-0.1)
        with pytest.raises(ValueError, match="corrupt_bits"):
            FaultyChannel(corrupt_bits=0)


class TestCatalog:
    def test_every_fault_builds_at_any_severity(self):
        for name in fault_names():
            for severity in (0.0, 0.5, 1.0):
                cell = build_fault_cell(name, severity, seed=1)
                assert cell.name == name
                assert cell.severity == severity
                assert hasattr(cell.channel, "transmit") or hasattr(
                    cell.channel, "deliver"
                )

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            build_fault_cell("gremlins", 0.5)

    def test_out_of_range_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            build_fault_cell("flatline", 1.5)


class TestWirelessChannelReset:
    def test_reset_restores_counters_and_rng(self):
        channel = WirelessChannel(loss_probability=0.3, seed=9)
        first = [
            channel.transmit(make_packet(sequence=i)) is None for i in range(50)
        ]
        assert channel.packets_sent == 50
        channel.reset()
        assert channel.packets_sent == 0
        assert channel.packets_dropped == 0
        second = [
            channel.transmit(make_packet(sequence=i)) is None for i in range(50)
        ]
        assert first == second

    def test_reset_can_change_the_loss_probability(self):
        channel = WirelessChannel(loss_probability=0.0, seed=9)
        channel.reset(loss_probability=0.5)
        assert channel.loss_probability == 0.5
        # The redialled channel matches a freshly constructed one exactly.
        fresh = WirelessChannel(loss_probability=0.5, seed=9)
        for i in range(50):
            assert (channel.transmit(make_packet(sequence=i)) is None) == (
                fresh.transmit(make_packet(sequence=i)) is None
            )
        with pytest.raises(ValueError, match="loss_probability"):
            channel.reset(loss_probability=1.5)


def test_np_seed_isolation():
    """Channel RNGs are self-owned: global numpy seeding has no effect."""
    np.random.seed(0)  # lint: allow DET001 -- deliberately perturbs the global RNG to prove isolation
    a = GilbertElliottChannel.from_severity(0.9, seed=1)
    np.random.seed(123)  # lint: allow DET001 -- deliberately perturbs the global RNG to prove isolation
    b = GilbertElliottChannel.from_severity(0.9, seed=1)
    pattern_a = [a.transmit(make_packet(sequence=i)) is None for i in range(50)]
    pattern_b = [b.transmit(make_packet(sequence=i)) is None for i in range(50)]
    assert pattern_a == pattern_b
