"""Sensor-side fault models: each failure mode leaves its signature."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    BaselineWanderFault,
    BurstNoiseFault,
    ClockDriftFault,
    FaultInjector,
    FlatlineFault,
    SaturationFault,
)
from repro.wiot.sensor import SensorPacket


def make_packet(
    channel: str = "ecg", sequence: int = 0, n: int = 1080, fs: float = 360.0
) -> SensorPacket:
    rng = np.random.default_rng(5 + sequence)
    t = np.arange(n) / fs
    samples = np.sin(2 * np.pi * 1.2 * t) + 0.05 * rng.standard_normal(n)
    return SensorPacket(
        sensor_id="s0",
        channel=channel,
        sequence=sequence,
        start_time_s=sequence * (n / fs),
        samples=samples,
        peak_indexes=np.arange(50, n, 300),
        sample_rate=fs,
    )


class TestSeverityContract:
    @pytest.mark.parametrize("severity", (-0.1, 1.5))
    def test_severity_out_of_range_rejected(self, severity):
        with pytest.raises(ValueError, match="severity"):
            FlatlineFault(severity)

    def test_zero_severity_fault_is_skipped_entirely(self):
        packet = make_packet()
        injector = FaultInjector([FlatlineFault(0.0), BurstNoiseFault(0.0)])
        state_before = injector._rng.bit_generator.state
        assert injector.apply(packet) is packet
        # Not even an RNG draw: the stream stays untouched for later faults.
        assert injector._rng.bit_generator.state == state_before
        assert injector.packets_faulted == 0


class TestFlatline:
    def test_full_severity_flattens_and_drops_peaks(self):
        packet = make_packet()
        out = FlatlineFault(1.0).apply(packet, np.random.default_rng(0))
        assert np.ptp(out.samples) == 0.0
        assert out.peak_indexes.size == 0

    def test_partial_severity_keeps_outside_peaks(self):
        packet = make_packet()
        rng = np.random.default_rng(3)
        out = None
        while out is None or out is packet:  # the fault gates on severity
            out = FlatlineFault(0.5).apply(packet, rng)
        assert out.samples.size == packet.samples.size
        assert out.peak_indexes.size <= packet.peak_indexes.size
        assert set(out.peak_indexes) <= set(packet.peak_indexes)


class TestSaturation:
    def test_is_deterministic(self):
        packet = make_packet()
        a = SaturationFault(0.7).apply(packet, np.random.default_rng(0))
        b = SaturationFault(0.7).apply(packet, np.random.default_rng(99))
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_range_shrinks_with_severity(self):
        packet = make_packet()
        spans = [
            np.ptp(
                SaturationFault(s).apply(packet, np.random.default_rng(0)).samples
            )
            for s in (0.2, 0.6, 1.0)
        ]
        assert spans[0] > spans[1] > spans[2]


class TestBaselineWander:
    def test_adds_low_frequency_component(self):
        packet = make_packet()
        out = BaselineWanderFault(1.0).apply(packet, np.random.default_rng(1))
        assert out.samples.size == packet.samples.size
        # The wander is additive and large at severity 1.
        assert np.max(np.abs(out.samples - packet.samples)) > 0.5

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError, match="frequency_hz"):
            BaselineWanderFault(0.5, frequency_hz=0.0)


class TestBurstNoise:
    def test_full_severity_adds_local_burst(self):
        packet = make_packet()
        out = BurstNoiseFault(1.0).apply(packet, np.random.default_rng(2))
        delta = out.samples - packet.samples
        assert np.any(delta != 0.0)
        # A burst is local: most of the window is untouched.
        assert np.mean(delta != 0.0) < 0.2


class TestClockDrift:
    def test_only_configured_channels_drift(self):
        fault = ClockDriftFault(1.0, channels=("abp",))
        rng = np.random.default_rng(0)
        ecg = make_packet(channel="ecg")
        assert fault.apply(ecg, rng) is ecg

    def test_drift_accumulates_across_packets(self):
        fault = ClockDriftFault(1.0, channels=("abp",), max_drift_s_per_packet=0.05)
        rng = np.random.default_rng(0)
        first = fault.apply(make_packet(channel="abp", sequence=0), rng)
        second = fault.apply(make_packet(channel="abp", sequence=1), rng)
        fs = 360.0
        shift1 = int(round(0.05 * fs))
        shift2 = int(round(0.10 * fs))
        np.testing.assert_array_equal(
            first.samples,
            np.roll(make_packet(channel="abp", sequence=0).samples, shift1),
        )
        np.testing.assert_array_equal(
            second.samples,
            np.roll(make_packet(channel="abp", sequence=1).samples, shift2),
        )
        assert np.all(np.diff(second.peak_indexes) > 0)

    def test_reset_clears_accumulated_skew(self):
        fault = ClockDriftFault(1.0, channels=("abp",))
        rng = np.random.default_rng(0)
        packet = make_packet(channel="abp")
        first = fault.apply(packet, rng)
        fault.reset()
        again = fault.apply(packet, rng)
        np.testing.assert_array_equal(first.samples, again.samples)

    def test_rejects_unknown_channel(self):
        with pytest.raises(ValueError, match="unknown channel"):
            ClockDriftFault(0.5, channels=("ppg",))


class TestFaultInjector:
    def test_counts_faulted_packets(self):
        injector = FaultInjector([SaturationFault(1.0)])
        injector.apply(make_packet())
        injector.apply(make_packet(sequence=1))
        assert injector.packets_faulted == 2

    def test_reset_reproduces_the_stream(self):
        packets = [make_packet(sequence=i) for i in range(8)]
        injector = FaultInjector(
            [FlatlineFault(0.4), BurstNoiseFault(0.6)], seed=11
        )
        first = [p.samples.copy() for p in injector.stream(packets)]
        injector.reset()
        second = [p.samples.copy() for p in injector.stream(packets)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
