"""Regenerates Fig. 3: the ARP-view resource-consumption snapshot.

Profiles the Original SIFT app (the version the paper's figure shows),
renders the per-component current breakdown and the battery-life /
detection-period slider sweep, and asserts the qualitative structure:
compute plus BLE dominate the dynamic budget, and lifetime grows
monotonically with the detection period.
"""

import math

from repro.core.versions import DetectorVersion
from repro.experiments.fig3 import (
    format_fig3,
    run_fig3,
    run_grid_resource_sweep,
)
from repro.experiments.reporting import format_table

from conftest import run_once


def test_reproduce_fig3(benchmark, save_result):
    result = run_once(benchmark, run_fig3, study="fig3", unit="profile")
    save_result("fig3", format_fig3(result))

    profile = result.profile
    breakdown = profile.current_breakdown

    # Components partition the average current.
    assert sum(breakdown.values()) == abs(profile.average_current_ma) or (
        abs(sum(breakdown.values()) - profile.average_current_ma) < 1e-12
    )

    # The libm build bills double-precision CPU work, and that work plus
    # BLE reception dominate the dynamic budget.
    top_two = {name for name, _ in result.top_consumers(2)}
    assert any(name.startswith("cpu.double") for name in top_two)
    assert "peripheral.ble_radio" in top_two

    # The ARP-view slider: longer detection period, longer battery life.
    periods = sorted(result.period_sweep)
    lifetimes = [result.period_sweep[p] for p in periods]
    assert lifetimes == sorted(lifetimes)
    assert lifetimes[-1] > 1.5 * lifetimes[0]

    # Static draws bound the slider's asymptote.
    static = sum(v for k, v in breakdown.items() if k.startswith("static."))
    asymptote = profile.battery.lifetime_days(static)
    assert all(days < asymptote for days in lifetimes)


def test_grid_resource_sweep(benchmark, save_result):
    """The resource half of the grid-size trade-off (ARP-view slider)."""
    rows = run_once(benchmark, run_grid_resource_sweep, study="fig3", unit="grid_sweep")
    save_result(
        "fig3_grid_resource_sweep",
        format_table(
            ["grid_n", "deployable", "det FRAM KB", "Mcyc/win", "days"],
            [
                [
                    f"{row['grid_n']:g}",
                    "yes" if row["deployable"] else "NO (array limit)",
                    f"{row['detector_fram_kb']:.2f}",
                    f"{row['mcycles_per_window']:.2f}",
                    f"{row['lifetime_days']:.1f}",
                ]
                for row in rows
            ],
        ),
    )
    by_grid = {row["grid_n"]: row for row in rows}
    # FRAM grows with n^2; the paper's n = 50 fits, n = 100 cannot deploy
    # under the platform's array-size limit (Insight #1).
    assert by_grid[50.0]["deployable"] == 1.0
    assert by_grid[100.0]["deployable"] == 0.0
    assert math.isnan(by_grid[100.0]["lifetime_days"])
    assert by_grid[50.0]["detector_fram_kb"] > by_grid[10.0]["detector_fram_kb"]
    assert by_grid[50.0]["lifetime_days"] <= by_grid[10.0]["lifetime_days"]


def test_fig3_simplified_has_no_libm_components(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: run_fig3(version=DetectorVersion.SIMPLIFIED),
        study="fig3",
        unit="profile_simplified",
    )
    save_result("fig3_simplified", format_fig3(result))
    assert not any(
        "libm" in name or "double" in name
        for name in result.profile.current_breakdown
    )
