"""Shared benchmark helpers.

Heavy experiments run exactly once via ``benchmark.pedantic`` (regenerating
a paper table is a one-shot measurement, not a statistical microbenchmark);
their rendered tables are printed and also written to
``benchmarks/results/<name>.txt`` so the output survives pytest's capture.

Every :func:`run_once` measurement that names its ``study`` also lands in
the orchestrator's perf-sample buffer; at session end the samples are
aggregated into a ``BENCH_<stamp>.json`` perf trajectory (same schema the
``repro orchestrate`` driver emits), which is what the CI regression gate
(``repro bench-gate``) consumes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def results_dir() -> Path:
    """Where rendered tables and the trajectory land.

    ``REPRO_BENCH_RESULTS`` overrides the default ``benchmarks/results``
    -- the trajectory regression test points it at a tmp dir so a real
    bench session can be asserted against without touching the repo's
    committed results.
    """
    override = os.environ.get("REPRO_BENCH_RESULTS")
    return Path(override) if override else RESULTS_DIR


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark workloads for CI smoke runs "
        "(shorter streams, looser-but-still-meaningful assertions)",
    )
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the cohort sweeps (1 = serial; "
        "results are identical at any value, only wall-clock changes)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the run is a CI smoke pass (``--quick``)."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture(scope="session")
def jobs(request) -> int:
    """Worker count for the cohort-fanning benchmarks (``--jobs``)."""
    value = int(request.config.getoption("--jobs"))
    if value < 1:
        raise pytest.UsageError("--jobs must be >= 1")
    return value


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table under benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        out = results_dir()
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{name}.txt"
        path.write_text(text + "\n")
        # Also echo for -s runs / the captured log.
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(benchmark, fn, study: str | None = None, unit: str | None = None,
             sample=None):
    """Run a one-shot experiment under pytest-benchmark's timer.

    Naming a ``study`` (and optionally a ``unit`` within it) records the
    wall-clock into the orchestrator's perf-sample buffer, from which
    :func:`pytest_sessionfinish` assembles the session's trajectory.
    ``sample`` maps the run's result to extra sample fields (e.g.
    ``n_windows``, ``p99_ms``) merged into the recorded measurement.
    """
    started = time.perf_counter()
    result = benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    wall_s = time.perf_counter() - started
    if study is not None:
        from repro.experiments.orchestrator import record_perf_sample

        fields = dict(sample(result)) if sample is not None else {}
        record_perf_sample(study, unit or study, wall_s, **fields)
    return result


def pytest_sessionfinish(session, exitstatus):
    """Persist the session's perf samples as a BENCH_<stamp>.json record."""
    try:
        from repro.experiments.orchestrator import (
            drain_perf_samples,
            trajectory_from_samples,
            write_trajectory,
        )
    except ImportError:  # bare collection without src on the path
        return
    samples = drain_perf_samples()
    if not samples:
        return
    record = trajectory_from_samples(
        samples,
        label="bench",
        quick=bool(session.config.getoption("--quick")),
        jobs=int(session.config.getoption("--jobs")),
    )
    out = results_dir()
    out.mkdir(parents=True, exist_ok=True)
    path = write_trajectory(record, out)
    print(f"\nperf trajectory: {path}")
