"""Robustness benches: channel loss, artifact load, alert debouncing.

Operational studies extending the paper's evaluation -- see
``repro.experiments.robustness`` for what each sweep models.
"""

import pytest

from repro.experiments.pipeline import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.robustness import (
    artifact_load_study,
    channel_loss_study,
    debounce_study,
)

from conftest import run_once


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        n_subjects=6,
        train_duration_s=300.0,
        test_duration_s=120.0,
        n_train_donors=3,
        n_test_donors=2,
    )


def _table(rows, columns):
    return format_table(
        columns,
        [
            [
                f"{row[c]:.4g}" if isinstance(row[c], float) else str(row[c])
                for c in columns
            ]
            for row in rows
        ],
    )


def test_channel_loss(benchmark, config, save_result):
    rows = run_once(benchmark, lambda: channel_loss_study(config), study="robustness", unit="channel_loss")
    save_result(
        "robustness_channel_loss",
        _table(rows, ["loss_probability", "window_coverage", "accuracy_on_classified"]),
    )
    by_loss = {row["loss_probability"]: row for row in rows}
    # Coverage falls roughly like (1-p)^2 (both halves must arrive)...
    assert by_loss[0.0]["window_coverage"] == pytest.approx(1.0)
    assert by_loss[0.4]["window_coverage"] < 0.6
    # ...but accuracy on the windows that DO assemble barely moves.
    assert (
        by_loss[0.4]["accuracy_on_classified"]
        > by_loss[0.0]["accuracy_on_classified"] - 0.1
    )


def test_artifact_load(benchmark, config, save_result):
    rows = run_once(benchmark, lambda: artifact_load_study(config), study="robustness", unit="artifact_load")
    save_result(
        "robustness_artifact_load",
        _table(rows, ["artifact_rate_per_min", "accuracy", "fp_rate", "fn_rate"]),
    )
    by_rate = {row["artifact_rate_per_min"]: row for row in rows}
    # Clean signals are easiest; heavy artifact load costs accuracy,
    # mostly through false positives (genuine windows start looking odd).
    assert by_rate[0.0]["accuracy"] >= by_rate[12.0]["accuracy"]
    assert by_rate[12.0]["fp_rate"] >= by_rate[0.0]["fp_rate"]
    # Even under heavy artifacts the detector stays useful.
    assert by_rate[12.0]["accuracy"] > 0.6


def test_debouncing(benchmark, config, save_result):
    rows = run_once(benchmark, lambda: debounce_study(config), study="robustness", unit="debounce")
    save_result(
        "robustness_debounce",
        _table(
            rows,
            [
                "votes_needed",
                "vote_window",
                "window_accuracy",
                "false_episodes_per_run",
                "attack_catch_rate",
            ],
        ),
    )
    by_k = {row["votes_needed"]: row for row in rows}
    # Stricter voting cannot raise the false-episode rate...
    assert (
        by_k[3]["false_episodes_per_run"] <= by_k[1]["false_episodes_per_run"]
    )
    # ...and sustained attacks are still caught.
    assert by_k[2]["attack_catch_rate"] >= 0.8
    assert by_k[3]["attack_catch_rate"] >= 0.8
