"""Benchmarks: bounded-memory chunked scoring vs one-shot batch scoring.

``SIFTDetector.iter_decision_values`` exists so a long stream can be
scored with peak memory proportional to the *chunk*, not the stream.
These benches check both halves of that claim on a 30-minute recording
(600 windows at the paper's 3-second window; ``--quick`` shrinks it to
6 minutes for CI smoke runs):

* the chunked path is **bit-identical** to one-shot
  :meth:`~repro.core.SIFTDetector.decision_values`, including at odd
  chunk sizes that straddle the stream length unevenly;
* the chunked peak (tracemalloc) is a small multiple of one chunk's
  working set -- several times below the one-shot peak, and nearly
  unchanged when the stream doubles.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.core import SIFTDetector
from repro.signals import SyntheticFantasia, iter_windows

from conftest import run_once

WINDOW_S = 3.0
CHUNK = 16


@pytest.fixture(scope="module")
def setup(quick):
    """A trained Simplified detector and a long genuine test record."""
    data = SyntheticFantasia(n_subjects=4, seed=11)
    victim = data.subjects[0]
    others = data.subjects[1:]
    detector = SIFTDetector(version="simplified")
    detector.fit(
        data.record(victim, 180.0, purpose="train"),
        [data.record(s, 60.0, purpose="train") for s in others[:3]],
    )
    duration_s = 360.0 if quick else 1800.0
    record = data.record(victim, duration_s, purpose="test")
    n_windows = int(duration_s / WINDOW_S)
    return detector, record, n_windows


def _windows(record, n: int | None = None):
    """A fresh lazy window generator over ``record`` (first ``n`` windows)."""
    gen = iter_windows(record, WINDOW_S)
    if n is None:
        yield from gen
    else:
        for _, window in zip(range(n), gen):
            yield window


def _peak_bytes(fn) -> int:
    """Peak traced allocation while running ``fn``."""
    gc.collect()
    tracemalloc.start()
    fn()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def test_chunked_equivalence(setup):
    """Chunked scores concatenate to the exact one-shot values."""
    detector, record, n_windows = setup
    one_shot = detector.decision_values(list(_windows(record)))
    assert one_shot.shape == (n_windows,)
    for chunk_size in (7, 64, n_windows):
        chunked = np.concatenate(
            list(detector.iter_decision_values(_windows(record), chunk_size))
        )
        assert np.array_equal(chunked, one_shot), f"chunk_size={chunk_size}"


def test_chunked_peak_memory(setup, quick):
    """Acceptance: peak memory bounded by the chunk, not the stream."""
    detector, record, n_windows = setup

    one_shot_peak = _peak_bytes(
        lambda: detector.decision_values(list(_windows(record)))
    )

    def run_chunked(n: int | None = None) -> None:
        for values in detector.iter_decision_values(_windows(record, n), CHUNK):
            values.sum()  # consume, keep nothing

    chunked_peak = _peak_bytes(run_chunked)
    half_peak = _peak_bytes(lambda: run_chunked(n_windows // 2))

    ratio = one_shot_peak / chunked_peak
    growth = chunked_peak / half_peak
    print(
        f"\none-shot peak {one_shot_peak / 2**20:.1f} MiB, "
        f"chunked({CHUNK}) peak {chunked_peak / 2**20:.1f} MiB "
        f"({ratio:.1f}x smaller); full/half-stream growth {growth:.2f}x"
    )
    # Quick mode has fewer windows, so the stream/chunk ratio shrinks too.
    assert ratio >= (3.0 if quick else 4.0)
    # Doubling the stream must not double the chunked peak.
    assert growth <= 1.5


def test_one_shot_stream_scoring(benchmark, setup):
    detector, record, n_windows = setup
    values = run_once(
        benchmark,
        lambda: detector.decision_values(list(_windows(record))),
        study="chunked",
        unit="one-shot",
    )
    assert values.shape == (n_windows,)


def test_chunked_stream_scoring(benchmark, setup):
    detector, record, n_windows = setup

    def run():
        return sum(
            len(v) for v in detector.iter_decision_values(_windows(record), 256)
        )

    assert run_once(benchmark, run, study="chunked", unit="chunked") == n_windows
