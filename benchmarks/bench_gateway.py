"""Ingestion-gateway serving bench.

Drives a fleet of concurrent simulated wearers (>= 1k in the full run)
through the async micro-batching gateway and asserts the serving-side
contract: every sent window is accounted for (verdict, shed, or
incomplete), no session leaks past shutdown, and the run reports
sustained windows/sec plus p50/p99 verdict latency -- which land in the
session's ``BENCH_<stamp>.json`` trajectory via the ``gateway`` study,
where ``repro bench-gate`` gates them against the committed baseline.
"""

from repro.gateway import run_gateway_load

from conftest import run_once


def test_gateway_fleet(benchmark, quick, save_result):
    n_wearers = 128 if quick else 1024
    stream_s = 12.0 if quick else 30.0

    report = run_once(
        benchmark,
        lambda: run_gateway_load(
            n_wearers=n_wearers,
            stream_s=stream_s,
            batch_size=256,
            loss_probability=0.02,
            sanitize_loop=True,
        ),
        study="gateway",
        unit="serving",
        sample=lambda r: {
            "n_windows": r.stats.verdicts,
            "p99_ms": r.p99_latency_s * 1e3,
        },
    )
    save_result("gateway_serving_bench", report.summary())

    stats = report.stats
    assert report.n_wearers == n_wearers
    assert stats.sessions_started == n_wearers
    # Clean shutdown: every session finalized, none leaked.
    assert report.leaked_sessions == 0
    assert stats.sessions_active == 0
    # Conservation: every sent window got a disposition -- scored, shed,
    # assembled-incomplete, or vanished entirely in the channel (both
    # halves dropped; only the sender can count those).
    assert (
        stats.verdicts
        + stats.windows_shed
        + stats.incomplete_windows
        + report.windows_vanished
        == report.windows_sent
    )
    assert stats.verdicts > 0
    # The 2% channel loss must surface as incomplete windows, not vanish.
    assert report.packets_dropped > 0
    assert stats.incomplete_windows > 0
    # Latency percentiles are real measurements (perf_counter-based).
    assert 0.0 < report.p50_latency_s <= report.p99_latency_s
    # Micro-batching actually crosses sessions.
    assert stats.mean_batch_size > 1.0
    # The event loop never executed blocking work (stall sanitizer).
    assert report.loop_clean, report.summary()
