"""Microbenchmarks of the pipeline's hot paths.

Unlike the table benches (one-shot experiment regenerations), these are
statistical pytest-benchmark measurements of the individual stages: signal
generation, portrait construction, feature extraction per version (both
the reference and the device implementation), SVM training, and the two
deployed classifier forms.
"""

import numpy as np
import pytest

from repro.amulet.restricted import OpCounter, RestrictedMath
from repro.core import SIFTDetector, build_portrait
from repro.core.training import build_training_set
from repro.core.versions import DetectorVersion, make_extractor
from repro.ml.svm import SVC
from repro.signals import SyntheticFantasia
from repro.sift_app.device_features import device_extract_features
from repro.sift_app.payload import DeviceWindow

from conftest import run_once


@pytest.fixture(scope="module")
def data():
    dataset = SyntheticFantasia(n_subjects=4, seed=7)
    victim = dataset.subjects[0]
    others = dataset.subjects[1:]
    train = dataset.record(victim, 180.0, purpose="train")
    donors = [dataset.record(s, 60.0, purpose="train") for s in others]
    test = dataset.record(victim, 60.0, purpose="test")
    window = test.window(0, 1080)
    return {
        "dataset": dataset,
        "victim": victim,
        "train": train,
        "donors": donors,
        "test": test,
        "window": window,
        "device_window": DeviceWindow.from_signal_window(window),
    }


def test_bench_signal_generation(benchmark, data):
    dataset, victim = data["dataset"], data["victim"]
    record = run_once(
        benchmark,
        lambda: dataset.record(victim, 120.0, "extra"),
        study="micro",
        unit="signal-generation",
    )
    assert record.n_samples == int(120.0 * dataset.sample_rate)


def test_bench_portrait_construction(benchmark, data):
    portrait = run_once(
        benchmark,
        lambda: build_portrait(data["window"]),
        study="micro",
        unit="portrait",
    )
    assert portrait.n_points == 1080


@pytest.mark.parametrize("version", list(DetectorVersion), ids=lambda v: v.value)
def test_bench_reference_extraction(benchmark, data, version):
    extractor = make_extractor(version)
    features = run_once(
        benchmark,
        lambda: extractor.extract_window(data["window"]),
        study="micro",
        unit=f"reference-extract-{version.value}",
    )
    assert features.shape == (version.n_features,)


@pytest.mark.parametrize("version", list(DetectorVersion), ids=lambda v: v.value)
def test_bench_device_extraction(benchmark, data, version):
    def extract():
        math = RestrictedMath(
            counter=OpCounter(), allow_libm=version.requires_libm
        )
        return device_extract_features(math, version, data["device_window"])

    features = run_once(
        benchmark, extract, study="micro", unit=f"device-extract-{version.value}"
    )
    assert features.shape == (version.n_features,)


def test_bench_training_set_construction(benchmark, data):
    extractor = make_extractor(DetectorVersion.SIMPLIFIED)
    ts = benchmark.pedantic(
        build_training_set,
        args=(extractor, data["train"], data["donors"]),
        rounds=3,
        iterations=1,
    )
    assert ts.n_samples == 120


def test_bench_svm_training(benchmark, data):
    extractor = make_extractor(DetectorVersion.SIMPLIFIED)
    ts = build_training_set(extractor, data["train"], data["donors"])
    from repro.ml.scaler import StandardScaler

    X = StandardScaler().fit_transform(ts.X)

    def train():
        return SVC(C=1.0).fit(X, ts.y)

    svc = benchmark.pedantic(train, rounds=3, iterations=1)
    assert svc.coef_ is not None


def test_bench_end_to_end_window_classification(benchmark, data):
    detector = SIFTDetector(version="simplified")
    detector.fit(data["train"], data["donors"])
    verdict = run_once(
        benchmark,
        lambda: detector.classify_window(data["window"]),
        study="micro",
        unit="end-to-end-window",
    )
    assert verdict in (True, False)


def test_bench_fixed_point_classification(benchmark, data):
    detector = SIFTDetector(version="simplified")
    detector.fit(data["train"], data["donors"])
    model = detector.deploy()
    features_q = model.quantize(detector.extract_features(data["window"]))
    result = run_once(
        benchmark,
        lambda: model.predict_bool_fixed(features_q),
        study="micro",
        unit="fixed-point-classify",
    )
    assert result in (True, False)


def test_bench_peak_detection(benchmark, data):
    from repro.signals.peaks import detect_r_peaks

    peaks = run_once(
        benchmark,
        lambda: detect_r_peaks(data["test"].ecg, 360.0),
        study="micro",
        unit="peak-detection",
    )
    assert peaks.size > 50


def test_bench_occupancy_histogram(benchmark, data):
    math = RestrictedMath(counter=OpCounter())
    x = np.random.default_rng(0).random(1080)
    y = np.random.default_rng(1).random(1080)
    matrix = run_once(
        benchmark,
        lambda: math.histogram2d(x, y, 50),
        study="micro",
        unit="occupancy-histogram",
    )
    assert matrix.sum() == 1080
