"""Regenerates Table III: memory use and expected battery lifetime.

Each version's app is built into a firmware image, streamed the standard
evaluation windows on the simulated Amulet, and profiled by ARP.  Shape
assertions encode the paper's Table III:

* detector SRAM: 259 B for the matrix builds, 69 B for Reduced (exact);
* detector FRAM: monotone decreasing, Reduced roughly half Original;
* system FRAM: monotone decreasing (demand linking);
* expected lifetime: Reduced ~2x Original, Simplified slightly above
  Original; absolute values in the tens of days on the 110 mAh cell.
"""

from repro.core.versions import DetectorVersion
from repro.experiments.table3 import format_table3, run_table3

from conftest import run_once


def test_reproduce_table3(benchmark, save_result):
    result = run_once(benchmark, run_table3, study="table3")
    save_result("table3", format_table3(result))

    profiles = result.profiles
    original = profiles[DetectorVersion.ORIGINAL]
    simplified = profiles[DetectorVersion.SIMPLIFIED]
    reduced = profiles[DetectorVersion.REDUCED]

    # SRAM matches the paper's measurements exactly (derived, not coded).
    assert original.app_sram_bytes == 259
    assert simplified.app_sram_bytes == 259
    assert reduced.app_sram_bytes == 69

    # FRAM orderings.
    assert original.app_fram_bytes > simplified.app_fram_bytes > reduced.app_fram_bytes
    assert reduced.app_fram_bytes < 0.6 * original.app_fram_bytes
    assert original.system_fram_bytes > simplified.system_fram_bytes
    assert simplified.system_fram_bytes > reduced.system_fram_bytes

    # Lifetime (paper: 23 / 26 / 55 days).
    assert reduced.lifetime_days > simplified.lifetime_days > original.lifetime_days
    assert 15 <= original.lifetime_days <= 35
    assert 35 <= reduced.lifetime_days <= 75
    ratio = result.lifetime_ratio(DetectorVersion.ORIGINAL, DetectorVersion.REDUCED)
    assert 1.8 <= ratio <= 3.0  # paper: 55/23 = 2.4
