"""Microbenchmarks: scalar vs batch window scoring.

The batch detection path exists to amortize per-window NumPy dispatch
overhead across a whole stream.  These benches measure the two paths on a
2-minute evaluation stream (40 windows at the paper's 3-second window)
and assert the speedups the change is supposed to buy:

* the *scoring stage* (standardize + SVM decision) batched over the
  stream must beat the per-window loop by >= 5x -- this is pure NumPy
  dispatch amortization, the loop pays ~40 small matmuls and transforms
  where the batch pays one;
* the *end-to-end* path (portrait -> features -> scores) must also win,
  by a smaller margin, since per-window peak geometry is irreducibly
  per-window.

Both paths are asserted bit-identical before timing, so the benches also
act as an equivalence smoke test on a stream larger than the unit tests'.
"""

import time

import numpy as np
import pytest

from repro.attacks import AttackScenario, ReplacementAttack
from repro.core import SIFTDetector
from repro.signals import SyntheticFantasia

from conftest import run_once


@pytest.fixture(scope="module")
def setup():
    """A trained Simplified detector and its 2-minute labelled stream."""
    data = SyntheticFantasia(n_subjects=4, seed=7)
    victim = data.subjects[0]
    others = data.subjects[1:]
    detector = SIFTDetector(version="simplified")
    detector.fit(
        data.record(victim, 180.0, purpose="train"),
        [data.record(s, 60.0, purpose="train") for s in others[:3]],
    )
    stream = AttackScenario(
        ReplacementAttack([data.record(s, 60.0, purpose="test") for s in others[:1]])
    ).build(data.record(victim, 120.0, purpose="test"), np.random.default_rng(3))
    assert len(stream) == 40  # 2 minutes / 3 s windows
    return detector, stream


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_scalar_stream_scoring(benchmark, setup):
    detector, stream = setup
    values = run_once(
        benchmark,
        lambda: [detector.decision_value(w) for w in stream.windows],
        study="batch",
        unit="scalar-stream",
    )
    assert len(values) == len(stream)


def test_batch_stream_scoring(benchmark, setup):
    detector, stream = setup
    values = run_once(
        benchmark,
        lambda: detector.decision_values(stream),
        study="batch",
        unit="batch-stream",
    )
    assert values.shape == (len(stream),)


def test_batch_scoring_speedup(setup):
    """Acceptance: batched window scoring >= 5x the scalar loop."""
    detector, stream = setup

    # Equivalence first -- a fast wrong answer is no speedup.
    batch_values = detector.decision_values(stream)
    scalar_values = np.array(
        [detector.decision_value(w) for w in stream.windows]
    )
    assert np.array_equal(batch_values, scalar_values)

    # The scoring stage: standardize + decision over precomputed features.
    features = detector.extractor.extract_stream(stream)
    rows = [detector.extractor.extract_window(w) for w in stream.windows]

    def scalar_score():
        return [
            float(
                detector.svc.decision_function(detector.scaler.transform(row))[0]
            )
            for row in rows
        ]

    def batch_score():
        return detector.svc.decision_function(detector.scaler.transform(features))

    scalar_t = _best_of(scalar_score, rounds=20)
    batch_t = _best_of(batch_score, rounds=20)
    speedup = scalar_t / batch_t
    print(
        f"\nscoring stage: scalar {scalar_t * 1e6:.0f} us, "
        f"batch {batch_t * 1e6:.0f} us, speedup {speedup:.1f}x"
    )
    assert speedup >= 5.0

    # End to end (portrait -> features -> scores) the batch path must
    # still win, though peak geometry keeps part of the work per-window.
    scalar_e2e = _best_of(
        lambda: [detector.decision_value(w) for w in stream.windows], rounds=5
    )
    batch_e2e = _best_of(lambda: detector.decision_values(stream), rounds=5)
    print(
        f"end to end: scalar {scalar_e2e * 1e3:.2f} ms, "
        f"batch {batch_e2e * 1e3:.2f} ms, "
        f"speedup {scalar_e2e / batch_e2e:.2f}x"
    )
    assert batch_e2e < scalar_e2e
