"""Universal-model bench: is per-user enrollment worth it?

Leave-one-subject-out universal training vs the paper's per-user models
(see ``repro.experiments.universal``).  The expected outcome: the
universal model works -- SIFT checks inter-signal consistency, which
transfers across wearers -- but per-user enrollment buys several points
of accuracy, justifying the paper's protocol.
"""

import pytest

from repro.experiments.pipeline import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.universal import run_universal_study

from conftest import run_once


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        n_subjects=7,
        train_duration_s=360.0,
        test_duration_s=120.0,
        n_train_donors=3,
        n_test_donors=3,
    )


def test_universal_vs_per_user(benchmark, config, save_result):
    study = run_once(benchmark, lambda: run_universal_study(config), study="universal", unit="loso")

    rows = [
        [
            "per-user (paper)",
            f"{100 * study.per_user.false_positive_rate:.2f}",
            f"{100 * study.per_user.false_negative_rate:.2f}",
            f"{100 * study.per_user.accuracy:.2f}",
        ],
        [
            "universal (LOSO)",
            f"{100 * study.universal.false_positive_rate:.2f}",
            f"{100 * study.universal.false_negative_rate:.2f}",
            f"{100 * study.universal.accuracy:.2f}",
        ],
    ]
    save_result(
        "universal_model",
        format_table(["training", "FP %", "FN %", "Acc %"], rows)
        + "\n\nper-held-out-subject universal accuracy:\n"
        + "\n".join(
            f"  {subject_id}: {100 * report.accuracy:.1f}%"
            for subject_id, report in study.per_subject_universal.items()
        ),
    )

    # The universal model transfers...
    assert study.universal.accuracy > 0.7
    # ...but never meaningfully beats per-user enrollment.
    assert study.per_user.accuracy >= study.universal.accuracy - 0.02