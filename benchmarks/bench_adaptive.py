"""Adaptive-security bench (paper Insight #4).

Profiles the three builds, then plays a full battery discharge under each
switching policy and compares lifetime against time-weighted detection
accuracy -- the trade-off curve the paper's envisioned decision engine
navigates.
"""

import numpy as np
import pytest

from repro.adaptive import (
    AccuracyFirstPolicy,
    DecisionEngine,
    LifetimeTargetPolicy,
    SocThresholdPolicy,
)
from repro.adaptive.policy import VersionProfile
from repro.attacks import AttackScenario, ReplacementAttack
from repro.core import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.experiments.reporting import format_table
from repro.signals import SyntheticFantasia
from repro.sift_app import AmuletSIFTRunner

from conftest import run_once


@pytest.fixture(scope="module")
def candidates():
    data = SyntheticFantasia()
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]
    train = data.training_record(victim, duration=360.0)
    donors = [data.record(s, 120.0, "train") for s in others[:3]]
    test = data.test_record(victim)
    stream = AttackScenario(
        ReplacementAttack([data.record(s, 120.0, "test") for s in others[3:6]])
    ).build(test, np.random.default_rng(42))

    out = {}
    for version in DetectorVersion:
        detector = SIFTDetector(version=version).fit(train, donors)
        runner = AmuletSIFTRunner(detector)
        result = runner.run_stream(stream)
        out[version] = VersionProfile(
            version=version,
            accuracy=result.report.accuracy,
            profile=runner.profile(period_s=3.0),
        )
    return out


def test_adaptive_policies(benchmark, candidates, save_result):
    policies = {
        "accuracy_first": AccuracyFirstPolicy(),
        "soc_threshold": SocThresholdPolicy(),
        "lifetime_target_30d": LifetimeTargetPolicy(),
    }

    def simulate_all():
        timelines = {}
        for name, policy in policies.items():
            engine = DecisionEngine(candidates, policy)
            timelines[name] = engine.simulate_deployment(
                step_h=6.0,
                hours_needed=30 * 24.0 if name.startswith("lifetime") else 0.0,
            )
        return timelines

    timelines = run_once(benchmark, simulate_all, study="adaptive", unit="policies")

    rows = [
        [
            name,
            f"{t.lifetime_days:.1f}",
            f"{100 * t.time_weighted_accuracy:.2f}",
            str(t.n_switches),
            " -> ".join(v.value for v in t.versions_used()),
        ]
        for name, t in timelines.items()
    ]
    save_result(
        "adaptive_policies",
        format_table(
            ["policy", "lifetime_days", "avg_accuracy_%", "switches", "versions"],
            rows,
        ),
    )

    fixed = timelines["accuracy_first"]
    soc = timelines["soc_threshold"]
    target = timelines["lifetime_target_30d"]

    # Adaptive switching buys lifetime over the static best version...
    assert soc.lifetime_days > fixed.lifetime_days
    # ...at a bounded accuracy cost.
    assert soc.time_weighted_accuracy > fixed.time_weighted_accuracy - 0.06
    # The lifetime-target policy meets its 30-day mission.
    assert target.lifetime_days >= 29.0
    # Every policy keeps detection running until the battery dies.
    for timeline in timelines.values():
        assert timeline.points[-1].battery_soc > 0.0
        assert timeline.n_switches <= 4
