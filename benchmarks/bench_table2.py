"""Regenerates Table II: detection performance of the three versions.

The full paper protocol -- 12 subjects, 20-minute training, 2-minute
50 %-altered unseen test streams, both platforms -- runs once under the
benchmark timer.  Shape assertions encode the paper's qualitative result:

* Original and Simplified are comparable and both strong (>= ~85 %);
* Reduced is several points worse;
* the device (Amulet) rows track the reference (MATLAB) rows closely.
"""

import pytest

from repro.core.versions import DetectorVersion
from repro.experiments.table2 import (
    format_table2,
    format_table2_by_subject,
    run_table2,
)

from conftest import run_once


@pytest.fixture(scope="module")
def table2_result(request):
    """Computed lazily inside the benchmarked test, cached for asserts."""
    return {}


def test_reproduce_table2(benchmark, table2_result, save_result):
    result = run_once(benchmark, run_table2, study="table2")
    table2_result["result"] = result
    save_result("table2", format_table2(result))
    save_result("table2_by_subject", format_table2_by_subject(result))

    acc = {
        (row.version, row.platform): row.report.accuracy for row in result.rows
    }
    # Original ~ Simplified, both strong.
    for platform in ("amulet", "reference"):
        assert acc[(DetectorVersion.ORIGINAL, platform)] > 0.85
        assert acc[(DetectorVersion.SIMPLIFIED, platform)] > 0.85
        gap = abs(
            acc[(DetectorVersion.ORIGINAL, platform)]
            - acc[(DetectorVersion.SIMPLIFIED, platform)]
        )
        assert gap < 0.05
        # Reduced loses several points (paper: ~5-10).
        assert (
            acc[(DetectorVersion.REDUCED, platform)]
            < acc[(DetectorVersion.SIMPLIFIED, platform)] - 0.01
        )
        assert acc[(DetectorVersion.REDUCED, platform)] > 0.75

    # Device tracks reference per version.
    for version in DetectorVersion:
        assert abs(acc[(version, "amulet")] - acc[(version, "reference")]) < 0.05
