"""Benchmarks: the generated-C native scoring core vs the NumPy tiers.

``platform="native"`` compiles the whole scoring hot path (normalize ->
occupancy grid -> features -> decision value) to one C translation unit.
The contract is *bit parity at native speed*: these benches first assert
the native scores are bit-identical to the NumPy path on a long genuine
stream, then assert the throughput win that justifies the backend
(>= 2x windows/sec on every tier; measured ~3-4x on CI-class hardware).

Skips cleanly when the host has no C compiler (or, for the Original
tier, no SVML atan2) -- the fallback path is covered by the unit tests.
"""

import time

import numpy as np
import pytest

from repro.core import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.native import native_status
from repro.signals import SyntheticFantasia, iter_windows

from conftest import run_once

WINDOW_S = 3.0

#: Acceptance floor for the native win.  Dispatch overhead shrinks the
#: margin on the tiny --quick stream, so smoke runs only require a win.
MIN_SPEEDUP = 2.0
MIN_SPEEDUP_QUICK = 1.0


@pytest.fixture(scope="module")
def setup(quick):
    """Per-tier fitted detectors plus a long genuine evaluation stream."""
    data = SyntheticFantasia(n_subjects=4, seed=13)
    victim = data.subjects[0]
    others = data.subjects[1:]
    train = data.record(victim, 180.0, purpose="train")
    donors = [data.record(s, 60.0, purpose="train") for s in others[:3]]
    detectors = {}
    for version in DetectorVersion:
        detector = SIFTDetector(version=version)
        detector.fit(train, donors)
        detectors[version] = detector
    stream_s = 120.0 if quick else 900.0
    record = data.record(victim, stream_s, purpose="test")
    windows = list(iter_windows(record, window_s=WINDOW_S))
    return detectors, windows


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("version", list(DetectorVersion), ids=lambda v: v.value)
def test_native_scoring_speedup(benchmark, setup, quick, version):
    """Acceptance: native is bit-identical and >= 2x NumPy windows/sec."""
    available, reason = native_status(version)
    if not available:
        pytest.skip(f"native backend unavailable: {reason}")
    detectors, windows = setup
    detector = detectors[version]

    numpy_values = detector.decision_values(windows)
    detector.platform = "native"
    try:
        assert detector.native_active, detector.native_error

        # Parity before speed -- a fast wrong answer is no speedup.
        native_values = detector.decision_values(windows)
        assert np.array_equal(native_values, numpy_values)

        rounds = 3 if quick else 5
        native_t = _best_of(lambda: detector.decision_values(windows), rounds)
        detector.platform = "numpy"
        numpy_t = _best_of(lambda: detector.decision_values(windows), rounds)
        detector.platform = "native"

        speedup = numpy_t / native_t
        n = len(windows)
        print(
            f"\n{version.value}: numpy {n / numpy_t:.0f} windows/s, "
            f"native {n / native_t:.0f} windows/s, speedup {speedup:.2f}x"
        )

        # The recorded measurement: native wall-clock, with the measured
        # speedup riding along into the trajectory's units_detail.
        run_once(
            benchmark,
            lambda: detector.decision_values(windows),
            study="native",
            unit=version.value,
            sample=lambda values: {
                "n_windows": int(values.size),
                "speedup": round(speedup, 3),
                "numpy_windows_per_s": round(n / numpy_t, 3),
                "native_windows_per_s": round(n / native_t, 3),
            },
        )
        assert speedup >= (MIN_SPEEDUP_QUICK if quick else MIN_SPEEDUP)
    finally:
        detector.platform = "numpy"
