"""Runtime-chaos bench: the supervised gateway under seeded faults.

Two benches ride the perf trajectory via the ``chaos`` study: the
supervised serving path with *zero* injected faults (its overhead over
in-process scoring is the price of crash isolation -- keep it visible),
and the mixed fault schedule end to end (detection + restart + degraded
scoring), asserting the same invariants the chaos harness enforces:
conservation closes, every planned fault kind is detected, and nothing
leaks.
"""

from repro.faults.runtime import run_chaos_schedule
from repro.gateway import run_gateway_load

from conftest import run_once


def test_supervised_serving_overhead(benchmark, quick, save_result):
    """Zero-fault supervised serving: isolation overhead, conserved."""
    n_wearers = 32 if quick else 128
    stream_s = 12.0 if quick else 30.0

    report = run_once(
        benchmark,
        lambda: run_gateway_load(
            n_wearers=n_wearers,
            stream_s=stream_s,
            batch_size=64,
            loss_probability=0.02,
            supervised=True,
        ),
        study="chaos",
        unit="supervised-serving",
        sample=lambda r: {
            "n_windows": r.stats.verdicts,
            "p99_ms": r.p99_latency_s * 1e3,
        },
    )
    save_result("chaos_supervised_serving", report.summary())

    assert report.leaked_sessions == 0
    assert report.conservation_ok
    sup = report.supervisor
    assert sup is not None
    # A healthy child: everything scored in isolation, nothing degraded.
    assert sup.faults == 0
    assert sup.scored_isolated == report.stats.windows_scored
    assert sup.batches_degraded == 0
    assert sup.breaker_state == "closed"


def test_mixed_fault_schedule(benchmark, quick, save_result):
    """The mixed schedule: every fault kind injected and survived."""
    n_wearers = 8 if quick else 16
    stream_s = 12.0 if quick else 24.0

    chaos = run_once(
        benchmark,
        lambda: run_chaos_schedule(
            "mixed", n_wearers=n_wearers, stream_s=stream_s
        ),
        study="chaos",
        unit="schedule-mixed",
        sample=lambda r: {"n_windows": r.report.stats.verdicts},
    )
    save_result("chaos_mixed_schedule", "\n".join(
        f"{key}: {value}" for key, value in chaos.to_payload().items()
    ))

    # run_chaos_schedule already audited conservation, per-kind
    # detection, and session leaks (strict mode raises); pin the
    # headline numbers so a silently weakened schedule fails loudly.
    assert chaos.ok
    assert chaos.planned_faults >= 4
    sup = chaos.report.supervisor
    assert sup.faults >= chaos.planned_faults
    assert sup.restarts >= 1
    assert chaos.report.conservation_ok
