"""Ablation benches over the design choices the paper fixes.

Each test sweeps one knob on a mid-size cohort (7 subjects -- enough for
stable averages, small enough to keep the suite's runtime reasonable),
saves the sweep table and asserts the qualitative finding.

The cohort-mean sweeps honour ``--jobs N``: each setting's per-subject
runs fan over a worker pool fed by the zero-copy dataset plane, cutting
the sweep's wall-clock without changing a single number.
"""

import pytest

from repro.experiments.ablations import (
    attack_type_ablation,
    classifier_ablation,
    feature_class_ablation,
    fixed_point_ablation,
    grid_size_ablation,
    mixed_attack_training_ablation,
    training_duration_ablation,
    window_size_ablation,
)
from repro.experiments.pipeline import ExperimentConfig
from repro.experiments.reporting import format_table

from conftest import run_once


@pytest.fixture(scope="module")
def config():
    """Mid-size protocol: full-length test streams, 7 subjects."""
    return ExperimentConfig(
        n_subjects=7,
        train_duration_s=360.0,
        test_duration_s=120.0,
        n_train_donors=3,
        n_test_donors=3,
    )


def _table(rows, columns):
    return format_table(
        columns,
        [[f"{row[c]:.4g}" if isinstance(row[c], float) else str(row[c]) for c in columns] for row in rows],
    )


def test_window_size(benchmark, config, save_result, jobs):
    rows = run_once(benchmark, lambda: window_size_ablation(config, jobs=jobs), study="ablations", unit="window_size")
    save_result(
        "ablation_window_size",
        _table(rows, ["window_s", "accuracy", "fp_rate", "fn_rate", "f1"]),
    )
    by_window = {row["window_s"]: row["accuracy"] for row in rows}
    # w = 3 s (the paper's choice) is competitive with the best setting.
    assert by_window[3.0] >= max(by_window.values()) - 0.08
    # All settings beat chance clearly.
    assert min(by_window.values()) > 0.6


def test_grid_size(benchmark, config, save_result, jobs):
    rows = run_once(benchmark, lambda: grid_size_ablation(config, jobs=jobs), study="ablations", unit="grid_size")
    save_result(
        "ablation_grid_size",
        _table(rows, ["grid_n", "accuracy", "fp_rate", "fn_rate", "f1"]),
    )
    by_grid = {row["grid_n"]: row["accuracy"] for row in rows}
    # n = 50 (the paper's choice) is competitive.
    assert by_grid[50] >= max(by_grid.values()) - 0.05


def test_training_duration(benchmark, config, save_result, jobs):
    rows = run_once(benchmark, lambda: training_duration_ablation(config, jobs=jobs), study="ablations", unit="training_duration")
    save_result(
        "ablation_training_duration",
        _table(rows, ["train_duration_s", "accuracy", "fp_rate", "fn_rate", "f1"]),
    )
    accuracies = [row["accuracy"] for row in rows]
    # More training data never hurts much: the longest duration is within
    # a hair of the best, and clearly above the shortest.
    assert accuracies[-1] >= max(accuracies) - 0.03
    assert accuracies[-1] >= accuracies[0] - 0.02


def test_feature_classes(benchmark, config, save_result, jobs):
    rows = run_once(benchmark, lambda: feature_class_ablation(config, jobs=jobs), study="ablations", unit="feature_classes")
    save_result(
        "ablation_feature_classes",
        _table(rows, ["features", "n_features", "accuracy", "f1"]),
    )
    by_name = {row["features"]: row["accuracy"] for row in rows}
    # The combination beats either class alone -- the reason the Reduced
    # build (geometric only) loses accuracy in Table II.
    assert by_name["both (simplified)"] >= by_name["matrix_only"]
    assert by_name["both (simplified)"] >= by_name["geometric_only (reduced)"] - 0.01


def test_classifier_choice(benchmark, config, save_result):
    rows = run_once(benchmark, lambda: classifier_ablation(config), study="ablations", unit="classifier")
    save_result(
        "ablation_classifier",
        _table(rows, ["classifier", "accuracy", "f1"]),
    )
    by_name = {row["classifier"]: row["accuracy"] for row in rows}
    # "SVM performed the best among the algorithms we tried" -- allow a
    # small margin since baselines are competently tuned.
    best = max(by_name.values())
    assert by_name["svm_linear"] >= best - 0.03
    assert by_name["svm_linear"] >= by_name["centroid"] - 0.02


def test_fixed_point_precision(benchmark, config, save_result):
    rows = run_once(benchmark, lambda: fixed_point_ablation(config), study="ablations", unit="fixed_point")
    save_result(
        "ablation_fixed_point",
        _table(rows, ["frac_bits", "accuracy", "agreement_with_float"]),
    )
    by_bits = {row["frac_bits"]: row["agreement_with_float"] for row in rows}
    # Agreement with the float model grows with precision; the deployed
    # Q17.14 format is effectively lossless.
    assert by_bits[14] >= 0.98
    assert by_bits[14] >= by_bits[4]


def test_attack_types(benchmark, config, save_result):
    rows = run_once(benchmark, lambda: attack_type_ablation(config), study="ablations", unit="attack_types")
    save_result(
        "ablation_attack_types",
        _table(rows, ["attack", "accuracy", "fn_rate", "fp_rate"]),
    )
    by_attack = {row["attack"]: row for row in rows}
    # The trained-for attack is detected best.
    assert by_attack["replacement"]["accuracy"] > 0.8
    # Replay and morphology transfer reasonably (attack-agnostic claim)...
    assert by_attack["replay"]["accuracy"] > 0.6
    assert by_attack["morphology"]["accuracy"] > 0.6
    # ...but low-amplitude in-band interference is a genuine blind spot.
    assert (
        by_attack["interference"]["fn_rate"]
        > by_attack["replacement"]["fn_rate"]
    )


def test_mixed_attack_training(benchmark, config, save_result):
    rows = run_once(benchmark, lambda: mixed_attack_training_ablation(config), study="ablations", unit="mixed_attack_training")
    save_result(
        "ablation_mixed_attack_training",
        _table(rows, ["training", "eval_attack", "accuracy", "fn_rate", "fp_rate"]),
    )
    by_key = {(row["training"], row["eval_attack"]): row for row in rows}
    # Mixed training closes the interference blind spot dramatically...
    assert (
        by_key[("mixed", "interference")]["fn_rate"]
        < 0.5 * by_key[("replacement_only", "interference")]["fn_rate"]
    )
    # ...at a real but bounded cost on replacement detection (the
    # replacement positives are diluted to a third of the class) -- the
    # classic coverage-vs-specialization trade-off.
    assert (
        by_key[("mixed", "replacement")]["accuracy"]
        > by_key[("replacement_only", "replacement")]["accuracy"] - 0.15
    )
    assert by_key[("mixed", "replacement")]["accuracy"] > 0.7
