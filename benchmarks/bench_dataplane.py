"""The zero-copy dataset plane: fan-out cost with and without it.

Two measurements, both honest about what the plane buys:

* **Acquisition stage** -- how long a process takes to obtain the cohort
  record working set.  Attaching shared-memory views is orders of
  magnitude faster than synthesizing (and re-detecting peaks on) the
  recordings, and this is exactly the work every worker used to repeat.
* **End-to-end fan-out** -- wall-clock of a multi-version cohort run
  with ``share_dataset`` on vs off, parent cache cleared first so the
  off mode cannot coast on fork-inherited records.  At benchmark scale
  evaluation dominates, so the end-to-end assertion is equivalence plus
  "the plane never makes fan-out meaningfully slower"; the acquisition
  ratio is where the zero-copy design shows.

Both modes must produce identical outcomes, and neither may leak a
``/dev/shm`` segment (the CI leak-check step re-asserts this after the
whole suite).
"""

from __future__ import annotations

import time

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.cache import EXPERIMENT_CACHE
from repro.experiments.dataplane import (
    _ATTACHED,
    DatasetPlane,
    attach_records,
    leaked_segments,
    realize_cohort_records,
)
from repro.experiments.runner import CohortRunner

from conftest import run_once

VERSIONS = ("reduced", "simplified")


@pytest.fixture(scope="module")
def config(request) -> ExperimentConfig:
    if request.config.getoption("--quick"):
        return ExperimentConfig.quick()
    return ExperimentConfig(
        n_subjects=6,
        train_duration_s=600.0,
        test_duration_s=120.0,
        n_train_donors=3,
        n_test_donors=2,
    )


def _fanout(config: ExperimentConfig, share: bool):
    """One timed multi-version cohort fan-out from a cold parent cache."""
    EXPERIMENT_CACHE.clear()
    start = time.perf_counter()
    with CohortRunner(
        config=config, jobs=2, with_device=False, share_dataset=share
    ) as runner:
        outcomes = [runner.run_version(v) for v in VERSIONS]
    return time.perf_counter() - start, outcomes


def test_attach_vs_synthesis_acquisition(benchmark, config, save_result):
    """The stage the plane removes from every worker, measured directly."""
    EXPERIMENT_CACHE.clear()
    start = time.perf_counter()
    records = realize_cohort_records(config)
    synthesis_s = time.perf_counter() - start

    with DatasetPlane.publish(records, backend="shm") as plane:
        start = time.perf_counter()
        _ATTACHED.clear()
        EXPERIMENT_CACHE.clear()
        attached = run_once(benchmark, lambda: attach_records(plane.manifest), study="dataplane", unit="attach")
        attach_s = time.perf_counter() - start
        assert set(attached) == set(records)
        EXPERIMENT_CACHE.clear()
        for stale in _ATTACHED.values():
            stale.records.clear()
        _ATTACHED.clear()

    ratio = synthesis_s / attach_s
    save_result(
        "dataplane_acquisition",
        f"cohort working set: {len(records)} records, "
        f"{sum(r.nbytes for r in records.values()) / 2**20:.1f} MiB\n"
        f"synthesize (per worker, without plane): {synthesis_s * 1e3:.1f} ms\n"
        f"attach shared views (with plane):       {attach_s * 1e3:.3f} ms\n"
        f"acquisition speedup: {ratio:.0f}x",
    )
    # Attaching must beat re-synthesis by a wide margin -- this is the
    # per-worker rebuild the plane exists to remove.
    assert ratio >= 20.0
    assert leaked_segments() == []


def test_cohort_fanout_with_and_without_plane(config, save_result):
    """End-to-end fan-out: identical outcomes, no leaked segments, and
    no meaningful wall-clock regression from publishing the plane."""
    _fanout(config, share=True)  # warm code paths and the fork machinery
    without_s, without = _fanout(config, share=False)
    with_s, with_plane = _fanout(config, share=True)

    for off_version, on_version in zip(without, with_plane):
        for a, b in zip(off_version, on_version):
            assert a.ok and b.ok
            assert a.result.reference_report == b.result.reference_report

    save_result(
        "dataplane_fanout",
        f"cohort fan-out, jobs=2, versions={list(VERSIONS)}\n"
        f"without plane (per-worker synthesis): {without_s:.2f} s\n"
        f"with plane (shared-memory attach):    {with_s:.2f} s\n"
        f"speedup: {without_s / with_s:.2f}x",
    )
    # Evaluation dominates at this scale, so the plane's win here is
    # bounded -- but it must never cost meaningful wall-clock either.
    assert with_s <= without_s * 1.5
    assert leaked_segments() == []
