"""Crash-isolated scoring behind the gateway: the supervision layer.

PR 7's gateway scored micro-batches in-process: one wedged or crashing
``decision_values`` call -- a native BLAS fault, an OOM kill, a poisoned
batch -- takes every wearer's verdict stream down with it.  This module
moves scoring behind a :class:`ScoringBackend` interface and supplies
two implementations:

* :class:`InProcessBackend` -- the PR 7 behaviour, bit-identical and
  zero-overhead; the default, and the *degraded* backend the supervisor
  falls back to when the isolated scorer is unhealthy.
* :class:`SupervisedScoringBackend` -- scoring in a child process,
  watched like a supervision tree watches a worker:

  - a **heartbeat watchdog**: the child beats every
    ``heartbeat_interval_s``; a silent child is declared *stalled* after
    ``heartbeat_timeout_s`` even if the pipe is technically open (a
    GIL-holding native spin never answers, but it also never beats);
  - a **per-batch timeout** (``batch_timeout_s``): a batch that beats but
    never finishes is declared *timed out*;
  - **bounded retry with jittered exponential backoff**: every failure
    kills and restarts the child, sleeping through the same
    :class:`~repro.core.backoff.JitteredBackoff` helper the hardened
    cohort runner uses, so a fleet of supervisors does not hammer a
    shared failing resource in lockstep;
  - a **circuit breaker**: ``breaker_threshold`` consecutive batch
    failures trip it open; while open, batches route straight to the
    degraded in-process backend for ``breaker_cooldown_batches`` batches
    (counted, not timed -- deterministic under test), then a half-open
    probe decides between closing it and re-opening.

Every shed, retried, and degraded batch is explicitly counted in
:class:`SupervisorStats`, and a batch the supervisor ultimately cannot
score raises :class:`ScoringUnavailable` -- the gateway converts those
windows to abstain verdicts, so the conservation invariant
``verdicts + shed + incomplete + vanished == sent`` closes under *any*
fault schedule.

Determinism: the same fitted detectors produce bit-identical decision
values in the child and in the parent (same arrays, same BLAS), and
pickling ``float64`` results over the pipe is exact -- with zero
injected faults the supervised gateway's verdict stream is bit-identical
to the in-process one.  Fault injection for the chaos harness happens
*child-side* via a ``fault_plan`` (see :mod:`repro.faults.runtime`) keyed
by a global request ordinal, so fault schedules are reproducible and
retries (fresh ordinals) are not re-poisoned unless the plan says so.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import Connection
from typing import Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.backoff import JitteredBackoff
from repro.core.detector import SIFTDetector
from repro.signals.dataset import SignalWindow

__all__ = [
    "InProcessBackend",
    "NativeBackend",
    "ScorerFault",
    "ScoringBackend",
    "ScoringUnavailable",
    "SupervisedScoringBackend",
    "SupervisorStats",
]


class ScoringUnavailable(RuntimeError):
    """No backend could score the batch; the caller must abstain.

    Raised only after the whole escalation ladder -- retries, restarts,
    the degraded backend -- has been exhausted, so every window in the
    batch still gets an explicit (abstain) verdict and conservation
    closes.
    """


@runtime_checkable
class ScoringBackend(Protocol):
    """Where the gateway's micro-batches get their decision values.

    ``key`` identifies the fitted detector tier (its version string);
    the backend owns the keyed detectors.  ``score`` must return one
    ``float64`` value per window, bit-identical to
    :meth:`~repro.core.detector.SIFTDetector.decision_values` on the
    same detector -- backends differ in *where* scoring runs, never in
    what it computes.
    """

    def start(self) -> None: ...

    def score(self, key: str, windows: Sequence[SignalWindow]) -> np.ndarray: ...

    def close(self) -> None: ...


class InProcessBackend:
    """Score on the caller's thread -- PR 7's behaviour, and the degraded
    fallback the supervisor trips to when the isolated scorer is sick."""

    def __init__(self, detectors: Mapping[str, SIFTDetector]) -> None:
        if not detectors:
            raise ValueError("need at least one detector")
        self.detectors = dict(detectors)

    def start(self) -> None:
        return None

    def score(self, key: str, windows: Sequence[SignalWindow]) -> np.ndarray:
        return self.detectors[key].decision_values(windows)

    def close(self) -> None:
        return None


class NativeBackend(InProcessBackend):
    """In-process scoring through the generated-C hot path.

    Each detector is switched to ``platform="native"`` and its extension
    is built (or fetched from the artifact cache) eagerly at
    construction -- *before* the gateway's event loop exists, because a
    compiler run inside the loop would stall every wearer's intake (the
    very thing the loop-stall sanitizer polices).  A missing toolchain
    therefore surfaces as a one-time ``RuntimeWarning`` at build time,
    and a detector whose build fails simply keeps scoring on the NumPy
    path -- the parity contract makes the two indistinguishable except
    in speed.  ``platform_by_key`` records which path each tier ended
    up on.

    Note on crash isolation: this backend runs the compiled code in the
    gateway process.  To combine native speed *with* crash isolation,
    ship native-platform detectors into a
    :class:`SupervisedScoringBackend` instead -- pickling drops the
    library handle and the supervised child rebuilds it from the artifact
    cache on first use, so a native fault kills the child, not the
    gateway.
    """

    def __init__(self, detectors: Mapping[str, SIFTDetector]) -> None:
        super().__init__(detectors)
        self.platform_by_key: dict[str, str] = {}
        for key, detector in self.detectors.items():
            detector.platform = "native"
            self.platform_by_key[key] = (
                "native" if detector.native_active else "numpy"
            )


@dataclass(frozen=True)
class SupervisorStats:
    """Counters of everything the supervision layer did.

    ``crashes``/``stalls``/``timeouts``/``poisons`` classify detected
    faults by signal (process death, heartbeat silence, batch deadline,
    child-reported exception).  ``retries`` counts re-submissions,
    ``restarts`` child respawns, ``breaker_trips`` closed->open
    transitions.  ``batches_degraded``/``windows_degraded`` count work
    the degraded backend absorbed; ``batches_unscorable`` /
    ``windows_unscorable`` count work nothing could score (surfaced to
    the gateway as abstains).  ``recovery_s_total`` sums kill+respawn
    time per restart (perf_counter-based, one sample per restart, the
    deliberate backoff sleep excluded) over ``recoveries``.
    """

    requests: int
    scored_isolated: int
    crashes: int
    stalls: int
    timeouts: int
    poisons: int
    retries: int
    restarts: int
    breaker_trips: int
    breaker_state: str
    batches_degraded: int
    windows_degraded: int
    batches_unscorable: int
    windows_unscorable: int
    recoveries: int
    recovery_s_total: float

    @property
    def faults(self) -> int:
        return self.crashes + self.stalls + self.timeouts + self.poisons

    @property
    def mean_recovery_s(self) -> float:
        return self.recovery_s_total / self.recoveries if self.recoveries else 0.0


class ScorerFault(RuntimeError):
    """One failed scoring attempt against the child (internal).

    ``kind`` is the detection signal: ``"crash"`` (process died /
    pipe closed), ``"stall"`` (heartbeat silence), ``"timeout"`` (batch
    deadline), ``"poison"`` (child-reported exception).
    """

    def __init__(self, kind: str, detail: str) -> None:
        if kind not in ("crash", "stall", "timeout", "poison"):
            raise ValueError(f"unknown fault kind: {kind!r}")
        super().__init__(f"[{kind}] {detail}")
        self.kind = kind
        self.detail = detail


# -- the child ----------------------------------------------------------


def _heartbeat_loop(
    conn: Connection,
    send_lock: threading.Lock,
    interval_s: float,
    paused: threading.Event,
) -> None:
    """Child-side daemon: beat until the pipe dies or a stall is staged."""
    while True:
        time.sleep(interval_s)
        if paused.is_set():
            continue
        try:
            with send_lock:
                conn.send(("hb", time.time()))
        except (BrokenPipeError, OSError):
            return


def _scorer_child_main(
    conn: Connection,
    detectors: Mapping[str, SIFTDetector],
    heartbeat_interval_s: float,
    fault_plan: object | None,
) -> None:
    """Entry point of the isolated scorer process.

    Protocol (parent -> child): ``("score", ordinal, key, windows)`` or
    ``("stop",)``.  Child -> parent: ``("hb", wallclock)`` heartbeats,
    ``("ok", ordinal, values)`` results, ``("err", ordinal, message)``
    for batches that raised (poison).  ``fault_plan`` is consulted per
    request ordinal to act out the chaos harness's schedule *inside*
    the child -- where real faults would occur.
    """
    send_lock = threading.Lock()
    stall = threading.Event()
    beater = threading.Thread(
        target=_heartbeat_loop,
        args=(conn, send_lock, heartbeat_interval_s, stall),
        daemon=True,
    )
    beater.start()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            return
        _, ordinal, key, windows = message
        action = None
        if fault_plan is not None:
            action = fault_plan.action_for(ordinal)  # type: ignore[attr-defined]
        if action is not None:
            kind, delay_s = action
            if kind == "crash":
                os._exit(13)
            if kind == "stall":
                # A wedged process neither beats nor answers; park until
                # the parent gives up and kills us.
                stall.set()
                time.sleep(3600.0)
            if kind == "slow":
                time.sleep(delay_s)
            if kind == "poison":
                with send_lock:
                    conn.send(("err", ordinal, "injected poison batch"))
                continue
        try:
            values = detectors[key].decision_values(windows)
        except Exception as exc:  # noqa: BLE001 -- reported, not raised
            with send_lock:
                conn.send(("err", ordinal, f"{type(exc).__name__}: {exc}"))
            continue
        with send_lock:
            conn.send(("ok", ordinal, values))


# -- the parent ---------------------------------------------------------


class SupervisedScoringBackend:
    """Crash-isolated scoring with watchdog, retry, and circuit breaker.

    Parameters
    ----------
    detectors:
        Fitted detectors by key (version string).  They are shipped to
        the child once at start (fork inheritance or pickle) -- batches
        only carry windows, never models.
    degraded:
        The backend batches route to when isolation is unhealthy.  The
        default builds an :class:`InProcessBackend` over the same
        detectors, so degraded scores stay bit-identical and only the
        isolation property is lost.  Pass ``None`` to abstain instead
        (every degraded batch then raises :class:`ScoringUnavailable`).
    heartbeat_interval_s / heartbeat_timeout_s:
        Child beat period and the silence after which it is declared
        stalled.
    batch_timeout_s:
        Deadline for any single scoring attempt.
    max_retries:
        Re-submissions allowed per batch after a failed attempt; each
        retry restarts the child first.
    backoff_base_s / backoff_jitter / backoff_seed:
        The restart backoff (shared :class:`JitteredBackoff` policy).
    breaker_threshold:
        Consecutive *batch* failures (after retries) that trip the
        breaker open.
    breaker_cooldown_batches:
        How many batches route to the degraded backend before a
        half-open probe; counted in batches, not seconds, so fault
        schedules replay deterministically.
    fault_plan:
        Chaos-harness hook, executed child-side (see
        :mod:`repro.faults.runtime`); ``None`` in production.
    """

    def __init__(
        self,
        detectors: Mapping[str, SIFTDetector],
        degraded: ScoringBackend | None | str = "in-process",
        heartbeat_interval_s: float = 0.02,
        heartbeat_timeout_s: float = 1.0,
        batch_timeout_s: float = 10.0,
        max_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_jitter: float = 0.5,
        backoff_seed: int = 0,
        breaker_threshold: int = 3,
        breaker_cooldown_batches: int = 8,
        fault_plan: object | None = None,
    ) -> None:
        if not detectors:
            raise ValueError("need at least one detector")
        if heartbeat_interval_s <= 0 or heartbeat_timeout_s <= 0:
            raise ValueError("heartbeat intervals must be positive")
        if heartbeat_timeout_s <= heartbeat_interval_s:
            raise ValueError("heartbeat_timeout_s must exceed the interval")
        if batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if breaker_cooldown_batches < 1:
            raise ValueError("breaker_cooldown_batches must be >= 1")
        self.detectors = dict(detectors)
        if degraded == "in-process":
            degraded = InProcessBackend(self.detectors)
        self.degraded = degraded
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.batch_timeout_s = float(batch_timeout_s)
        self.max_retries = int(max_retries)
        self.backoff = JitteredBackoff(
            backoff_base_s,
            cap_s=backoff_cap_s,
            jitter=backoff_jitter,
            seed=backoff_seed,
        )
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown_batches = int(breaker_cooldown_batches)
        self.fault_plan = fault_plan
        self._ctx = get_context("fork" if "fork" in _start_methods() else "spawn")
        self._process = None
        self._conn: Connection | None = None
        self._started = False
        # Breaker state machine: "closed" | "open" | "half-open".
        self._breaker = "closed"
        self._cooldown_left = 0
        self._consecutive_failures = 0
        # Counters (see SupervisorStats).
        self.requests_sent = 0  # global request ordinal (fault-plan key)
        self.requests = 0
        self.scored_isolated = 0
        self.crashes = 0
        self.stalls = 0
        self.timeouts = 0
        self.poisons = 0
        self.retries = 0
        self.restarts = 0
        self.breaker_trips = 0
        self.batches_degraded = 0
        self.windows_degraded = 0
        self.batches_unscorable = 0
        self.windows_unscorable = 0
        self.recoveries = 0
        self.recovery_s_total = 0.0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn the scorer child (idempotent)."""
        if not self._started:
            self._started = True
            self._spawn()

    def _spawn(self) -> None:
        # Refuse to respawn once closed: scoring now runs on a worker
        # thread, so a restart attempt can race close()/abort() -- a
        # child spawned after close() would leak.  The thread's next
        # _request then fails as a crash and the ladder falls through to
        # the degraded leg (or ScoringUnavailable) instead.
        if not self._started:
            return
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_scorer_child_main,
            args=(
                child_conn,
                self.detectors,
                self.heartbeat_interval_s,
                self.fault_plan,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._process = process
        self._conn = parent_conn

    def _kill_child(self) -> None:
        process, self._process = self._process, None
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()
        if process is not None:
            if process.is_alive():
                process.kill()
            process.join(timeout=5.0)
            process.close()

    def _restart(self, attempt: int | None) -> None:
        """Kill + backoff + respawn; the restart-with-backoff leg.

        Every restart records one recovery sample: the kill plus respawn
        time, *excluding* the deliberate backoff sleep in between --
        that sleep is retry policy, not recovery work, and folding it in
        would report the backoff schedule as recovery latency.  Pass
        ``attempt=None`` to skip the backoff entirely (the final-attempt
        respawn, where the breaker/degraded leg takes over immediately).
        """
        kill_began = time.perf_counter()
        self._kill_child()
        kill_s = time.perf_counter() - kill_began
        if attempt is not None:
            self.backoff.sleep(attempt)
        spawn_began = time.perf_counter()
        self._spawn()
        spawn_s = time.perf_counter() - spawn_began
        self.restarts += 1
        self.recoveries += 1
        self.recovery_s_total += kill_s + spawn_s

    def close(self) -> None:
        """Stop the child (politely, then by force) and the degraded leg."""
        conn = self._conn
        if conn is not None:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        self._kill_child()
        self._started = False
        if self.degraded is not None:
            self.degraded.close()

    @property
    def child_pid(self) -> int | None:
        return self._process.pid if self._process is not None else None

    # -- scoring --------------------------------------------------------

    def score(self, key: str, windows: Sequence[SignalWindow]) -> np.ndarray:
        """Score one batch through the supervision ladder.

        closed: try the child (with retries + restarts); on final
        failure count it, maybe trip the breaker, and fall through to
        the degraded backend.  open: route to degraded while the
        cooldown runs.  half-open: one probe batch decides.
        """
        if not self._started:
            raise RuntimeError("backend not started")
        self.requests += 1
        if self._breaker == "open":
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                return self._score_degraded(windows, key)
            self._breaker = "half-open"
        try:
            values = self._score_isolated(key, windows)
        except ScorerFault:
            self._consecutive_failures += 1
            if self._breaker == "half-open" or (
                self._breaker == "closed"
                and self._consecutive_failures >= self.breaker_threshold
            ):
                self._trip_breaker()
            return self._score_degraded(windows, key)
        self._consecutive_failures = 0
        if self._breaker == "half-open":
            self._breaker = "closed"
        self.scored_isolated += len(windows)
        return values

    def _trip_breaker(self) -> None:
        self._breaker = "open"
        self._cooldown_left = self.breaker_cooldown_batches
        self.breaker_trips += 1

    def _score_degraded(self, windows: Sequence[SignalWindow], key: str) -> np.ndarray:
        if self.degraded is None:
            self.batches_unscorable += 1
            self.windows_unscorable += len(windows)
            raise ScoringUnavailable(
                f"isolated scorer unhealthy and no degraded backend "
                f"({len(windows)} windows abstain)"
            )
        self.batches_degraded += 1
        self.windows_degraded += len(windows)
        return self.degraded.score(key, windows)

    def _score_isolated(
        self, key: str, windows: Sequence[SignalWindow]
    ) -> np.ndarray:
        """One batch against the child, with bounded retry + restart."""
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._request(key, windows)
            except ScorerFault as fault:
                self._count_fault(fault)
                if attempt > self.max_retries:
                    # Final attempt: respawn without backoff so the next
                    # batch finds a live child; report up so the breaker
                    # and degraded leg take over this batch.
                    self._restart(None)
                    raise
                self.retries += 1
                self._restart(attempt)

    def _count_fault(self, fault: ScorerFault) -> None:
        if fault.kind == "crash":
            self.crashes += 1
        elif fault.kind == "stall":
            self.stalls += 1
        elif fault.kind == "timeout":
            self.timeouts += 1
        else:
            self.poisons += 1

    def _request(self, key: str, windows: Sequence[SignalWindow]) -> np.ndarray:
        """One send/receive round trip, classifying every failure mode."""
        conn = self._conn
        process = self._process
        if conn is None or process is None or not process.is_alive():
            raise ScorerFault("crash", "scorer child is not running")
        self.requests_sent += 1
        ordinal = self.requests_sent
        try:
            conn.send(("score", ordinal, key, list(windows)))
        except (BrokenPipeError, OSError) as exc:
            raise ScorerFault("crash", f"send failed: {exc}") from None
        started = time.perf_counter()
        last_beat = started
        while True:
            now = time.perf_counter()
            if now - started > self.batch_timeout_s:
                raise ScorerFault(
                    "timeout",
                    f"batch exceeded {self.batch_timeout_s:.3f} s deadline",
                )
            if now - last_beat > self.heartbeat_timeout_s:
                raise ScorerFault(
                    "stall",
                    f"no heartbeat for {now - last_beat:.3f} s",
                )
            if not conn.poll(self.heartbeat_interval_s):
                if not process.is_alive():
                    raise ScorerFault("crash", "scorer child died mid-batch")
                continue
            try:
                message = conn.recv()
            except (EOFError, OSError):
                raise ScorerFault("crash", "pipe closed mid-batch") from None
            if message[0] == "hb":
                last_beat = time.perf_counter()
                continue
            if message[0] == "err":
                _, got_ordinal, detail = message
                if got_ordinal != ordinal:
                    continue  # stale reply from a previous incarnation
                raise ScorerFault("poison", detail)
            _, got_ordinal, values = message
            if got_ordinal != ordinal:
                continue  # stale reply from before a restart
            return np.asarray(values, dtype=np.float64)

    # -- accounting -----------------------------------------------------

    def stats(self) -> SupervisorStats:
        return SupervisorStats(
            requests=self.requests,
            scored_isolated=self.scored_isolated,
            crashes=self.crashes,
            stalls=self.stalls,
            timeouts=self.timeouts,
            poisons=self.poisons,
            retries=self.retries,
            restarts=self.restarts,
            breaker_trips=self.breaker_trips,
            breaker_state=self._breaker,
            batches_degraded=self.batches_degraded,
            windows_degraded=self.windows_degraded,
            batches_unscorable=self.batches_unscorable,
            windows_unscorable=self.windows_unscorable,
            recoveries=self.recoveries,
            recovery_s_total=self.recovery_s_total,
        )


def _start_methods() -> list[str]:
    import multiprocessing

    return multiprocessing.get_all_start_methods()
