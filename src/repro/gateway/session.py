"""Per-wearer session state for the ingestion gateway.

A :class:`WearerSession` is everything the gateway must remember about
one live wearer: bounded window assembly (the same
:class:`~repro.wiot.assembly.WindowAssembler` the base station uses),
the SQI gate verdict history, the wearer's *own* adaptive-tier
controller, and the k-of-n alert debouncer.  Scoring is deliberately
absent -- the gateway scores windows from many sessions in one
cross-session micro-batch and feeds each session's results back in
arrival order, which is why the debouncer is driven through
:meth:`~repro.core.streaming.StreamingDetector.advance_value` /
``abstain_window`` instead of ``process_window``.

Per-session state is O(1) in stream length: assembly is bounded by
construction, the debouncer's horizon is ``vote_window`` entries, and
the verdict history is a fixed-size ring (counters carry the totals).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.adaptive.degradation import DegradationController
from repro.core.detector import SIFTDetector
from repro.core.streaming import StreamingDetector
from repro.core.versions import DetectorVersion
from repro.signals.dataset import SignalWindow
from repro.signals.quality import QualityReport, SignalQualityIndex
from repro.wiot.assembly import WindowAssembler
from repro.wiot.channel import DeliveredPacket

__all__ = ["SessionVerdict", "WearerSession", "window_from_slot"]


@dataclass(frozen=True)
class SessionVerdict:
    """One wearer window's outcome, as emitted by the gateway.

    ``latency_s`` is the assembled-to-decided interval, measured with
    ``time.perf_counter()`` (monotonic; wall clocks can step backwards
    mid-measurement).  An abstained verdict carries a NaN
    ``decision_value`` and ``altered=False`` -- scoring must exclude it,
    exactly as with :class:`~repro.wiot.basestation.WindowVerdict`.
    """

    wearer_id: str
    sequence: int
    time_s: float
    altered: bool
    decision_value: float
    version: str
    abstained: bool = False
    sqi: float | None = None
    latency_s: float = 0.0


def window_from_slot(
    slot: dict[str, DeliveredPacket], subject_id: str = ""
) -> SignalWindow:
    """The device-format (float32) window of one assembled sequence slot.

    Mirrors the base station's :class:`~repro.sift_app.payload
    .DeviceWindow` construction so the gateway's quality gate and
    detector see exactly the payload an Amulet deployment would.
    """
    ecg = slot["ecg"].packet
    abp = slot["abp"].packet
    if ecg.samples.size != abp.samples.size:
        raise ValueError(
            f"window {ecg.sequence}: ECG and ABP packet lengths differ "
            f"({ecg.samples.size} vs {abp.samples.size})"
        )
    return SignalWindow(
        ecg=ecg.samples.astype(np.float32),
        abp=abp.samples.astype(np.float32),
        r_peaks=np.asarray(ecg.peak_indexes, dtype=np.intp),
        systolic_peaks=np.asarray(abp.peak_indexes, dtype=np.intp),
        sample_rate=ecg.sample_rate,
        subject_id=subject_id,
    )


class WearerSession:
    """One wearer's live serving state.

    Parameters mirror :class:`~repro.core.streaming.StreamingDetector`
    (the sequential equivalent this session must match bit-for-bit),
    plus the assembly bounds.  ``degradation`` must be this session's
    *own* controller (the gateway clones its template per session).
    """

    def __init__(
        self,
        wearer_id: str,
        detector: SIFTDetector,
        quality_gate: SignalQualityIndex | None = None,
        fallbacks: dict[DetectorVersion, SIFTDetector] | None = None,
        degradation: DegradationController | None = None,
        votes_needed: int = 2,
        vote_window: int = 3,
        max_pending_lag: int | None = None,
        dedup_capacity: int = 1024,
        verdict_history: int = 64,
    ) -> None:
        if degradation is not None and quality_gate is None:
            raise ValueError("degradation requires a quality_gate")
        self.wearer_id = wearer_id
        self.detector = detector
        self.quality_gate = quality_gate
        self.fallbacks = dict(fallbacks) if fallbacks else {}
        self.degradation = degradation
        self.assembler = WindowAssembler(
            max_pending_lag=max_pending_lag, dedup_capacity=dedup_capacity
        )
        self.debouncer = StreamingDetector(
            detector, votes_needed=votes_needed, vote_window=vote_window
        )
        self.recent_verdicts: deque[SessionVerdict] = deque(maxlen=verdict_history)
        self.windows_assembled = 0
        self.windows_abstained = 0
        self.windows_scored = 0
        self.windows_shed = 0
        self.inflight = 0
        self.ending = False
        self.closed = False

    # -- intake ---------------------------------------------------------

    def assemble(
        self, delivered: DeliveredPacket
    ) -> tuple[int, float, SignalWindow] | None:
        """Absorb one delivery; ``(sequence, time_s, window)`` on completion."""
        completed = self.assembler.offer(delivered)
        if completed is None:
            return None
        sequence, slot = completed
        self.windows_assembled += 1
        window = window_from_slot(slot, subject_id=self.wearer_id)
        return sequence, slot["ecg"].packet.start_time_s, window

    def assess(self, window: SignalWindow) -> QualityReport | None:
        """Run the SQI gate (observing the tier controller); None = no gate.

        Called once per assembled window, *in arrival order*, before the
        window is queued -- so the tier selected for a window reflects
        exactly the quality history a sequential run would have seen.
        """
        if self.quality_gate is None:
            return None
        report = self.quality_gate.assess(window)
        if self.degradation is not None:
            self.degradation.observe(report)
        return report

    def active_detector(self) -> SIFTDetector:
        """The fitted detector for this session's current tier."""
        if self.degradation is None:
            return self.detector
        version = self.degradation.active
        if version is self.detector.version:
            return self.detector
        try:
            return self.fallbacks[version]
        except KeyError:
            raise KeyError(
                f"session {self.wearer_id!r}: degradation selected "
                f"{version.value!r} but no fitted fallback was provided"
            ) from None

    # -- outcomes (called by the gateway's batcher, in arrival order) ---

    def record_abstain(
        self, sequence: int, time_s: float, sqi: float | None, latency_s: float
    ) -> SessionVerdict:
        """An SQI-gated window: advances the debouncer clock, casts no vote."""
        self.debouncer.abstain_window()
        self.windows_abstained += 1
        verdict = SessionVerdict(
            wearer_id=self.wearer_id,
            sequence=sequence,
            time_s=time_s,
            altered=False,
            decision_value=float("nan"),
            version=self.detector.version.value,
            abstained=True,
            sqi=sqi,
            latency_s=latency_s,
        )
        self.recent_verdicts.append(verdict)
        return verdict

    def record_score(
        self,
        sequence: int,
        time_s: float,
        value: float,
        version: DetectorVersion,
        sqi: float | None,
        latency_s: float,
    ) -> SessionVerdict:
        """One micro-batched decision value, fed to the debouncer."""
        self.debouncer.advance_value(value)
        self.windows_scored += 1
        verdict = SessionVerdict(
            wearer_id=self.wearer_id,
            sequence=sequence,
            time_s=time_s,
            altered=value >= 0.0,
            decision_value=float(value),
            version=version.value,
            sqi=sqi,
            latency_s=latency_s,
        )
        self.recent_verdicts.append(verdict)
        return verdict

    # -- lifecycle ------------------------------------------------------

    def finalize(self) -> int:
        """Flush pending halves and close any open episode; returns lost."""
        lost = self.assembler.flush()
        self.debouncer.finish()
        self.closed = True
        return lost

    @property
    def episodes(self):
        """Attack episodes the debouncer has closed for this wearer."""
        return self.debouncer.episodes

    @property
    def under_attack(self) -> bool:
        return self.debouncer.under_attack()

    # -- snapshot/restore ------------------------------------------------

    def export_state(self) -> dict:
        """Everything a fresh session needs to continue bit-identically.

        Only *state* is exported, never configuration or models: the
        restoring gateway is constructed with the same detectors and
        knobs, and a session rebuilt from this dump produces the same
        verdicts, episodes and tier switches as one that never stopped.
        Pending assembler halves are live packet objects here -- the
        snapshot store's codec (:mod:`repro.gateway.snapshot`) owns
        their JSON form.  Snapshots are quiescent by contract: taking
        one with windows still awaiting scoring would silently drop
        their debouncer advances on restore, so it is refused.
        """
        if self.inflight != 0:
            raise RuntimeError(
                f"session {self.wearer_id!r} has {self.inflight} windows "
                "in flight; drain the gateway before snapshotting"
            )
        return {
            "wearer_id": self.wearer_id,
            "assembler": self.assembler.export_state(),
            "debouncer": self.debouncer.export_state(),
            "degradation": (
                None if self.degradation is None else self.degradation.export_state()
            ),
            "recent_verdicts": [
                {
                    "wearer_id": v.wearer_id,
                    "sequence": v.sequence,
                    "time_s": v.time_s,
                    "altered": v.altered,
                    "decision_value": v.decision_value,
                    "version": v.version,
                    "abstained": v.abstained,
                    "sqi": v.sqi,
                    "latency_s": v.latency_s,
                }
                for v in self.recent_verdicts
            ],
            "windows_assembled": self.windows_assembled,
            "windows_abstained": self.windows_abstained,
            "windows_scored": self.windows_scored,
            "windows_shed": self.windows_shed,
            "ending": self.ending,
            "closed": self.closed,
        }

    def restore_state(self, exported: dict) -> None:
        """Resume from an :meth:`export_state` dump (round-trip exact)."""
        if exported["wearer_id"] != self.wearer_id:
            raise ValueError(
                f"snapshot belongs to {exported['wearer_id']!r}, "
                f"not {self.wearer_id!r}"
            )
        self.assembler.restore_state(exported["assembler"])
        self.debouncer.restore_state(exported["debouncer"])
        degradation_state = exported["degradation"]
        if (degradation_state is None) != (self.degradation is None):
            raise ValueError(
                f"session {self.wearer_id!r}: snapshot and gateway disagree "
                "about degradation being enabled"
            )
        if self.degradation is not None:
            self.degradation.restore_state(degradation_state)
        self.recent_verdicts.clear()
        for v in exported["recent_verdicts"]:
            self.recent_verdicts.append(
                SessionVerdict(
                    wearer_id=v["wearer_id"],
                    sequence=int(v["sequence"]),
                    time_s=float(v["time_s"]),
                    altered=bool(v["altered"]),
                    decision_value=float(v["decision_value"]),
                    version=v["version"],
                    abstained=bool(v["abstained"]),
                    sqi=None if v["sqi"] is None else float(v["sqi"]),
                    latency_s=float(v["latency_s"]),
                )
            )
        self.windows_assembled = int(exported["windows_assembled"])
        self.windows_abstained = int(exported["windows_abstained"])
        self.windows_scored = int(exported["windows_scored"])
        self.windows_shed = int(exported["windows_shed"])
        self.ending = bool(exported["ending"])
        self.closed = bool(exported["closed"])
