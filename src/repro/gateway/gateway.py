"""The asyncio ingestion gateway: live serving over the batched path.

Thousands of concurrent wearers each produce one 3-second window every 3
seconds -- individually trivial, collectively a throughput problem if
every window pays the per-call overhead of the scalar scoring path.  The
gateway keeps per-wearer state in :class:`~repro.gateway.session
.WearerSession` objects and pushes every *assembled* window into one
shared micro-batch queue; a single batcher task drains the queue, groups
windows by the fitted detector their session's tier selected, and scores
each group in one :meth:`~repro.core.detector.SIFTDetector
.decision_values` call.  Batched scores are bit-identical to the scalar
path, and the queue is FIFO, so every session observes exactly the
verdict sequence a per-wearer sequential run would have produced -- the
micro-batching is invisible except in throughput.

Backpressure is explicit, never silent:

* the shared queue is bounded (``queue_windows``); when it is full the
  incoming window is shed and counted (``windows_shed_queue``);
* each session is bounded (``max_inflight_per_session``); a wearer whose
  windows pile up faster than they are scored -- a slow consumer in
  classic backpressure terms -- is shed *individually*
  (``windows_shed_session``) without degrading anyone else.

A shed window is accounted exactly like a channel loss: the wearer's
``windows_shed`` counter and the gateway totals record it, and the
debouncer never sees it.  All latency timing uses
``time.perf_counter()``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from collections import deque
from typing import Callable, Mapping

import numpy as np

from repro.adaptive.degradation import DegradationController
from repro.core.detector import SIFTDetector
from repro.core.versions import DetectorVersion
from repro.gateway.session import SessionVerdict, WearerSession
from repro.gateway.snapshot import SessionSnapshotStore
from repro.gateway.supervisor import (
    InProcessBackend,
    ScoringBackend,
    ScoringUnavailable,
)
from repro.signals.dataset import SignalWindow
from repro.signals.quality import SignalQualityIndex
from repro.wiot.assembly import DEFAULT_MAX_PENDING_LAG
from repro.wiot.channel import DeliveredPacket

__all__ = ["GatewayStats", "IngestionGateway"]

#: Queue sentinel that tells the batcher to drain and exit.
_STOP = object()


@dataclass(frozen=True)
class _PendingWindow:
    """One assembled window waiting in the micro-batch queue."""

    session: WearerSession
    sequence: int
    time_s: float
    window: SignalWindow
    detector: SIFTDetector | None  # None = SQI-gated abstain
    sqi: float | None
    enqueued_at: float  # perf_counter timestamp


@dataclass(frozen=True)
class GatewayStats:
    """Aggregate accounting across live and closed sessions."""

    sessions_started: int
    sessions_active: int
    windows_assembled: int
    windows_scored: int
    windows_abstained: int
    windows_shed_queue: int
    windows_shed_session: int
    incomplete_windows: int
    duplicate_packets: int
    corrupted_packets: int
    episodes_closed: int
    batches: int
    batched_windows: int
    #: Windows abstained because no scoring backend could score them
    #: (supervision exhausted its whole ladder).  A subset of
    #: ``windows_abstained`` -- they are real verdicts, so conservation
    #: still closes.
    windows_unscorable: int = 0

    @property
    def windows_shed(self) -> int:
        return self.windows_shed_queue + self.windows_shed_session

    @property
    def verdicts(self) -> int:
        """Windows that received an explicit outcome (scored or abstain)."""
        return self.windows_scored + self.windows_abstained

    @property
    def mean_batch_size(self) -> float:
        return self.batched_windows / self.batches if self.batches else 0.0


class IngestionGateway:
    """Micro-batching ingestion front-end over one or more detector tiers.

    Parameters
    ----------
    detector:
        The fitted primary detector every new session starts on.
    quality_gate:
        Optional SQI gate, shared by all sessions (assessment is
        stateless); gated windows become abstain verdicts.
    fallbacks:
        Fitted detectors for lighter tiers, keyed by version.
    degradation:
        Optional *template* tier controller; each session gets its own
        :meth:`~repro.adaptive.degradation.DegradationController.clone`
        so one wearer's artifacts never degrade another wearer's tier.
    batch_size / linger_s:
        A micro-batch closes at ``batch_size`` windows or ``linger_s``
        seconds after its first window, whichever comes first.
    queue_windows / max_inflight_per_session:
        The backpressure bounds (see the module docstring).
    on_verdict:
        Optional callback invoked with every :class:`SessionVerdict`
        (the sink-integration hook; exceptions propagate).
    latency_window:
        How many recent verdict latencies to retain for percentiles.
    backend:
        Where micro-batches are scored.  ``None`` (default) builds an
        :class:`~repro.gateway.supervisor.InProcessBackend` over this
        gateway's detectors -- the historical, bit-identical behaviour.
        Pass a :class:`~repro.gateway.supervisor
        .SupervisedScoringBackend` for crash-isolated scoring; the
        gateway owns whichever backend it ends up with (``shutdown``
        closes it).  If the backend raises
        :class:`~repro.gateway.supervisor.ScoringUnavailable` for a
        batch, its windows become abstain verdicts (counted in
        ``windows_unscorable``) so conservation closes under any fault
        schedule.
    """

    def __init__(
        self,
        detector: SIFTDetector,
        quality_gate: SignalQualityIndex | None = None,
        fallbacks: Mapping[DetectorVersion, SIFTDetector] | None = None,
        degradation: DegradationController | None = None,
        votes_needed: int = 2,
        vote_window: int = 3,
        batch_size: int = 256,
        linger_s: float = 0.002,
        queue_windows: int = 4096,
        max_inflight_per_session: int = 64,
        max_pending_lag: int | None = DEFAULT_MAX_PENDING_LAG,
        dedup_capacity: int = 1024,
        on_verdict: Callable[[SessionVerdict], None] | None = None,
        latency_window: int = 100_000,
        backend: ScoringBackend | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if linger_s < 0:
            raise ValueError("linger_s must be non-negative")
        if queue_windows < 1:
            raise ValueError("queue_windows must be >= 1")
        if max_inflight_per_session < 1:
            raise ValueError("max_inflight_per_session must be >= 1")
        if degradation is not None and quality_gate is None:
            raise ValueError("degradation requires a quality_gate")
        self.detector = detector
        self.quality_gate = quality_gate
        self.fallbacks = dict(fallbacks) if fallbacks else {}
        self.degradation = degradation
        self.votes_needed = int(votes_needed)
        self.vote_window = int(vote_window)
        self.batch_size = int(batch_size)
        self.linger_s = float(linger_s)
        self.max_inflight_per_session = int(max_inflight_per_session)
        self.max_pending_lag = max_pending_lag
        self.dedup_capacity = int(dedup_capacity)
        self.on_verdict = on_verdict
        # Detectors by tier key (version string): the vocabulary every
        # ScoringBackend speaks.  All fitted instances the sessions can
        # select come from here, so id() -> key lookup is total.
        self._detectors_by_key: dict[str, SIFTDetector] = {
            detector.version.value: detector
        }
        for version, fallback in self.fallbacks.items():
            self._detectors_by_key[version.value] = fallback
        self._key_of: dict[int, str] = {
            id(det): key for key, det in self._detectors_by_key.items()
        }
        self.backend: ScoringBackend = (
            backend if backend is not None else InProcessBackend(self._detectors_by_key)
        )
        self.windows_unscorable = 0
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_windows)
        self._sessions: dict[str, WearerSession] = {}
        self._batcher_task: asyncio.Task | None = None
        self._closing = False
        self._inflight_total = 0
        self.latencies_s: deque[float] = deque(maxlen=latency_window)
        self.sessions_started = 0
        self.windows_shed_queue = 0
        self.windows_shed_session = 0
        self.batches = 0
        self.batched_windows = 0
        # Totals carried over from finalized (ended) sessions.
        self._closed_totals = {
            "windows_assembled": 0,
            "windows_scored": 0,
            "windows_abstained": 0,
            "incomplete_windows": 0,
            "duplicate_packets": 0,
            "corrupted_packets": 0,
            "episodes_closed": 0,
        }

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Start the scoring backend and spawn the batcher task."""
        if self._batcher_task is not None:
            raise RuntimeError("gateway already started")
        self.backend.start()
        self._batcher_task = asyncio.get_running_loop().create_task(
            self._batch_loop()
        )

    async def __aenter__(self) -> "IngestionGateway":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    async def drain(self) -> None:
        """Wait until every queued window has been scored."""
        while self._inflight_total > 0:
            await asyncio.sleep(0)

    async def shutdown(self) -> None:
        """Stop intake, score everything queued, close every session.

        Idempotent; after it returns ``active_sessions`` is zero and the
        batcher task has exited.  A SIGINT-driven shutdown goes through
        here, so an interrupted service still flushes its accounting.
        """
        if self._batcher_task is None:
            raise RuntimeError("gateway was never started")
        if not self._closing:
            self._closing = True
            await self._queue.put(_STOP)
        await self._batcher_task
        for wearer_id in list(self._sessions):
            self.end_session(wearer_id)
        self.backend.close()

    async def abort(self) -> None:
        """Simulate a crash: stop dead, *without* draining or finalizing.

        The chaos harness's in-process stand-in for a killed gateway
        process: queued windows are discarded unscored, sessions are
        left as they are (not finalized -- a real crash would not have
        flushed them either), and only the backend is reaped so no child
        process leaks.  A gateway restarted from the last snapshot must
        then resume exactly; anything this abort loses outside the
        restart window is a bug the chaos tests would catch.
        """
        if self._batcher_task is None:
            raise RuntimeError("gateway was never started")
        self._closing = True
        self._batcher_task.cancel()
        try:
            await self._batcher_task
        except asyncio.CancelledError:
            pass
        self.backend.close()

    # -- sessions -------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    def session(self, wearer_id: str) -> WearerSession:
        """The wearer's live session, created on first contact."""
        session = self._sessions.get(wearer_id)
        if session is None:
            session = WearerSession(
                wearer_id,
                self.detector,
                quality_gate=self.quality_gate,
                fallbacks=self.fallbacks,
                degradation=(
                    self.degradation.clone()
                    if self.degradation is not None
                    else None
                ),
                votes_needed=self.votes_needed,
                vote_window=self.vote_window,
                max_pending_lag=self.max_pending_lag,
                dedup_capacity=self.dedup_capacity,
            )
            self._sessions[wearer_id] = session
            self.sessions_started += 1
        return session

    def end_session(self, wearer_id: str) -> WearerSession:
        """Detach a wearer; its state is finalized once its queue drains.

        Pending halves are flushed into the incomplete count and the
        debouncer's trailing episode is closed.  If windows of this
        wearer are still awaiting scoring, finalization happens right
        after the batcher scores the last of them -- never before, so
        the episode accounting stays in arrival order.
        """
        session = self._sessions.pop(wearer_id)
        session.ending = True
        if session.inflight == 0:
            self._finalize(session)
        return session

    def _finalize(self, session: WearerSession) -> None:
        session.finalize()
        totals = self._closed_totals
        totals["windows_assembled"] += session.windows_assembled
        totals["windows_scored"] += session.windows_scored
        totals["windows_abstained"] += session.windows_abstained
        totals["incomplete_windows"] += session.assembler.incomplete_windows
        totals["duplicate_packets"] += session.assembler.duplicate_packets
        totals["corrupted_packets"] += session.assembler.corrupted_packets
        totals["episodes_closed"] += len(session.episodes)

    # -- intake ---------------------------------------------------------

    def submit(
        self, wearer_id: str, delivered: DeliveredPacket | None
    ) -> bool:
        """Accept one channel delivery for a wearer.

        Synchronous fast path (call it from any task on the gateway's
        loop); verdicts surface through ``on_verdict`` once the batcher
        scores the window.  Returns ``False`` iff an assembled window
        was shed by backpressure -- every other disposition (absorbed
        half, duplicate, corrupt, enqueued) returns ``True``, with the
        session counters carrying the detail.
        """
        if self._closing:
            raise RuntimeError("gateway is shutting down")
        if delivered is None:
            return True
        session = self.session(wearer_id)
        completed = session.assemble(delivered)
        if completed is None:
            return True
        sequence, time_s, window = completed
        report = session.assess(window)
        if report is not None and not report.usable:
            item = _PendingWindow(
                session=session,
                sequence=sequence,
                time_s=time_s,
                window=window,
                detector=None,
                sqi=report.sqi,
                enqueued_at=time.perf_counter(),
            )
        else:
            item = _PendingWindow(
                session=session,
                sequence=sequence,
                time_s=time_s,
                window=window,
                detector=session.active_detector(),
                sqi=None if report is None else report.sqi,
                enqueued_at=time.perf_counter(),
            )
        # Backpressure: per-wearer bound first (a slow wearer sheds only
        # itself), then the shared queue bound.
        if session.inflight >= self.max_inflight_per_session:
            session.windows_shed += 1
            self.windows_shed_session += 1
            return False
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            session.windows_shed += 1
            self.windows_shed_queue += 1
            return False
        session.inflight += 1
        self._inflight_total += 1
        return True

    # -- the batcher ----------------------------------------------------

    async def _batch_loop(self) -> None:
        stop = False
        while not stop:
            item = await self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            deadline = time.perf_counter() + self.linger_s
            while len(batch) < self.batch_size:
                if self._queue.empty():
                    if time.perf_counter() >= deadline:
                        break
                    # Yield so producer tasks can top the batch up.
                    await asyncio.sleep(0)
                    continue
                nxt = self._queue.get_nowait()
                if nxt is _STOP:
                    stop = True
                    break
                batch.append(nxt)
            # Scoring is CPU/pipe work and must not hold the event loop
            # (ASYNC001): compute off-loop, then apply the verdicts on
            # the loop.  The single batcher task awaits each batch in
            # turn, so batches still retire strictly in FIFO order and
            # the bit-identity contract is untouched.
            scores, unscorable = await asyncio.to_thread(
                self._compute_scores, batch
            )
            self._apply_batch(batch, scores, unscorable)

    def _compute_scores(
        self, batch: list[_PendingWindow]
    ) -> tuple[dict[int, float], set[int]]:
        """Score one micro-batch (runs on a worker thread, loop-free).

        Windows are grouped by the tier key their session's detector
        selected; each group is one :meth:`ScoringBackend.score` call
        (the in-process backend makes that exactly PR 7's batched
        ``decision_values``).  Touches no session or gateway state
        except the ``windows_unscorable`` counter -- all bookkeeping
        happens loop-side in :meth:`_apply_batch`.  A group whose
        backend exhausts the whole supervision ladder
        (:class:`ScoringUnavailable`) is marked unscorable so the loop
        side abstains window by window: time advances, no vote is cast,
        conservation closes.
        """
        groups: dict[str, list[_PendingWindow]] = {}
        for item in batch:
            if item.detector is None:
                continue
            groups.setdefault(self._key_of[id(item.detector)], []).append(item)
        scores: dict[int, float] = {}
        unscorable: set[int] = set()
        for key, items in groups.items():
            try:
                values = self.backend.score(key, [it.window for it in items])
            except ScoringUnavailable:
                for it in items:
                    unscorable.add(id(it))
                self.windows_unscorable += len(items)
                continue
            for it, value in zip(items, values):
                scores[id(it)] = float(value)
        return scores, unscorable

    def _apply_batch(
        self,
        batch: list[_PendingWindow],
        scores: dict[int, float],
        unscorable: set[int],
    ) -> None:
        """Fan one scored micro-batch out to its sessions (loop-side).

        Verdicts are recorded in *batch order* -- the queue is FIFO, so
        this preserves every session's arrival order even when its
        windows landed in different tier groups.
        """
        decided_at = time.perf_counter()
        for item in batch:
            session = item.session
            session.inflight -= 1
            self._inflight_total -= 1
            latency_s = decided_at - item.enqueued_at
            if item.detector is None or id(item) in unscorable:
                verdict = session.record_abstain(
                    item.sequence, item.time_s, item.sqi, latency_s
                )
            else:
                verdict = session.record_score(
                    item.sequence,
                    item.time_s,
                    scores[id(item)],
                    item.detector.version,
                    item.sqi,
                    latency_s,
                )
            self.latencies_s.append(latency_s)
            if session.ending and session.inflight == 0:
                self._finalize(session)
            if self.on_verdict is not None:
                self.on_verdict(verdict)
        self.batches += 1
        self.batched_windows += len(batch)

    # -- snapshot/restore -----------------------------------------------

    async def snapshot(self, store: SessionSnapshotStore) -> int:
        """Persist a crash-consistent epoch of every live session.

        Quiescent by construction: the queue is drained first, so no
        window is in flight and the persisted debouncer state matches
        the verdicts already emitted exactly.  Returns the epoch number.
        Intake stays open -- callers snapshot on a cadence while the
        fleet streams.
        """
        await self.drain()
        sessions = [
            session.export_state() for session in self._sessions.values()
        ]
        # write_epoch commits with flush+fsync -- storage-speed work that
        # must not stall every wearer's verdict stream (ASYNC001).  State
        # is exported above, on the loop, so the epoch is still the
        # quiescent post-drain picture; only the serialization and the
        # durable write happen off-loop.
        return await asyncio.to_thread(
            store.write_epoch, self._export_gateway_state(), sessions
        )

    def _export_gateway_state(self) -> dict:
        return {
            "sessions_started": self.sessions_started,
            "windows_shed_queue": self.windows_shed_queue,
            "windows_shed_session": self.windows_shed_session,
            "batches": self.batches,
            "batched_windows": self.batched_windows,
            "windows_unscorable": self.windows_unscorable,
            "closed_totals": dict(self._closed_totals),
        }

    def restore_sessions(self, store: SessionSnapshotStore) -> dict[str, int]:
        """Rebuild every snapshotted session before serving resumes.

        Call on a *freshly constructed* gateway (same detectors and
        knobs as the one that crashed), before :meth:`start`.  Returns
        each wearer's resume point -- the sequence a sender should
        replay from (exclusive).  This is the high-water mark, lowered
        to just below the oldest half-assembled pending window: a
        pending window's missing half was never delivered, so replaying
        only above the high-water mark would strand it until it expired
        as incomplete.  Replayed halves of a pending window are absorbed
        (the slot already holds the other channel), and anything already
        resolved is rejected by the restored dedup ring rather than
        re-verdicted.  Restoring from an empty or never-committed store
        is a no-op (cold start).
        """
        if self._batcher_task is not None:
            raise RuntimeError("restore must happen before the gateway starts")
        if self._sessions:
            raise RuntimeError("restore requires a fresh gateway (no sessions)")
        loaded = store.load()
        if loaded is None:
            return {}
        _, gateway_state, session_states = loaded
        resume_points: dict[str, int] = {}
        for state in session_states:
            session = self.session(state["wearer_id"])
            session.restore_state(state)
            resume = session.assembler.highest_sequence
            pending_floor = session.assembler.lowest_pending_sequence
            if pending_floor is not None:
                resume = min(resume, pending_floor - 1)
            resume_points[session.wearer_id] = resume
        self.sessions_started = int(gateway_state["sessions_started"])
        self.windows_shed_queue = int(gateway_state["windows_shed_queue"])
        self.windows_shed_session = int(gateway_state["windows_shed_session"])
        self.batches = int(gateway_state["batches"])
        self.batched_windows = int(gateway_state["batched_windows"])
        self.windows_unscorable = int(gateway_state["windows_unscorable"])
        self._closed_totals = {
            key: int(value)
            for key, value in gateway_state["closed_totals"].items()
        }
        return resume_points

    # -- accounting -----------------------------------------------------

    def stats(self) -> GatewayStats:
        """Aggregate counters over live plus finalized sessions."""
        totals = dict(self._closed_totals)
        for session in self._sessions.values():
            totals["windows_assembled"] += session.windows_assembled
            totals["windows_scored"] += session.windows_scored
            totals["windows_abstained"] += session.windows_abstained
            totals["incomplete_windows"] += session.assembler.incomplete_windows
            totals["duplicate_packets"] += session.assembler.duplicate_packets
            totals["corrupted_packets"] += session.assembler.corrupted_packets
            totals["episodes_closed"] += len(session.episodes)
        return GatewayStats(
            sessions_started=self.sessions_started,
            sessions_active=self.active_sessions,
            windows_shed_queue=self.windows_shed_queue,
            windows_shed_session=self.windows_shed_session,
            batches=self.batches,
            batched_windows=self.batched_windows,
            windows_unscorable=self.windows_unscorable,
            **totals,
        )

    def latency_percentiles(
        self, percentiles: tuple[float, ...] = (50.0, 99.0)
    ) -> tuple[float, ...]:
        """Verdict latency percentiles, in seconds, over the recent window."""
        if not self.latencies_s:
            return tuple(float("nan") for _ in percentiles)
        values = np.fromiter(self.latencies_s, dtype=np.float64)
        return tuple(
            float(np.percentile(values, p)) for p in percentiles
        )
