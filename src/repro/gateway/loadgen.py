"""Wearer fleet simulator and load generator for the ingestion gateway.

One wearer = one coroutine pushing a subject's ECG and ABP packet
streams through its own :class:`~repro.wiot.channel.WirelessChannel`
into the shared gateway -- the same sensor -> channel -> receiver path
:class:`~repro.wiot.environment.WIoTEnvironment` drives for a single
wearer, fanned out to thousands.  The fleet shares one synthetic cohort
(synthesizing a distinct recording per wearer would benchmark the signal
generator, not the gateway), but every wearer gets its own channel seed,
so loss patterns -- and therefore assembly, eviction and abstain
behaviour -- differ across sessions.

All timing uses ``time.perf_counter()``.  ``run_gateway_load`` is the
synchronous entry point used by the CLI, the benchmark suite and the
orchestrator's gateway study; pass ``stop_event`` (or let the CLI
install its SIGINT handler) for a clean early shutdown that still
flushes every session and reports full accounting.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.adaptive.degradation import DegradationController
from repro.analysis.sanitizer import LoopStallSanitizer
from repro.core.detector import PLATFORMS, SIFTDetector
from repro.core.versions import DetectorVersion
from repro.gateway.gateway import GatewayStats, IngestionGateway
from repro.gateway.session import SessionVerdict
from repro.gateway.supervisor import (
    NativeBackend,
    SupervisedScoringBackend,
    SupervisorStats,
)
from repro.signals.dataset import Record, SyntheticFantasia
from repro.signals.quality import SignalQualityIndex
from repro.wiot.channel import WirelessChannel
from repro.wiot.sensor import BodySensor, SensorPacket

__all__ = ["LoadReport", "run_fleet", "run_gateway_load", "train_serving_detectors"]

#: How many windows (= ECG+ABP packet pairs) a wearer pushes between
#: event-loop yields.  Yielding every window keeps sessions finely
#: interleaved (so micro-batches actually mix wearers) without paying a
#: loop round-trip per packet.
_YIELD_EVERY = 1


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one fleet run (all durations perf_counter-based)."""

    n_wearers: int
    wall_s: float
    windows_sent: int
    windows_vanished: int
    packets_dropped: int
    stats: GatewayStats
    p50_latency_s: float
    p99_latency_s: float
    interrupted: bool
    leaked_sessions: int
    supervisor: SupervisorStats | None = None
    #: Event-loop stall sanitizer outcome (``sanitize_loop=True`` runs
    #: only): ``None`` when the sanitizer was off, else the number of
    #: callbacks that held the loop past the threshold and the worst
    #: single hold.  A non-zero count is an ASYNC001-class defect the
    #: static rule missed; ``repro gateway-bench --sanitize-loop`` exits
    #: non-zero on it.
    loop_stalls: int | None = None
    max_loop_stall_s: float = 0.0

    @property
    def loop_clean(self) -> bool:
        """No observed stall (vacuously true when the sanitizer was off)."""
        return not self.loop_stalls

    @property
    def windows_per_s(self) -> float:
        """Sustained verdict throughput over the whole run."""
        return self.stats.verdicts / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def conservation_ok(self) -> bool:
        """Does every sent window have exactly one disposition?

        The serving contract: ``verdicts + shed + incomplete + vanished
        == sent``, under any fault schedule.  ``repro gateway-bench``
        exits non-zero when this is false.
        """
        s = self.stats
        return (
            s.verdicts
            + s.windows_shed
            + s.incomplete_windows
            + self.windows_vanished
            == self.windows_sent
        )

    def summary(self) -> str:
        s = self.stats
        lines = [
            f"wearers            {self.n_wearers}"
            + ("  (interrupted)" if self.interrupted else ""),
            f"wall time          {self.wall_s:.2f} s",
            f"windows sent       {self.windows_sent}"
            f"  (channel dropped {self.packets_dropped} packets)",
            f"verdicts           {s.verdicts}"
            f"  ({s.windows_scored} scored, {s.windows_abstained} abstained)",
            f"shed               {s.windows_shed}"
            f"  (queue {s.windows_shed_queue}, per-session {s.windows_shed_session})",
            f"incomplete         {s.incomplete_windows}"
            f"  (+{self.windows_vanished} never reached the gateway)",
            f"episodes closed    {s.episodes_closed}",
            f"throughput         {self.windows_per_s:.0f} windows/s",
            f"verdict latency    p50 {self.p50_latency_s * 1e3:.2f} ms, "
            f"p99 {self.p99_latency_s * 1e3:.2f} ms",
            f"mean batch size    {s.mean_batch_size:.1f}",
            f"leaked sessions    {self.leaked_sessions}",
            f"conservation       {'ok' if self.conservation_ok else 'VIOLATED'}",
        ]
        if self.loop_stalls is not None:
            lines.append(
                f"loop stalls        {self.loop_stalls}"
                + (
                    f"  (worst {self.max_loop_stall_s * 1e3:.1f} ms)"
                    if self.loop_stalls
                    else "  (sanitizer clean)"
                )
            )
        if self.supervisor is not None:
            sup = self.supervisor
            lines += [
                f"scorer faults      {sup.faults}"
                f"  (crash {sup.crashes}, stall {sup.stalls}, "
                f"timeout {sup.timeouts}, poison {sup.poisons})",
                f"scorer restarts    {sup.restarts}"
                f"  ({sup.retries} retries, "
                f"mean recovery {sup.mean_recovery_s * 1e3:.1f} ms)",
                f"degraded windows   {sup.windows_degraded}"
                f"  (breaker trips {sup.breaker_trips}, "
                f"unscorable {sup.windows_unscorable})",
            ]
        return "\n".join(lines)


def train_serving_detectors(
    versions: Sequence[str] = ("original",),
    n_subjects: int = 6,
    seed: int = 2017,
    train_s: float = 120.0,
    platform: str = "numpy",
) -> tuple[SyntheticFantasia, dict[DetectorVersion, SIFTDetector]]:
    """Fit one detector per requested tier on the cohort's first subject.

    A deliberately small training slice -- the load generator measures
    serving throughput, and the detectors only need to be *fitted*, not
    paper-accurate (the evaluation studies own that).  ``platform``
    selects the scoring path of the fitted detectors (``"numpy"`` or
    ``"native"``); training itself is always NumPy.
    """
    data = SyntheticFantasia(n_subjects=n_subjects, seed=seed)
    victim = data.subjects[0]
    others = [s for s in data.subjects if s is not victim]
    training = data.record(victim, train_s, purpose="train")
    donors = [data.record(s, train_s / 2, purpose="train") for s in others[:3]]
    fitted: dict[DetectorVersion, SIFTDetector] = {}
    for version in versions:
        detector = SIFTDetector(version=version, platform=platform)
        detector.fit(training, donors)
        fitted[detector.version] = detector
    return data, fitted


def _wearer_windows(
    record: Record, wearer_index: int
) -> Iterator[tuple[SensorPacket, SensorPacket]]:
    """The (ECG, ABP) packet pairs of one wearer, one pair per window."""
    ecg = BodySensor(f"w{wearer_index}-ecg", "ecg", record)
    abp = BodySensor(f"w{wearer_index}-abp", "abp", record)
    return zip(ecg.packets(), abp.packets())


async def _wearer(
    gateway: IngestionGateway,
    wearer_id: str,
    record: Record,
    wearer_index: int,
    channel: WirelessChannel,
    stop: asyncio.Event,
) -> tuple[int, int]:
    """Stream one wearer's recording; returns (windows sent, windows
    vanished).  A window whose *both* halves the channel drops never
    reaches the gateway, so only the sender can account for it -- it is
    counted here, not in the gateway stats."""
    sent = 0
    vanished = 0
    for ecg_packet, abp_packet in _wearer_windows(record, wearer_index):
        if stop.is_set():
            break
        delivered = 0
        for packet in (ecg_packet, abp_packet):
            transmitted = channel.transmit(packet)
            if transmitted is not None:
                delivered += 1
            gateway.submit(wearer_id, transmitted)
        sent += 1
        if delivered == 0:
            vanished += 1
        if sent % _YIELD_EVERY == 0:
            await asyncio.sleep(0)
    return sent, vanished


async def run_fleet(
    gateway: IngestionGateway,
    records: Sequence[Record],
    n_wearers: int,
    loss_probability: float = 0.0,
    seed: int = 7,
    stop: asyncio.Event | None = None,
) -> LoadReport:
    """Drive ``n_wearers`` concurrent sessions through a started gateway.

    Wearer ``i`` streams ``records[i % len(records)]`` over its own
    channel (seeded ``seed + i``).  Runs until every wearer's recording
    is exhausted or ``stop`` is set, then shuts the gateway down --
    scoring everything still queued and closing every session -- before
    reporting.
    """
    if n_wearers < 1:
        raise ValueError("n_wearers must be >= 1")
    if not records:
        raise ValueError("need at least one record to stream")
    stop = stop if stop is not None else asyncio.Event()
    channels = [
        WirelessChannel(loss_probability=loss_probability, seed=seed + i)
        for i in range(n_wearers)
    ]
    started = time.perf_counter()
    async with gateway:
        outcomes = await asyncio.gather(
            *(
                _wearer(
                    gateway,
                    f"wearer-{i:05d}",
                    records[i % len(records)],
                    i,
                    channels[i],
                    stop,
                )
                for i in range(n_wearers)
            )
        )
    wall_s = time.perf_counter() - started
    p50, p99 = gateway.latency_percentiles((50.0, 99.0))
    supervisor = (
        gateway.backend.stats()
        if isinstance(gateway.backend, SupervisedScoringBackend)
        else None
    )
    return LoadReport(
        n_wearers=n_wearers,
        wall_s=wall_s,
        windows_sent=sum(sent for sent, _ in outcomes),
        windows_vanished=sum(vanished for _, vanished in outcomes),
        packets_dropped=sum(c.packets_dropped for c in channels),
        stats=gateway.stats(),
        p50_latency_s=p50,
        p99_latency_s=p99,
        interrupted=stop.is_set(),
        leaked_sessions=gateway.active_sessions,
        supervisor=supervisor,
    )


def run_gateway_load(
    n_wearers: int = 64,
    stream_s: float = 30.0,
    batch_size: int = 256,
    linger_s: float = 0.002,
    queue_windows: int = 4096,
    max_inflight_per_session: int = 64,
    loss_probability: float = 0.02,
    with_quality_gate: bool = True,
    with_degradation: bool = False,
    seed: int = 2017,
    install_sigint: bool = False,
    on_verdict: Callable[[SessionVerdict], None] | None = None,
    supervised: bool = False,
    fault_plan: object | None = None,
    supervisor_knobs: dict | None = None,
    sanitize_loop: bool = False,
    stall_threshold_s: float = LoopStallSanitizer.DEFAULT_THRESHOLD_S,
    platform: str = "numpy",
) -> LoadReport:
    """Train, build, and drive a gateway fleet end to end (synchronous).

    With ``install_sigint=True`` a SIGINT during the run triggers the
    orderly path instead of a KeyboardInterrupt mid-scoring: intake
    stops, the queue drains, sessions finalize, and the report is still
    produced (flagged ``interrupted``).

    ``supervised=True`` scores through a crash-isolated
    :class:`~repro.gateway.supervisor.SupervisedScoringBackend` (child
    process + watchdog + circuit breaker) instead of in-process; with no
    injected faults the verdict stream is bit-identical either way.
    ``fault_plan`` (a :class:`~repro.faults.runtime.RuntimeFaultPlan`)
    and ``supervisor_knobs`` (extra backend constructor arguments) are
    the chaos harness's hooks and require ``supervised=True``.

    ``platform="native"`` scores through the generated-C hot path:
    unsupervised runs use a
    :class:`~repro.gateway.supervisor.NativeBackend`, supervised runs
    ship native-platform detectors into the child (which rebuilds the
    extension from the artifact cache, so a native fault stays
    crash-isolated).  Decision values are bit-identical to NumPy either
    way, and the run falls back to NumPy when no toolchain is present.

    ``sanitize_loop=True`` runs the whole fleet under a
    :class:`~repro.analysis.sanitizer.LoopStallSanitizer`: every asyncio
    callback is timed, and any that holds the loop past
    ``stall_threshold_s`` lands in the report's ``loop_stalls`` /
    ``max_loop_stall_s`` fields -- the dynamic check behind the
    ASYNC001 lint rule.
    """
    if (fault_plan is not None or supervisor_knobs) and not supervised:
        raise ValueError("fault_plan/supervisor_knobs require supervised=True")
    if platform not in PLATFORMS:
        raise ValueError(f"platform must be one of {PLATFORMS}, got {platform!r}")
    versions = ["original"]
    if with_degradation:
        versions += ["simplified", "reduced"]
    data, fitted = train_serving_detectors(
        versions=versions, seed=seed, platform=platform
    )
    primary = fitted[DetectorVersion.ORIGINAL]
    fallbacks = {v: d for v, d in fitted.items() if v is not primary.version}
    quality_gate = (
        SignalQualityIndex() if (with_quality_gate or with_degradation) else None
    )
    degradation = DegradationController() if with_degradation else None
    backend = None
    detectors_by_key = {
        version.value: detector for version, detector in fitted.items()
    }
    if supervised:
        backend = SupervisedScoringBackend(
            detectors_by_key,
            fault_plan=fault_plan,
            **(supervisor_knobs or {}),
        )
    elif platform == "native":
        backend = NativeBackend(detectors_by_key)
    gateway = IngestionGateway(
        primary,
        quality_gate=quality_gate,
        fallbacks=fallbacks,
        degradation=degradation,
        batch_size=batch_size,
        linger_s=linger_s,
        queue_windows=queue_windows,
        max_inflight_per_session=max_inflight_per_session,
        on_verdict=on_verdict,
        backend=backend,
    )
    # A handful of distinct recordings, cycled across the fleet.
    records = [
        data.record(subject, stream_s, purpose="test")
        for subject in data.subjects[: min(4, len(data.subjects))]
    ]

    async def _run() -> LoadReport:
        stop = asyncio.Event()
        if install_sigint:
            import signal

            loop = asyncio.get_running_loop()
            loop.add_signal_handler(signal.SIGINT, stop.set)
            try:
                return await run_fleet(
                    gateway,
                    records,
                    n_wearers,
                    loss_probability=loss_probability,
                    seed=seed,
                    stop=stop,
                )
            finally:
                loop.remove_signal_handler(signal.SIGINT)
        return await run_fleet(
            gateway,
            records,
            n_wearers,
            loss_probability=loss_probability,
            seed=seed,
            stop=stop,
        )

    if not sanitize_loop:
        return asyncio.run(_run())
    with LoopStallSanitizer(threshold_s=stall_threshold_s) as sanitizer:
        report = asyncio.run(_run())
    return dataclasses.replace(
        report,
        loop_stalls=sanitizer.total_stalls,
        max_loop_stall_s=sanitizer.max_stall_s,
    )
