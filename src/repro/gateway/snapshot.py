"""Crash-consistent gateway session snapshots (JSONL epochs).

A restarted gateway must resume every wearer exactly where it stopped:
the assembler's pending halves and dedup ring (so replayed packets are
rejected, not re-verdicted), the debouncer's voting horizon and open
episode, the degradation tier with its hysteresis streaks, and the
per-session counters.  This module persists that state with the same
conventions the experiment orchestrator's checkpoint store proved out:

* **append-only JSONL** -- one JSON object per line, never rewritten in
  place;
* **fsync at the commit point** -- an epoch is ``begin`` line, one
  ``session`` line per wearer, one ``gateway`` line, then a ``commit``
  line carrying the expected session count; ``flush()`` + ``os.fsync``
  happen once, after the commit line, so the epoch is durable exactly
  when its commit is;
* **truncation tolerance** -- a torn tail (power loss mid-write) leaves
  a partial last line; :meth:`SessionSnapshotStore.load` skips
  undecodable lines and ignores any epoch whose commit is missing or
  whose session count disagrees, falling back to the previous committed
  epoch.

Snapshots are *quiescent*: the gateway drains its queue first (see
:meth:`~repro.gateway.gateway.IngestionGateway.snapshot`), so no window
is in flight and the persisted debouncer state corresponds exactly to
the verdicts already emitted.  Restore rebuilds sessions bit-identically
-- the restart-window contract (duplicated verdicts confined to windows
scored after the last snapshot) follows from the dedup ring: every
sequence resolved *before* the snapshot is still in the restored ring
and is rejected as a duplicate on replay.

Floats round-trip exactly: ``repr``-based JSON encoding of a Python
float is shortest-exact, and float32 sample arrays widen to float64 and
narrow back losslessly.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.wiot.channel import DeliveredPacket
from repro.wiot.sensor import SensorPacket

__all__ = ["SessionSnapshotStore", "decode_delivered", "encode_delivered"]


# -- packet codec -------------------------------------------------------


def encode_delivered(delivered: DeliveredPacket) -> dict:
    """JSON-safe form of one pending delivery (bit-exact round trip)."""
    packet = delivered.packet
    return {
        "sensor_id": packet.sensor_id,
        "channel": packet.channel,
        "sequence": packet.sequence,
        "start_time_s": packet.start_time_s,
        "samples": np.asarray(packet.samples).tolist(),
        "samples_dtype": str(np.asarray(packet.samples).dtype),
        "peak_indexes": np.asarray(packet.peak_indexes).tolist(),
        "peak_indexes_dtype": str(np.asarray(packet.peak_indexes).dtype),
        "sample_rate": packet.sample_rate,
        "arrival_time_s": delivered.arrival_time_s,
        "crc32": delivered.crc32,
    }


def decode_delivered(encoded: dict) -> DeliveredPacket:
    """Inverse of :func:`encode_delivered`."""
    packet = SensorPacket(
        sensor_id=encoded["sensor_id"],
        channel=encoded["channel"],
        sequence=int(encoded["sequence"]),
        start_time_s=float(encoded["start_time_s"]),
        samples=np.asarray(encoded["samples"], dtype=encoded["samples_dtype"]),
        peak_indexes=np.asarray(
            encoded["peak_indexes"],
            # Epochs written before the dtype was recorded cast to int64.
            dtype=encoded.get("peak_indexes_dtype", "int64"),
        ),
        sample_rate=float(encoded["sample_rate"]),
    )
    return DeliveredPacket(
        packet=packet,
        arrival_time_s=float(encoded["arrival_time_s"]),
        crc32=encoded["crc32"],
    )


def _encode_session(state: dict) -> dict:
    """JSON-encode one session export (packets are the only live objects)."""
    encoded = dict(state)
    assembler = dict(state["assembler"])
    assembler["pending"] = {
        str(sequence): {
            channel: encode_delivered(delivered)
            for channel, delivered in slot.items()
        }
        for sequence, slot in assembler["pending"].items()
    }
    encoded["assembler"] = assembler
    return encoded


def _decode_session(encoded: dict) -> dict:
    """Inverse of :func:`_encode_session`."""
    state = dict(encoded)
    assembler = dict(encoded["assembler"])
    assembler["pending"] = {
        int(sequence): {
            channel: decode_delivered(delivered)
            for channel, delivered in slot.items()
        }
        for sequence, slot in assembler["pending"].items()
    }
    state["assembler"] = assembler
    return state


# -- the store ----------------------------------------------------------


class SessionSnapshotStore:
    """Epoch-structured JSONL persistence for gateway session state.

    One store = one file = one gateway.  Epochs are numbered
    monotonically; :meth:`load` returns the newest *committed* epoch,
    whatever garbage follows it.  :meth:`compact` rewrites the file down
    to that epoch (atomically, via a temp file and ``os.replace``) so a
    long-running gateway's snapshot file stays O(fleet), not O(uptime).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._next_epoch = self._max_epoch_present() + 1

    def _max_epoch_present(self) -> int:
        """Highest epoch number in any decodable record, committed or not.

        Numbering must advance past *torn* epochs too: a crash mid-write
        leaves epoch N begun but uncommitted, and a reopened store that
        reused N would merge both attempts into one bucket whose session
        count can never match its commit -- the fresh, fully fsynced
        epoch would then be rejected and :meth:`load` would silently fall
        back to stale state.
        """
        if not self.path.exists():
            return 0
        highest = 0
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                epoch = record.get("epoch")
                if isinstance(epoch, int) and epoch > highest:
                    highest = epoch
        return highest

    # -- writing --------------------------------------------------------

    def write_epoch(self, gateway_state: dict, sessions: list[dict]) -> int:
        """Append one complete snapshot epoch; returns its number.

        ``sessions`` are raw :meth:`~repro.gateway.session.WearerSession
        .export_state` dumps (live packet objects included); encoding
        happens here.  The epoch is durable iff its commit line is: the
        single flush+fsync happens after the commit is written.
        """
        epoch = self._next_epoch
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "begin", "epoch": epoch}) + "\n")
            for state in sessions:
                fh.write(
                    json.dumps(
                        {
                            "kind": "session",
                            "epoch": epoch,
                            "state": _encode_session(state),
                        }
                    )
                    + "\n"
                )
            fh.write(
                json.dumps(
                    {"kind": "gateway", "epoch": epoch, "state": gateway_state}
                )
                + "\n"
            )
            fh.write(
                json.dumps(
                    {"kind": "commit", "epoch": epoch, "n_sessions": len(sessions)}
                )
                + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())
        self._next_epoch = epoch + 1
        return epoch

    # -- reading --------------------------------------------------------

    def _scan(self) -> tuple[int, dict, list[dict]] | None:
        """Newest committed epoch as raw (encoded) records, or ``None``."""
        if not self.path.exists():
            return None
        epochs: dict[int, dict] = {}
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail or flipped bits: skip, don't die
                epoch = record.get("epoch")
                if not isinstance(epoch, int):
                    continue
                kind = record.get("kind")
                if kind == "begin":
                    # Last begin-delimited attempt wins: if a file ever
                    # holds two attempts at the same epoch number, merging
                    # them would desynchronize the session count from the
                    # commit and reject the good attempt.
                    epochs[epoch] = {
                        "sessions": [],
                        "gateway": None,
                        "committed": None,
                    }
                    continue
                bucket = epochs.setdefault(
                    epoch, {"sessions": [], "gateway": None, "committed": None}
                )
                if kind == "session":
                    bucket["sessions"].append(record["state"])
                elif kind == "gateway":
                    bucket["gateway"] = record["state"]
                elif kind == "commit":
                    bucket["committed"] = record.get("n_sessions")
        for epoch in sorted(epochs, reverse=True):
            bucket = epochs[epoch]
            if (
                bucket["committed"] is not None
                and bucket["gateway"] is not None
                and len(bucket["sessions"]) == bucket["committed"]
            ):
                return epoch, bucket["gateway"], bucket["sessions"]
        return None

    def load(self) -> tuple[int, dict, list[dict]] | None:
        """The newest committed epoch, decoded, or ``None`` if there is
        none (missing file, empty file, or nothing ever committed)."""
        raw = self._scan()
        if raw is None:
            return None
        epoch, gateway_state, sessions = raw
        return epoch, gateway_state, [_decode_session(s) for s in sessions]

    # -- maintenance ----------------------------------------------------

    def compact(self) -> bool:
        """Rewrite the file down to its newest committed epoch.

        Atomic (temp file + ``os.replace``), fsynced, and a no-op when
        there is nothing committed.  Returns whether anything was kept.
        """
        raw = self._scan()
        if raw is None:
            return False
        epoch, gateway_state, sessions = raw
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "begin", "epoch": epoch}) + "\n")
            for state in sessions:
                fh.write(
                    json.dumps(
                        {"kind": "session", "epoch": epoch, "state": state}
                    )
                    + "\n"
                )
            fh.write(
                json.dumps(
                    {"kind": "gateway", "epoch": epoch, "state": gateway_state}
                )
                + "\n"
            )
            fh.write(
                json.dumps(
                    {"kind": "commit", "epoch": epoch, "n_sessions": len(sessions)}
                )
                + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        return True
