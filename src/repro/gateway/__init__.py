"""Async multi-wearer ingestion gateway (serving-side of the paper).

The detector studies evaluate one wearer at a time; a deployment serves
*fleets*.  This subpackage turns the batched scoring path into a live
service: per-wearer sessions (:mod:`~repro.gateway.session`) feed a
shared micro-batching scorer (:mod:`~repro.gateway.gateway`) whose
verdicts are bit-identical to each wearer's sequential
:class:`~repro.core.streaming.StreamingDetector` run, and a fleet
simulator (:mod:`~repro.gateway.loadgen`) drives it at load for
benchmarks and smoke tests.

The supervision layer (:mod:`~repro.gateway.supervisor`) isolates
scoring in a watched child process -- heartbeat watchdog, per-batch
timeout, jittered-backoff restarts, circuit breaker -- and
:mod:`~repro.gateway.snapshot` persists crash-consistent per-wearer
session state so a restarted gateway resumes every wearer without
duplicating or dropping verdicts outside the restart window.
"""

from repro.gateway.gateway import GatewayStats, IngestionGateway
from repro.gateway.loadgen import (
    LoadReport,
    run_fleet,
    run_gateway_load,
    train_serving_detectors,
)
from repro.gateway.session import SessionVerdict, WearerSession, window_from_slot
from repro.gateway.snapshot import SessionSnapshotStore
from repro.gateway.supervisor import (
    InProcessBackend,
    ScoringBackend,
    ScoringUnavailable,
    SupervisedScoringBackend,
    SupervisorStats,
)

__all__ = [
    "GatewayStats",
    "IngestionGateway",
    "InProcessBackend",
    "LoadReport",
    "ScoringBackend",
    "ScoringUnavailable",
    "SessionSnapshotStore",
    "SessionVerdict",
    "SupervisedScoringBackend",
    "SupervisorStats",
    "WearerSession",
    "run_fleet",
    "run_gateway_load",
    "train_serving_detectors",
    "window_from_slot",
]
