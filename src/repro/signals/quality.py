"""Signal-quality assessment (SQI) for detection gating.

Wearable practice: classify signal *quality* before classifying signal
*content*, and withhold clinical decisions on garbage windows.  The
robustness study shows motion artifacts inflate SIFT's false-positive
rate; a quality gate converts those would-be false alarms into explicit
"window unusable" outcomes, which a safety UI treats differently from
"attack detected".

The index combines three cheap, libm-free checks per channel:

* **clipping/flatline** -- the fraction of samples pinned at the window
  extremes (saturated front end or disconnected lead);
* **burst energy** -- the ratio of the 98th-percentile to the median of
  the first-difference energy (motion bursts are impulsive; cardiac
  activity is rhythmic);
* **beat plausibility** -- the implied beat count against physiological
  bounds for the window length.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signals.dataset import SignalWindow

__all__ = ["QualityReport", "SignalQualityIndex", "assess_window"]

#: Physiological heart-rate bounds used by the beat-plausibility check.
_MIN_BPM, _MAX_BPM = 25.0, 220.0

#: Symmetric tolerance for float rounding on the [0, 1] score contract.
#: Scores within the epsilon of either boundary are clamped onto it;
#: only a genuinely out-of-range score raises.  (The old check tolerated
#: ``1.0 + 1e-9`` but crashed on ``-1e-12`` -- a numerically noisy SQI
#: component must never take down a live session.)
_SCORE_EPS = 1e-9


@dataclass(frozen=True)
class QualityReport:
    """Per-window quality verdict.

    ``sqi`` is in [0, 1]; 1.0 means all checks passed cleanly.  ``usable``
    applies the configured threshold.  Component scores are retained so a
    UI (or a test) can say *why* a window was rejected.
    """

    sqi: float
    usable: bool
    clipping_score: float
    burst_score: float
    beat_score: float

    def __post_init__(self) -> None:
        for name in ("sqi", "clipping_score", "burst_score", "beat_score"):
            value = float(getattr(self, name))
            if not -_SCORE_EPS <= value <= 1.0 + _SCORE_EPS:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
            object.__setattr__(self, name, min(1.0, max(0.0, value)))


class SignalQualityIndex:
    """Configurable quality assessor for ECG+ABP windows.

    Parameters
    ----------
    threshold:
        Minimum SQI for a window to count as usable.
    clipping_tolerance:
        Fraction of samples allowed at the window extremes before the
        clipping score starts dropping.
    burst_ratio_limit:
        First-difference energy 98th-percentile-to-median ratio above
        which the burst score reaches zero.
    """

    def __init__(
        self,
        threshold: float = 0.6,
        clipping_tolerance: float = 0.02,
        burst_ratio_limit: float = 400.0,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if clipping_tolerance < 0:
            raise ValueError("clipping_tolerance must be non-negative")
        if burst_ratio_limit <= 1.0:
            raise ValueError("burst_ratio_limit must exceed 1")
        self.threshold = float(threshold)
        self.clipping_tolerance = float(clipping_tolerance)
        self.burst_ratio_limit = float(burst_ratio_limit)

    # -- component checks ---------------------------------------------------

    def _clipping_score(self, signal: np.ndarray) -> float:
        low, high = float(np.min(signal)), float(np.max(signal))
        if high <= low:
            return 0.0  # flatline
        span = high - low
        pinned = np.mean(
            (signal <= low + 0.01 * span) | (signal >= high - 0.01 * span)
        )
        # A healthy oscillating signal touches its extremes rarely.
        excess = max(0.0, float(pinned) - self.clipping_tolerance)
        return float(np.clip(1.0 - excess / 0.25, 0.0, 1.0))

    def _burst_score(self, signal: np.ndarray) -> float:
        diff = np.diff(signal)
        energy = diff * diff
        median = float(np.median(energy))
        if median <= 0:
            return 0.0
        ratio = float(np.percentile(energy, 98)) / median
        if ratio <= self.burst_ratio_limit:
            return 1.0
        return float(
            np.clip(
                1.0
                - (ratio - self.burst_ratio_limit) / (4 * self.burst_ratio_limit),
                0.0,
                1.0,
            )
        )

    def _beat_score(self, window: SignalWindow) -> float:
        duration_min = window.duration / 60.0
        lower = _MIN_BPM * duration_min
        upper = _MAX_BPM * duration_min
        score = 1.0
        for peaks in (window.r_peaks, window.systolic_peaks):
            count = float(len(peaks))
            if count < lower:
                score = min(score, count / max(lower, 1e-9))
            elif count > upper:
                score = min(score, float(np.clip(2.0 - count / upper, 0.0, 1.0)))
        return float(score)

    # -- public API -----------------------------------------------------------

    def assess(self, window: SignalWindow) -> QualityReport:
        """Score one window; the SQI is the minimum of the channel checks.

        Using the minimum (not the mean) makes the gate conservative: one
        failed check is enough to withhold a clinical decision.
        """
        clipping = min(
            self._clipping_score(window.ecg), self._clipping_score(window.abp)
        )
        burst = min(self._burst_score(window.ecg), self._burst_score(window.abp))
        beats = self._beat_score(window)
        sqi = min(clipping, burst, beats)
        return QualityReport(
            sqi=sqi,
            usable=sqi >= self.threshold,
            clipping_score=clipping,
            burst_score=burst,
            beat_score=beats,
        )


def assess_window(window: SignalWindow, threshold: float = 0.6) -> QualityReport:
    """One-shot convenience around :class:`SignalQualityIndex`."""
    return SignalQualityIndex(threshold=threshold).assess(window)
