"""Physiological signal substrate.

This subpackage replaces the MIT PhysioBank *Fantasia* records used by the
paper with a synthetic cardiac-process simulator.  A single beat train (the
"underlying physiological process" that SIFT exploits) drives both the ECG
and the arterial blood pressure (ABP) waveform generators, so the two
signals are inherently correlated within a subject -- exactly the property
SIFT's portrait features measure.

Public API
----------
- :class:`~repro.signals.cardiac.CardiacProcess` / ``BeatTrain``
- :class:`~repro.signals.ecg.ECGSynthesizer`
- :class:`~repro.signals.abp.ABPSynthesizer`
- :class:`~repro.signals.subjects.SubjectParameters` and
  :func:`~repro.signals.subjects.generate_cohort`
- :func:`~repro.signals.peaks.detect_r_peaks`,
  :func:`~repro.signals.peaks.detect_systolic_peaks`
- :class:`~repro.signals.dataset.Record`,
  :class:`~repro.signals.dataset.SyntheticFantasia`
"""

from repro.signals.abp import ABPSynthesizer
from repro.signals.cardiac import BeatTrain, CardiacProcess
from repro.signals.dataset import (
    DEFAULT_SAMPLE_RATE,
    Record,
    SignalWindow,
    SyntheticFantasia,
    iter_windows,
)
from repro.signals.ecg import ECGSynthesizer
from repro.signals.peaks import (
    detect_r_peaks,
    detect_systolic_peaks,
    match_peaks,
    peak_indices_in_window,
)
from repro.signals.quality import (
    QualityReport,
    SignalQualityIndex,
    assess_window,
)
from repro.signals.subjects import SubjectParameters, generate_cohort
from repro.signals.wfdb import load_record as load_wfdb_record

__all__ = [
    "ABPSynthesizer",
    "BeatTrain",
    "CardiacProcess",
    "DEFAULT_SAMPLE_RATE",
    "ECGSynthesizer",
    "QualityReport",
    "Record",
    "SignalQualityIndex",
    "SignalWindow",
    "SubjectParameters",
    "SyntheticFantasia",
    "assess_window",
    "detect_r_peaks",
    "detect_systolic_peaks",
    "generate_cohort",
    "iter_windows",
    "load_wfdb_record",
    "match_peaks",
    "peak_indices_in_window",
]
