"""Minimal WFDB reader: use the *real* Fantasia records when available.

The paper's dataset is 12 subjects from the MIT PhysioBank Fantasia
database, distributed in WFDB format (a text header ``<record>.hea`` plus
a binary ``<record>.dat``).  This module implements the subset of the
format those records use -- format **212** (two 12-bit two's-complement
samples packed into 3 bytes) and format **16** (little-endian int16) --
so that an offline copy of Fantasia can be loaded into the exact same
:class:`~repro.signals.dataset.Record` API the synthetic substrate
produces.  No network access is attempted; when no files are present the
project simply runs on the synthetic cohort.

Format reference: https://physionet.org/physiotools/wag/header-5.htm
(implemented from the specification; only the fields Fantasia uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.signals.dataset import Record
from repro.signals.peaks import detect_r_peaks, detect_systolic_peaks

__all__ = ["WFDBHeader", "WFDBSignalSpec", "load_record", "read_header", "read_signals"]


@dataclass(frozen=True)
class WFDBSignalSpec:
    """One signal line of a ``.hea`` file (the fields we need)."""

    file_name: str
    format: int
    gain: float  # ADC units per physical unit
    baseline: int  # ADC value corresponding to 0 physical units
    units: str
    description: str


@dataclass(frozen=True)
class WFDBHeader:
    """The record line plus one spec per signal."""

    record_name: str
    n_signals: int
    sample_rate: float
    n_samples: int
    signals: tuple[WFDBSignalSpec, ...]

    def signal_index(self, keyword: str) -> int:
        """Index of the first signal whose description contains ``keyword``."""
        keyword = keyword.lower()
        for i, spec in enumerate(self.signals):
            if keyword in spec.description.lower() or keyword in spec.units.lower():
                return i
        raise KeyError(
            f"no signal matching {keyword!r}; available: "
            f"{[s.description for s in self.signals]}"
        )


def read_header(path: str | Path) -> WFDBHeader:
    """Parse a ``.hea`` file.

    Raises
    ------
    ValueError
        On malformed record lines or unsupported signal formats.
    """
    path = Path(path)
    lines = [
        line.strip()
        for line in path.read_text().splitlines()
        if line.strip() and not line.startswith("#")
    ]
    if not lines:
        raise ValueError(f"{path}: empty header")
    record_fields = lines[0].split()
    if len(record_fields) < 4:
        raise ValueError(f"{path}: malformed record line: {lines[0]!r}")
    record_name = record_fields[0]
    n_signals = int(record_fields[1])
    # The sampling-frequency field may carry counter info ("250/..."),
    # keep the base frequency.
    sample_rate = float(record_fields[2].split("/")[0])
    n_samples = int(record_fields[3])
    if n_signals < 1:
        raise ValueError(f"{path}: record declares no signals")
    if len(lines) - 1 < n_signals:
        raise ValueError(
            f"{path}: header declares {n_signals} signals but has "
            f"{len(lines) - 1} signal lines"
        )

    specs = []
    for line in lines[1 : 1 + n_signals]:
        fields = line.split()
        if len(fields) < 2:
            raise ValueError(f"{path}: malformed signal line: {line!r}")
        file_name = fields[0]
        fmt = int(fields[1].split("x")[0].split(":")[0].split("+")[0])
        if fmt not in (16, 212):
            raise ValueError(
                f"{path}: unsupported WFDB format {fmt}; this reader "
                "implements formats 16 and 212 (all Fantasia uses)"
            )
        # gain field: "gain(baseline)/units", all parts optional.
        gain, baseline, units = 200.0, 0, "adu"
        if len(fields) >= 3:
            gain_field = fields[2]
            if "/" in gain_field:
                gain_field, units = gain_field.split("/", 1)
            if "(" in gain_field:
                gain_part, baseline_part = gain_field.split("(")
                baseline = int(baseline_part.rstrip(")"))
                gain_field = gain_part
            if gain_field:
                gain = float(gain_field)
                if gain == 0:
                    gain = 200.0  # the spec's documented default
        description = " ".join(fields[8:]) if len(fields) > 8 else file_name
        specs.append(
            WFDBSignalSpec(
                file_name=file_name,
                format=fmt,
                gain=gain,
                baseline=baseline,
                units=units,
                description=description,
            )
        )
    return WFDBHeader(
        record_name=record_name,
        n_signals=n_signals,
        sample_rate=sample_rate,
        n_samples=n_samples,
        signals=tuple(specs),
    )


def _decode_212(raw: bytes, n_values: int) -> np.ndarray:
    """Unpack WFDB format 212: two 12-bit samples per 3 bytes."""
    data = np.frombuffer(raw, dtype=np.uint8)
    n_frames = data.size // 3
    data = data[: n_frames * 3].reshape(-1, 3).astype(np.int32)
    first = ((data[:, 1] & 0x0F) << 8) | data[:, 0]
    second = ((data[:, 1] & 0xF0) << 4) | data[:, 2]
    samples = np.empty(2 * n_frames, dtype=np.int32)
    samples[0::2] = first
    samples[1::2] = second
    # 12-bit two's complement.
    samples[samples > 2047] -= 4096
    return samples[:n_values]


def _decode_16(raw: bytes, n_values: int) -> np.ndarray:
    return np.frombuffer(raw, dtype="<i2")[:n_values].astype(np.int32)


def read_signals(header: WFDBHeader, directory: str | Path) -> np.ndarray:
    """Read all signals of a record; returns shape (n_samples, n_signals).

    Fantasia stores all signals interleaved in a single ``.dat``; this
    reader supports that layout (all specs naming the same file) as well
    as one file per signal.
    """
    directory = Path(directory)
    by_file: dict[str, list[int]] = {}
    for i, spec in enumerate(header.signals):
        by_file.setdefault(spec.file_name, []).append(i)

    output = np.zeros((header.n_samples, header.n_signals), dtype=np.float64)
    for file_name, indices in by_file.items():
        raw = (directory / file_name).read_bytes()
        fmt = header.signals[indices[0]].format
        if any(header.signals[i].format != fmt for i in indices):
            raise ValueError(
                f"{file_name}: mixed formats in one file are not supported"
            )
        n_interleaved = header.n_samples * len(indices)
        decoder = _decode_212 if fmt == 212 else _decode_16
        flat = decoder(raw, n_interleaved)
        if flat.size < n_interleaved:
            raise ValueError(
                f"{file_name}: expected {n_interleaved} samples, "
                f"decoded {flat.size}"
            )
        frames = flat.reshape(-1, len(indices))
        for column, signal_index in enumerate(indices):
            spec = header.signals[signal_index]
            output[:, signal_index] = (
                frames[:, column] - spec.baseline
            ) / spec.gain
    return output


def load_record(
    header_path: str | Path,
    ecg_keyword: str = "ecg",
    abp_keyword: str = "bp",
) -> Record:
    """Load a WFDB record into the project's :class:`Record` API.

    Peak indexes are derived with the project's detectors, the same
    upstream step the paper's pre-stored indexes came from.
    """
    header_path = Path(header_path)
    header = read_header(header_path)
    signals = read_signals(header, header_path.parent)
    ecg = signals[:, header.signal_index(ecg_keyword)]
    abp = signals[:, header.signal_index(abp_keyword)]
    return Record(
        subject_id=header.record_name,
        sample_rate=header.sample_rate,
        ecg=ecg,
        abp=abp,
        r_peaks=detect_r_peaks(ecg, header.sample_rate),
        systolic_peaks=detect_systolic_peaks(abp, header.sample_rate),
    )
