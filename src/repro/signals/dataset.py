"""Records, windows and the synthetic Fantasia-like dataset.

A :class:`Record` bundles a subject's synchronously sampled ECG and ABP
traces with their characteristic-point indexes (R peaks, systolic peaks) --
the exact payload the paper pre-stores in the Amulet's memory.
:class:`SyntheticFantasia` regenerates such records on demand for a cohort
of synthetic subjects, with disjoint RNG streams for training and test
recordings so that test windows are "unseen" in the paper's sense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.signals.peaks import (
    detect_r_peaks,
    detect_systolic_peaks,
    peak_indices_in_window,
)
from repro.signals.subjects import SubjectParameters, generate_cohort

__all__ = [
    "DEFAULT_SAMPLE_RATE",
    "Record",
    "SignalWindow",
    "SyntheticFantasia",
    "iter_windows",
]

#: Samples per second.  360 Hz makes a 3-second window exactly 1080 samples,
#: the float-array size the paper reports for the Amulet implementation.
DEFAULT_SAMPLE_RATE = 360.0


@dataclass(frozen=True)
class SignalWindow:
    """One ``w``-second snippet of synchronized ECG and ABP.

    Peak indexes are relative to the window start.  ``altered`` records the
    ground-truth attack label when the window comes from an evaluation
    scenario (``None`` for plain recordings).
    """

    ecg: np.ndarray
    abp: np.ndarray
    r_peaks: np.ndarray
    systolic_peaks: np.ndarray
    sample_rate: float
    subject_id: str = ""
    altered: bool | None = None

    def __post_init__(self) -> None:
        if self.ecg.shape != self.abp.shape:
            raise ValueError("ECG and ABP windows must have equal length")
        if self.ecg.ndim != 1:
            raise ValueError("window signals must be 1-D")

    @property
    def n_samples(self) -> int:
        return int(self.ecg.size)

    @property
    def duration(self) -> float:
        return self.n_samples / self.sample_rate

    @property
    def nbytes(self) -> int:
        """Resident size of the window's NumPy payload, in bytes.

        Prices the window for the experiment cache's LRU budget.  Windows
        cut from a record are views, so per-window costs can double-count
        the backing record; the estimate is a budget heuristic, not heap
        accounting.
        """
        return int(
            self.ecg.nbytes
            + self.abp.nbytes
            + self.r_peaks.nbytes
            + self.systolic_peaks.nbytes
        )


@dataclass(frozen=True)
class Record:
    """A full synchronized ECG+ABP recording for one subject."""

    subject_id: str
    sample_rate: float
    ecg: np.ndarray
    abp: np.ndarray
    r_peaks: np.ndarray = field(repr=False)
    systolic_peaks: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.ecg.shape != self.abp.shape:
            raise ValueError("ECG and ABP must have equal length")
        if self.ecg.ndim != 1:
            raise ValueError("record signals must be 1-D")
        if self.sample_rate <= 0:
            raise ValueError("sample_rate must be positive")

    @property
    def n_samples(self) -> int:
        return int(self.ecg.size)

    @property
    def duration(self) -> float:
        return self.n_samples / self.sample_rate

    @property
    def nbytes(self) -> int:
        """Resident size of the record's NumPy payload, in bytes.

        Both signal traces plus the pre-stored peak indexes -- what the
        experiment cache charges against its LRU budget for a cached
        record.
        """
        return int(
            self.ecg.nbytes
            + self.abp.nbytes
            + self.r_peaks.nbytes
            + self.systolic_peaks.nbytes
        )

    def window(self, start: int, length: int, altered: bool | None = None) -> SignalWindow:
        """Extract the window ``[start, start + length)`` with re-based peaks."""
        if start < 0 or length <= 0 or start + length > self.n_samples:
            raise ValueError(
                f"window [{start}, {start + length}) out of range "
                f"for record of {self.n_samples} samples"
            )
        stop = start + length
        return SignalWindow(
            ecg=self.ecg[start:stop],
            abp=self.abp[start:stop],
            r_peaks=peak_indices_in_window(self.r_peaks, start, stop),
            systolic_peaks=peak_indices_in_window(self.systolic_peaks, start, stop),
            sample_rate=self.sample_rate,
            subject_id=self.subject_id,
            altered=altered,
        )

    def redetect_peaks(self) -> "Record":
        """Copy of this record with peaks re-derived by the detectors.

        Records from :class:`SyntheticFantasia` carry ground-truth peak
        indexes (the paper's pre-stored indexes).  This method swaps them
        for detector output, for experiments on detector robustness.
        """
        return Record(
            subject_id=self.subject_id,
            sample_rate=self.sample_rate,
            ecg=self.ecg,
            abp=self.abp,
            r_peaks=detect_r_peaks(self.ecg, self.sample_rate),
            systolic_peaks=detect_systolic_peaks(self.abp, self.sample_rate),
        )


def iter_windows(
    record: Record, window_s: float, stride_s: float | None = None
) -> Iterator[SignalWindow]:
    """Slide a ``window_s``-second window over a record.

    The default stride equals the window size (non-overlapping), which is
    how the detector consumes data at run time; training may pass a smaller
    stride for more feature points.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    stride_s = window_s if stride_s is None else stride_s
    if stride_s <= 0:
        raise ValueError("stride_s must be positive")
    length = int(round(window_s * record.sample_rate))
    stride = max(1, int(round(stride_s * record.sample_rate)))
    for start in range(0, record.n_samples - length + 1, stride):
        yield record.window(start, length)


class SyntheticFantasia:
    """Synthetic stand-in for the 12-subject Fantasia selection.

    Parameters
    ----------
    n_subjects:
        Cohort size (paper: 12).
    seed:
        Cohort seed; also the base of the per-record RNG streams.
    sample_rate:
        Sampling rate in Hz.
    """

    #: RNG stream tags guaranteeing train and test recordings never share
    #: random state.
    _PURPOSES = {"train": 0, "test": 1, "extra": 2}

    def __init__(
        self,
        n_subjects: int = 12,
        seed: int = 2017,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
    ) -> None:
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        self.seed = int(seed)
        self.sample_rate = float(sample_rate)
        self.subjects: list[SubjectParameters] = generate_cohort(
            n_subjects=n_subjects, seed=seed
        )

    def __len__(self) -> int:
        return len(self.subjects)

    def subject(self, subject_id: str) -> SubjectParameters:
        """Look up a cohort subject by id (KeyError if absent)."""
        for subject in self.subjects:
            if subject.subject_id == subject_id:
                return subject
        raise KeyError(f"no such subject: {subject_id!r}")

    def _rng(self, subject: SubjectParameters, purpose: str) -> np.random.Generator:
        """RNG stream keyed by subject *identity* (its id) and purpose.

        Keying by id rather than list position lets callers pass modified
        copies of a cohort subject (e.g. with a different noise level) and
        still draw the same realization stream.
        """
        if purpose not in self._PURPOSES:
            raise ValueError(f"unknown record purpose: {purpose!r}")
        index = next(
            (
                i
                for i, candidate in enumerate(self.subjects)
                if candidate.subject_id == subject.subject_id
            ),
            None,
        )
        if index is None:
            raise KeyError(
                f"subject {subject.subject_id!r} is not from this cohort"
            )
        return np.random.default_rng(
            [self.seed, index, self._PURPOSES[purpose]]
        )

    def record(
        self, subject: SubjectParameters, duration: float, purpose: str = "train"
    ) -> Record:
        """Generate a recording with ground-truth peak indexes.

        ``purpose`` selects a disjoint RNG stream: ``"train"`` recordings
        and ``"test"`` recordings of the same subject are different
        realizations of the same cardiac process.
        """
        rng = self._rng(subject, purpose)
        beats = subject.cardiac_process().generate(duration, rng)
        ecg_synth = subject.ecg_synthesizer()
        abp_synth = subject.abp_synthesizer()
        ecg = ecg_synth.synthesize(beats, self.sample_rate, rng)
        abp = abp_synth.synthesize(beats, self.sample_rate, rng)
        n = ecg.size
        r_idx = np.round(beats.onsets * self.sample_rate).astype(np.intp)
        s_times = abp_synth.systolic_peak_times(beats)
        s_idx = np.round(s_times * self.sample_rate).astype(np.intp)
        return Record(
            subject_id=subject.subject_id,
            sample_rate=self.sample_rate,
            ecg=ecg,
            abp=abp,
            r_peaks=r_idx[r_idx < n],
            systolic_peaks=s_idx[s_idx < n],
        )

    def training_record(
        self, subject: SubjectParameters, duration: float = 20 * 60.0
    ) -> Record:
        """The paper's Delta = 20 minutes of training data."""
        return self.record(subject, duration, purpose="train")

    def test_record(
        self, subject: SubjectParameters, duration: float = 2 * 60.0
    ) -> Record:
        """The paper's 2 minutes of unseen evaluation data."""
        return self.record(subject, duration, purpose="test")
