"""The underlying cardiac process.

SIFT rests on the observation that ECG and ABP are two manifestations of one
physiological process.  This module models that process: a sequence of heart
beats whose inter-beat (RR) intervals fluctuate with the two dominant heart
rate variability (HRV) rhythms,

* respiratory sinus arrhythmia (RSA), a high-frequency modulation locked to
  breathing (~0.15-0.4 Hz), and
* Mayer waves, a low-frequency modulation of sympathetic origin (~0.1 Hz),

plus unstructured beat-to-beat jitter.  The resulting :class:`BeatTrain` is
the shared input to both the ECG and the ABP synthesizers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BeatTrain", "CardiacProcess"]


@dataclass(frozen=True)
class BeatTrain:
    """A realization of the cardiac process.

    Attributes
    ----------
    onsets:
        Beat onset times in seconds, strictly increasing, starting at or
        after ``0``.  A beat's onset is the time of its R peak in the ECG.
    rr_intervals:
        ``onsets[i + 1] - onsets[i]`` for convenience; one element shorter
        than ``onsets``.
    duration:
        Total covered duration in seconds (the generation horizon, not the
        last onset).
    ectopic:
        Boolean mask marking premature ventricular beats (all-False when
        the process has no ectopy).
    """

    onsets: np.ndarray
    duration: float
    ectopic: np.ndarray | None = None
    rr_intervals: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        onsets = np.asarray(self.onsets, dtype=np.float64)
        if onsets.ndim != 1:
            raise ValueError("beat onsets must be a 1-D array")
        if onsets.size >= 2 and not np.all(np.diff(onsets) > 0):
            raise ValueError("beat onsets must be strictly increasing")
        if onsets.size and onsets[0] < 0:
            raise ValueError("beat onsets must be non-negative")
        object.__setattr__(self, "onsets", onsets)
        object.__setattr__(self, "rr_intervals", np.diff(onsets))
        ectopic = self.ectopic
        if ectopic is None:
            ectopic = np.zeros(onsets.size, dtype=bool)
        else:
            ectopic = np.asarray(ectopic, dtype=bool)
            if ectopic.shape != onsets.shape:
                raise ValueError("ectopic mask must match onsets in shape")
        object.__setattr__(self, "ectopic", ectopic)

    @property
    def n_ectopic(self) -> int:
        return int(self.ectopic.sum())

    def __len__(self) -> int:
        return int(self.onsets.size)

    @property
    def mean_heart_rate(self) -> float:
        """Mean heart rate in beats per minute."""
        if self.rr_intervals.size == 0:
            return 0.0
        return 60.0 / float(np.mean(self.rr_intervals))

    def slice(self, start: float, stop: float) -> "BeatTrain":
        """Return the beats with ``start <= onset < stop``, re-based to 0."""
        if stop < start:
            raise ValueError("stop must be >= start")
        mask = (self.onsets >= start) & (self.onsets < stop)
        return BeatTrain(
            onsets=self.onsets[mask] - start,
            duration=stop - start,
            ectopic=self.ectopic[mask],
        )


class CardiacProcess:
    """Generator of :class:`BeatTrain` realizations for one subject.

    Parameters
    ----------
    mean_hr:
        Mean heart rate in beats per minute.
    rsa_depth:
        Fractional RR modulation depth of respiratory sinus arrhythmia
        (e.g. ``0.05`` modulates RR intervals by +-5 %).
    rsa_frequency:
        Breathing frequency in Hz.
    mayer_depth:
        Fractional RR modulation depth of the ~0.1 Hz Mayer wave.
    mayer_frequency:
        Mayer wave frequency in Hz.
    jitter:
        Standard deviation of unstructured fractional RR jitter.
    """

    def __init__(
        self,
        mean_hr: float = 70.0,
        rsa_depth: float = 0.04,
        rsa_frequency: float = 0.25,
        mayer_depth: float = 0.03,
        mayer_frequency: float = 0.1,
        jitter: float = 0.01,
        ectopic_rate_per_min: float = 0.0,
    ) -> None:
        if mean_hr <= 0:
            raise ValueError("mean_hr must be positive")
        if not 0 <= rsa_depth < 0.5 or not 0 <= mayer_depth < 0.5:
            raise ValueError("modulation depths must be in [0, 0.5)")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if rsa_frequency <= 0 or mayer_frequency <= 0:
            raise ValueError("modulation frequencies must be positive")
        if ectopic_rate_per_min < 0:
            raise ValueError("ectopic_rate_per_min must be non-negative")
        self.mean_hr = float(mean_hr)
        self.rsa_depth = float(rsa_depth)
        self.rsa_frequency = float(rsa_frequency)
        self.mayer_depth = float(mayer_depth)
        self.mayer_frequency = float(mayer_frequency)
        self.jitter = float(jitter)
        self.ectopic_rate_per_min = float(ectopic_rate_per_min)

    @property
    def mean_rr(self) -> float:
        """Mean RR interval in seconds."""
        return 60.0 / self.mean_hr

    def generate(self, duration: float, rng: np.random.Generator) -> BeatTrain:
        """Generate beats covering ``duration`` seconds.

        The RR interval of each beat is the mean RR modulated by the RSA and
        Mayer oscillations evaluated at the beat's onset time, plus Gaussian
        jitter.  Intervals are clamped to stay physiologically positive.

        With a non-zero ``ectopic_rate_per_min``, premature ventricular
        contractions are interleaved: an ectopic beat arrives early (at
        ~55 % of the scheduled coupling interval) and is followed by a
        compensatory pause, the classic PVC timing signature.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        mean_rr = self.mean_rr
        # Random phases make realizations distinct even with zero jitter.
        rsa_phase = rng.uniform(0.0, 2.0 * np.pi)
        mayer_phase = rng.uniform(0.0, 2.0 * np.pi)
        ectopic_probability = (
            self.ectopic_rate_per_min * mean_rr / 60.0
        )  # per scheduled beat

        onsets = [float(rng.uniform(0.0, mean_rr))]
        ectopic = [False]
        while onsets[-1] < duration:
            t = onsets[-1]
            modulation = (
                1.0
                + self.rsa_depth
                * np.sin(2.0 * np.pi * self.rsa_frequency * t + rsa_phase)
                + self.mayer_depth
                * np.sin(2.0 * np.pi * self.mayer_frequency * t + mayer_phase)
            )
            rr = mean_rr * modulation * (1.0 + self.jitter * rng.standard_normal())
            rr = max(rr, 0.25 * mean_rr)
            if ectopic_probability > 0 and rng.random() < ectopic_probability:
                coupling = rr * rng.uniform(0.5, 0.6)
                onsets.append(t + coupling)
                ectopic.append(True)
                # Compensatory pause: the next sinus beat lands where it
                # would have without the PVC, i.e. a long post-PVC gap.
                onsets.append(t + rr + rr * rng.uniform(0.9, 1.0))
                ectopic.append(False)
            else:
                onsets.append(t + rr)
                ectopic.append(False)
        # The loop appends onsets beyond the horizon; drop them.
        mask = [t < duration for t in onsets]
        kept = np.array(
            [t for t, keep in zip(onsets, mask) if keep], dtype=np.float64
        )
        kept_ectopic = np.array(
            [e for e, keep in zip(ectopic, mask) if keep], dtype=bool
        )
        return BeatTrain(
            onsets=kept, duration=float(duration), ectopic=kept_ectopic
        )
