"""Synthetic ECG generation.

Each beat is rendered as a sum of Gaussian deflections for the P, Q, R, S
and T waves (a simplified McSharry-style dynamical model evaluated in closed
form).  Wave timing scales with the instantaneous RR interval so morphology
stays realistic across heart-rate variability, and the R peak lands exactly
on the beat onset reported by the :class:`~repro.signals.cardiac.BeatTrain`
-- which gives the ground-truth R-peak indexes that the paper pre-stored in
the Amulet's memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signals.cardiac import BeatTrain

__all__ = ["ECGMorphology", "ECGSynthesizer"]


def _add_motion_artifacts(
    signal: np.ndarray,
    sample_rate: float,
    rate_per_min: float,
    amplitude: float,
    rng: np.random.Generator,
) -> None:
    """Superimpose wearable-realistic artifact events, in place.

    Ambulatory recordings are not clean: electrode motion produces short
    high-amplitude bursts and baseline excursions.  Events arrive as a
    Poisson process at ``rate_per_min``; each is either a noise burst or a
    smooth baseline bump of a few hundred milliseconds.  These events are
    what gives the detector a realistic false-positive floor -- and they
    penalize peak-geometry features more than occupancy-grid features,
    the asymmetry behind the Reduced build's accuracy drop.
    """
    duration_min = signal.size / sample_rate / 60.0
    n_events = int(rng.poisson(rate_per_min * duration_min))
    for _ in range(n_events):
        length = int(rng.uniform(0.2, 0.7) * sample_rate)
        start = int(rng.integers(0, max(1, signal.size - length)))
        window = np.hanning(length)
        if rng.random() < 0.5:
            burst = rng.standard_normal(length) * amplitude * rng.uniform(0.5, 1.5)
            signal[start : start + length] += window * burst
        else:
            bump = amplitude * rng.uniform(-2.0, 2.0)
            signal[start : start + length] += window * bump

#: Per-wave timing offsets, expressed as fractions of the *current* RR
#: interval relative to the R peak.  Negative = before the R peak.
_WAVE_OFFSETS = {"P": -0.22, "Q": -0.045, "R": 0.0, "S": 0.045, "T": 0.32}

#: Per-wave Gaussian widths, as fractions of the RR interval.
_WAVE_WIDTHS = {"P": 0.035, "Q": 0.012, "R": 0.012, "S": 0.014, "T": 0.06}


@dataclass(frozen=True)
class ECGMorphology:
    """Per-subject ECG wave amplitudes in millivolts.

    The defaults approximate a lead-II adult ECG.  Cohort generation jitters
    these per subject so that inter-subject morphology differs -- the
    contrast SIFT's positive training class is built from.
    """

    p_amp: float = 0.12
    q_amp: float = -0.1
    r_amp: float = 1.0
    s_amp: float = -0.22
    t_amp: float = 0.3
    #: Multiplier on all Gaussian widths (wave broadness).
    width_scale: float = 1.0

    def amplitudes(self) -> dict[str, float]:
        return {
            "P": self.p_amp,
            "Q": self.q_amp,
            "R": self.r_amp,
            "S": self.s_amp,
            "T": self.t_amp,
        }


class ECGSynthesizer:
    """Render a :class:`BeatTrain` into a sampled ECG waveform.

    Parameters
    ----------
    morphology:
        Subject-specific wave shape.
    noise_std:
        Standard deviation of additive white measurement noise (mV).
    wander_amp:
        Amplitude of sinusoidal baseline wander (mV).
    wander_frequency:
        Baseline wander frequency in Hz (respiration-coupled drift).
    """

    def __init__(
        self,
        morphology: ECGMorphology | None = None,
        noise_std: float = 0.02,
        wander_amp: float = 0.05,
        wander_frequency: float = 0.21,
        artifact_rate_per_min: float = 0.0,
    ) -> None:
        if noise_std < 0 or wander_amp < 0:
            raise ValueError("noise_std and wander_amp must be non-negative")
        if artifact_rate_per_min < 0:
            raise ValueError("artifact_rate_per_min must be non-negative")
        self.morphology = morphology or ECGMorphology()
        self.noise_std = float(noise_std)
        self.wander_amp = float(wander_amp)
        self.wander_frequency = float(wander_frequency)
        self.artifact_rate_per_min = float(artifact_rate_per_min)

    def synthesize(
        self,
        beats: BeatTrain,
        sample_rate: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Return the ECG sampled at ``sample_rate`` over ``beats.duration``.

        When ``rng`` is ``None`` the waveform is rendered without noise or
        baseline wander (useful for golden tests).
        """
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        n_samples = int(round(beats.duration * sample_rate))
        t = np.arange(n_samples, dtype=np.float64) / sample_rate
        signal = np.zeros(n_samples, dtype=np.float64)

        amplitudes = self.morphology.amplitudes()
        # A PVC has no P wave, a wide bizarre QRS and a discordant
        # (inverted) T wave -- the textbook morphology.
        ectopic_amplitudes = {
            "P": 0.0,
            "Q": amplitudes["Q"] * 1.6,
            "R": amplitudes["R"] * 1.25,
            "S": amplitudes["S"] * 2.4,
            "T": -amplitudes["T"] * 1.3,
        }
        onsets = beats.onsets
        # RR interval assigned to each beat: the interval *following* it,
        # falling back to the preceding one for the final beat.
        rr = self._per_beat_rr(beats)
        for onset, beat_rr, is_ectopic in zip(onsets, rr, beats.ectopic):
            self._render_beat(
                signal,
                t,
                onset,
                beat_rr,
                ectopic_amplitudes if is_ectopic else amplitudes,
                sample_rate,
                width_multiplier=2.2 if is_ectopic else 1.0,
            )

        if rng is not None:
            phase = rng.uniform(0.0, 2.0 * np.pi)
            signal += self.wander_amp * np.sin(
                2.0 * np.pi * self.wander_frequency * t + phase
            )
            signal += self.noise_std * rng.standard_normal(n_samples)
            _add_motion_artifacts(
                signal,
                sample_rate,
                self.artifact_rate_per_min,
                amplitude=0.6,
                rng=rng,
            )
        return signal

    @staticmethod
    def _per_beat_rr(beats: BeatTrain) -> np.ndarray:
        if len(beats) == 0:
            return np.empty(0, dtype=np.float64)
        if len(beats) == 1:
            return np.array([0.8], dtype=np.float64)
        rr = beats.rr_intervals
        return np.concatenate([rr, rr[-1:]])

    def _render_beat(
        self,
        signal: np.ndarray,
        t: np.ndarray,
        onset: float,
        rr: float,
        amplitudes: dict[str, float],
        sample_rate: float,
        width_multiplier: float = 1.0,
    ) -> None:
        """Add one beat's P-QRS-T complex to ``signal`` in place."""
        width_scale = self.morphology.width_scale * width_multiplier
        # Render only a local slice (+-0.6 RR around the R peak) for speed.
        lo = max(0, int((onset - 0.6 * rr) * sample_rate))
        hi = min(t.size, int((onset + 0.7 * rr) * sample_rate) + 1)
        if lo >= hi:
            return
        window = t[lo:hi]
        local = np.zeros(window.size, dtype=np.float64)
        for wave, amp in amplitudes.items():
            center = onset + _WAVE_OFFSETS[wave] * rr
            width = _WAVE_WIDTHS[wave] * rr * width_scale
            local += amp * np.exp(-0.5 * ((window - center) / width) ** 2)
        signal[lo:hi] += local
