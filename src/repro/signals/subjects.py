"""Subject cohort generation.

The paper evaluates on 12 subjects from the PhysioBank *Fantasia* database
(young and elderly groups, mean age 46.5 +- 25.5 years), chosen because both
ECG and ABP were recorded.  Without access to PhysioNet we generate a
synthetic cohort with the same structure: half young / half elderly, with
per-subject cardiac dynamics and ECG/ABP morphology drawn from
group-conditional distributions.  Subjects overlap enough that cross-subject
ECG replacement is not trivially separable -- which is what keeps detection
accuracy in the realistic 80-95 % band the paper reports rather than at
100 %.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.signals.abp import ABPMorphology, ABPSynthesizer
from repro.signals.cardiac import CardiacProcess
from repro.signals.ecg import ECGMorphology, ECGSynthesizer

__all__ = ["SubjectParameters", "generate_cohort"]

_YOUNG_AGE_RANGE = (21, 34)
_ELDERLY_AGE_RANGE = (68, 85)


@dataclass(frozen=True)
class SubjectParameters:
    """Everything needed to regenerate one subject's signals.

    A subject is fully described by its cardiac dynamics plus ECG and ABP
    morphology; signal realizations additionally take an RNG so that
    training and test recordings of the same subject differ.
    """

    subject_id: str
    age: int
    group: str  # "young" | "elderly"
    mean_hr: float
    rsa_depth: float
    mayer_depth: float
    rr_jitter: float
    ecg: ECGMorphology
    abp: ABPMorphology
    ecg_noise_std: float = 0.03
    abp_noise_std: float = 1.0
    #: Wearable-realistic artifact events (electrode motion, pressure
    #: transients) per minute of recording.
    ecg_artifact_rate: float = 2.0
    abp_artifact_rate: float = 1.2
    #: Premature ventricular contractions per minute (ectopy rises with
    #: age; the Fantasia elderly records show occasional PVCs).
    ectopic_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.group not in ("young", "elderly"):
            raise ValueError(f"unknown subject group: {self.group!r}")
        if self.mean_hr <= 0:
            raise ValueError("mean_hr must be positive")

    def cardiac_process(self) -> CardiacProcess:
        """Cardiac process configured for this subject."""
        return CardiacProcess(
            mean_hr=self.mean_hr,
            rsa_depth=self.rsa_depth,
            mayer_depth=self.mayer_depth,
            jitter=self.rr_jitter,
            ectopic_rate_per_min=self.ectopic_rate,
        )

    def ecg_synthesizer(self) -> ECGSynthesizer:
        """ECG synthesizer configured for this subject."""
        return ECGSynthesizer(
            morphology=self.ecg,
            noise_std=self.ecg_noise_std,
            artifact_rate_per_min=self.ecg_artifact_rate,
        )

    def abp_synthesizer(self) -> ABPSynthesizer:
        """ABP synthesizer configured for this subject."""
        return ABPSynthesizer(
            morphology=self.abp,
            noise_std=self.abp_noise_std,
            artifact_rate_per_min=self.abp_artifact_rate,
        )

    def with_noise(self, ecg_noise_std: float, abp_noise_std: float) -> "SubjectParameters":
        """Copy of this subject with different measurement-noise levels."""
        return replace(
            self, ecg_noise_std=ecg_noise_std, abp_noise_std=abp_noise_std
        )


def _sample_subject(
    index: int, group: str, rng: np.random.Generator
) -> SubjectParameters:
    """Draw one subject from the group-conditional parameter distribution."""
    if group == "young":
        age = int(rng.integers(*_YOUNG_AGE_RANGE))
        mean_hr = float(rng.uniform(62.0, 82.0))
        rsa_depth = float(rng.uniform(0.04, 0.08))  # strong RSA in the young
        systolic = float(rng.uniform(108.0, 126.0))
        pulse_pressure = float(rng.uniform(38.0, 50.0))
    else:
        age = int(rng.integers(*_ELDERLY_AGE_RANGE))
        mean_hr = float(rng.uniform(58.0, 76.0))
        rsa_depth = float(rng.uniform(0.01, 0.03))  # RSA attenuates with age
        systolic = float(rng.uniform(122.0, 145.0))
        pulse_pressure = float(rng.uniform(48.0, 62.0))  # stiffer arteries

    ecg = ECGMorphology(
        p_amp=float(rng.uniform(0.08, 0.16)),
        q_amp=float(rng.uniform(-0.14, -0.06)),
        r_amp=float(rng.uniform(0.8, 1.2)),
        s_amp=float(rng.uniform(-0.3, -0.15)),
        t_amp=float(rng.uniform(0.2, 0.42)),
        width_scale=float(rng.uniform(0.85, 1.15)),
    )
    abp = ABPMorphology(
        systolic=systolic,
        diastolic=systolic - pulse_pressure,
        transit_time=float(rng.uniform(0.14, 0.22)),
        upstroke_fraction=float(rng.uniform(0.1, 0.14)),
        decay_fraction=float(rng.uniform(0.3, 0.42)),
        dicrotic_amp=float(rng.uniform(0.08, 0.18)),
        dicrotic_fraction=float(rng.uniform(0.18, 0.26)),
        ptt_mod_depth=float(rng.uniform(0.3, 0.5)),
        ptt_mod_freq=float(rng.uniform(0.02, 0.08)),
        ptt_mod_phase=float(rng.uniform(0.0, 2.0 * np.pi)),
    )
    return SubjectParameters(
        subject_id=f"s{index:02d}-{group}",
        age=age,
        group=group,
        mean_hr=mean_hr,
        rsa_depth=rsa_depth,
        mayer_depth=float(rng.uniform(0.02, 0.04)),
        rr_jitter=float(rng.uniform(0.008, 0.02)),
        ecg=ecg,
        abp=abp,
        ecg_artifact_rate=float(rng.uniform(1.0, 3.5)),
        abp_artifact_rate=float(rng.uniform(0.5, 2.0)),
        # Occasional PVCs in the elderly group, matching Fantasia's records.
        ectopic_rate=0.0 if group == "young" else float(rng.uniform(0.2, 1.0)),
    )


def generate_cohort(
    n_subjects: int = 12, seed: int = 2017, young_fraction: float = 0.5
) -> list[SubjectParameters]:
    """Generate a synthetic Fantasia-like cohort.

    Parameters
    ----------
    n_subjects:
        Cohort size; the paper uses 12.
    seed:
        Seed for the cohort-level RNG, making cohorts reproducible.
    young_fraction:
        Fraction of subjects drawn from the young group (Fantasia is
        half young, half elderly).
    """
    if n_subjects < 1:
        raise ValueError("n_subjects must be >= 1")
    if not 0.0 <= young_fraction <= 1.0:
        raise ValueError("young_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n_young = int(round(n_subjects * young_fraction))
    groups = ["young"] * n_young + ["elderly"] * (n_subjects - n_young)
    return [_sample_subject(i, group, rng) for i, group in enumerate(groups)]
