"""Synthetic arterial blood pressure (ABP) generation.

Each beat of the shared :class:`~repro.signals.cardiac.BeatTrain` launches a
pressure pulse: a fast systolic upstroke peaking one pulse-transit-time
after the R peak, an exponential diastolic decay, and a dicrotic-notch
secondary wave.  Because ECG and ABP are rendered from the *same* beat
train, the two signals carry the inter-signal correlation that SIFT's
portrait features exploit; replacing the ECG with another subject's breaks
the beat alignment, which is what the sensor-hijacking attack looks like.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.signals.cardiac import BeatTrain
from repro.signals.ecg import _add_motion_artifacts

__all__ = ["ABPMorphology", "ABPSynthesizer"]


@dataclass(frozen=True)
class ABPMorphology:
    """Per-subject ABP pulse shape.

    Attributes
    ----------
    systolic / diastolic:
        Peak and trough pressures in mmHg.
    transit_time:
        Pulse transit time: delay from the R peak to the foot of the
        pressure upstroke, in seconds.
    upstroke_fraction:
        Fraction of the RR interval from pulse foot to systolic peak.
    decay_fraction:
        Diastolic decay time constant as a fraction of the RR interval.
    dicrotic_amp:
        Dicrotic wave amplitude as a fraction of pulse pressure.
    dicrotic_fraction:
        Position of the dicrotic wave after the systolic peak, as a
        fraction of the RR interval.
    """

    systolic: float = 120.0
    diastolic: float = 75.0
    transit_time: float = 0.18
    upstroke_fraction: float = 0.12
    decay_fraction: float = 0.35
    dicrotic_amp: float = 0.14
    dicrotic_fraction: float = 0.22
    #: Slow modulation of the pulse transit time (PTT tracks blood-pressure
    #: regulation): fractional depth, frequency (Hz) and phase.  The
    #: modulation is a deterministic function of beat time so the rendered
    #: waveform and the ground-truth systolic peak times always agree.
    ptt_mod_depth: float = 0.15
    ptt_mod_freq: float = 0.05
    ptt_mod_phase: float = 0.0

    def __post_init__(self) -> None:
        if self.systolic <= self.diastolic:
            raise ValueError("systolic pressure must exceed diastolic")
        if self.transit_time < 0:
            raise ValueError("transit_time must be non-negative")
        if not 0.0 <= self.ptt_mod_depth < 1.0:
            raise ValueError("ptt_mod_depth must be in [0, 1)")

    @property
    def pulse_pressure(self) -> float:
        return self.systolic - self.diastolic

    def transit_at(self, onset_s: float | np.ndarray) -> np.ndarray:
        """Pulse transit time of a beat starting at ``onset_s`` seconds."""
        modulation = 1.0 + self.ptt_mod_depth * np.sin(
            2.0 * np.pi * self.ptt_mod_freq * np.asarray(onset_s, dtype=np.float64)
            + self.ptt_mod_phase
        )
        return self.transit_time * modulation


class ABPSynthesizer:
    """Render a :class:`BeatTrain` into a sampled ABP waveform.

    Parameters
    ----------
    morphology:
        Subject-specific pulse shape.
    noise_std:
        Standard deviation of additive measurement noise (mmHg).
    """

    def __init__(
        self,
        morphology: ABPMorphology | None = None,
        noise_std: float = 0.8,
        artifact_rate_per_min: float = 0.0,
    ) -> None:
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if artifact_rate_per_min < 0:
            raise ValueError("artifact_rate_per_min must be non-negative")
        self.morphology = morphology or ABPMorphology()
        self.noise_std = float(noise_std)
        self.artifact_rate_per_min = float(artifact_rate_per_min)

    def systolic_peak_times(self, beats: BeatTrain) -> np.ndarray:
        """Ground-truth systolic peak times for each beat.

        The systolic peak of beat *i* trails its R peak by the pulse transit
        time plus the upstroke duration (a fraction of the beat's RR
        interval).  Peaks past the signal horizon are dropped.
        """
        m = self.morphology
        rr = self._per_beat_rr(beats)
        times = beats.onsets + m.transit_at(beats.onsets) + m.upstroke_fraction * rr
        return times[times < beats.duration]

    def synthesize(
        self,
        beats: BeatTrain,
        sample_rate: float,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Return the ABP sampled at ``sample_rate`` over ``beats.duration``."""
        if sample_rate <= 0:
            raise ValueError("sample_rate must be positive")
        n_samples = int(round(beats.duration * sample_rate))
        t = np.arange(n_samples, dtype=np.float64) / sample_rate
        m = self.morphology
        signal = np.full(n_samples, m.diastolic, dtype=np.float64)

        rr = self._per_beat_rr(beats)
        for onset, beat_rr, is_ectopic in zip(beats.onsets, rr, beats.ectopic):
            # A PVC ejects against an incompletely filled ventricle: the
            # pulse is weak (sometimes barely palpable).
            amplitude = 0.5 if is_ectopic else 1.0
            self._render_pulse(
                signal, t, onset, beat_rr, sample_rate, amplitude=amplitude
            )

        if rng is not None:
            if self.noise_std > 0:
                signal += self.noise_std * rng.standard_normal(n_samples)
            _add_motion_artifacts(
                signal,
                sample_rate,
                self.artifact_rate_per_min,
                amplitude=0.25 * m.pulse_pressure,
                rng=rng,
            )
        return signal

    @staticmethod
    def _per_beat_rr(beats: BeatTrain) -> np.ndarray:
        if len(beats) == 0:
            return np.empty(0, dtype=np.float64)
        if len(beats) == 1:
            return np.array([0.8], dtype=np.float64)
        rr = beats.rr_intervals
        return np.concatenate([rr, rr[-1:]])

    def _render_pulse(
        self,
        signal: np.ndarray,
        t: np.ndarray,
        onset: float,
        rr: float,
        sample_rate: float,
        amplitude: float = 1.0,
    ) -> None:
        """Add one pressure pulse (above diastolic baseline) in place."""
        m = self.morphology
        foot = onset + float(m.transit_at(onset))
        peak = foot + m.upstroke_fraction * rr
        tau = m.decay_fraction * rr
        dicrotic_center = peak + m.dicrotic_fraction * rr
        dicrotic_width = 0.05 * rr

        lo = max(0, int(foot * sample_rate))
        hi = min(t.size, int((foot + 1.4 * rr) * sample_rate) + 1)
        if lo >= hi:
            return
        window = t[lo:hi]
        pulse = np.zeros(window.size, dtype=np.float64)

        rising = (window >= foot) & (window < peak)
        pulse[rising] = np.sin(
            0.5 * np.pi * (window[rising] - foot) / (peak - foot)
        )
        falling = window >= peak
        pulse[falling] = np.exp(-(window[falling] - peak) / tau)
        pulse += m.dicrotic_amp * np.exp(
            -0.5 * ((window - dicrotic_center) / dicrotic_width) ** 2
        )
        signal[lo:hi] += amplitude * m.pulse_pressure * pulse
