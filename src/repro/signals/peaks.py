"""Characteristic-point detection: ECG R peaks and ABP systolic peaks.

The paper pre-stores peak indexes alongside the signal snippets on the
Amulet ("we pre-stored ECG and ABP data and their corresponding peak
indexes into the memory"), with peak detection treated as an upstream step.
This module provides that upstream step: a Pan-Tompkins-style R-peak
detector (derivative -> squaring -> moving-window integration -> adaptive
threshold) and a local-maximum systolic-peak detector, both numpy-only.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "detect_r_peaks",
    "detect_systolic_peaks",
    "match_peaks",
    "peak_indices_in_window",
]


def _moving_average(x: np.ndarray, width: int) -> np.ndarray:
    """Centered moving average with edge padding."""
    if width < 1:
        raise ValueError("width must be >= 1")
    kernel = np.ones(width, dtype=np.float64) / width
    return np.convolve(x, kernel, mode="same")


def _local_maxima(x: np.ndarray) -> np.ndarray:
    """Indices of strict local maxima (plateau-free signals)."""
    if x.size < 3:
        return np.empty(0, dtype=np.intp)
    interior = (x[1:-1] > x[:-2]) & (x[1:-1] >= x[2:])
    return np.flatnonzero(interior) + 1


def _enforce_refractory(
    candidates: np.ndarray, scores: np.ndarray, min_gap: int
) -> np.ndarray:
    """Greedily keep the highest-scoring candidates at least ``min_gap`` apart."""
    keep: list[int] = []
    order = np.argsort(scores[candidates])[::-1]
    taken = np.zeros(0, dtype=np.intp)
    for rank in order:
        idx = int(candidates[rank])
        if taken.size == 0 or np.min(np.abs(taken - idx)) >= min_gap:
            keep.append(idx)
            taken = np.append(taken, idx)
    return np.sort(np.asarray(keep, dtype=np.intp))


def detect_r_peaks(
    ecg: np.ndarray,
    sample_rate: float,
    threshold_fraction: float = 0.35,
    refractory_s: float = 0.25,
) -> np.ndarray:
    """Detect R-peak sample indices in an ECG trace.

    A simplified Pan-Tompkins pipeline: the derivative of the signal is
    squared and integrated over a 150 ms window; integration-peak clusters
    above an adaptive threshold mark QRS complexes, and the R peak is
    refined to the signal maximum within +-60 ms of each cluster.

    Parameters
    ----------
    ecg:
        1-D ECG samples.
    sample_rate:
        Sampling rate in Hz.
    threshold_fraction:
        Detection threshold as a fraction of the 98th percentile of the
        integrated energy signal.
    refractory_s:
        Minimum spacing between detected peaks, in seconds.
    """
    ecg = np.asarray(ecg, dtype=np.float64)
    if ecg.ndim != 1:
        raise ValueError("ecg must be a 1-D array")
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    if ecg.size < int(0.3 * sample_rate):
        return np.empty(0, dtype=np.intp)

    # Remove slow baseline, then derivative -> squaring -> integration.
    detrended = ecg - _moving_average(ecg, max(3, int(0.6 * sample_rate)))
    derivative = np.gradient(detrended)
    energy = _moving_average(derivative**2, max(3, int(0.15 * sample_rate)))

    threshold = threshold_fraction * np.percentile(energy, 98)
    candidates = _local_maxima(energy)
    candidates = candidates[energy[candidates] > threshold]
    if candidates.size == 0:
        return np.empty(0, dtype=np.intp)

    min_gap = max(1, int(refractory_s * sample_rate))
    clusters = _enforce_refractory(candidates, energy, min_gap)

    # Refine each cluster to the true R location in the detrended signal.
    half = max(1, int(0.06 * sample_rate))
    refined = []
    for idx in clusters:
        lo, hi = max(0, idx - half), min(ecg.size, idx + half + 1)
        refined.append(lo + int(np.argmax(detrended[lo:hi])))
    return np.unique(np.asarray(refined, dtype=np.intp))


def detect_systolic_peaks(
    abp: np.ndarray,
    sample_rate: float,
    min_spacing_s: float = 0.4,
    prominence_fraction: float = 0.3,
) -> np.ndarray:
    """Detect systolic-peak sample indices in an ABP trace.

    Systolic peaks are the dominant local maxima of the pressure wave; the
    dicrotic wave is rejected by requiring peaks to rise a fraction of the
    pulse pressure above the trace's low percentile and by the refractory
    spacing.
    """
    abp = np.asarray(abp, dtype=np.float64)
    if abp.ndim != 1:
        raise ValueError("abp must be a 1-D array")
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    if abp.size < 3:
        return np.empty(0, dtype=np.intp)

    smoothed = _moving_average(abp, max(3, int(0.04 * sample_rate)))
    low, high = np.percentile(smoothed, [5, 98])
    if high <= low:
        return np.empty(0, dtype=np.intp)
    threshold = low + prominence_fraction * (high - low)

    candidates = _local_maxima(smoothed)
    candidates = candidates[smoothed[candidates] > threshold]
    if candidates.size == 0:
        return np.empty(0, dtype=np.intp)
    min_gap = max(1, int(min_spacing_s * sample_rate))
    clusters = _enforce_refractory(candidates, smoothed, min_gap)

    # Refine to the unsmoothed maximum nearby.
    half = max(1, int(0.03 * sample_rate))
    refined = []
    for idx in clusters:
        lo, hi = max(0, idx - half), min(abp.size, idx + half + 1)
        refined.append(lo + int(np.argmax(abp[lo:hi])))
    return np.unique(np.asarray(refined, dtype=np.intp))


def match_peaks(
    r_peaks: np.ndarray,
    systolic_peaks: np.ndarray,
    sample_rate: float,
    max_lag_s: float = 0.6,
) -> list[tuple[int, int]]:
    """Pair each R peak with its corresponding systolic peak.

    Physiologically the systolic peak trails its R peak by the pulse transit
    time, so each R peak is matched to the *first* systolic peak that
    follows it within ``max_lag_s``.  R peaks with no such peak (e.g. at the
    window edge, or under attack where alignment is destroyed) are left
    unmatched -- their absence is itself a detection signal.

    Returns
    -------
    List of ``(r_index, systolic_index)`` sample-index pairs.
    """
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    r_peaks = np.asarray(r_peaks, dtype=np.intp)
    systolic_peaks = np.sort(np.asarray(systolic_peaks, dtype=np.intp))
    max_lag = int(max_lag_s * sample_rate)
    pairs: list[tuple[int, int]] = []
    for r in r_peaks:
        pos = int(np.searchsorted(systolic_peaks, r, side="right"))
        if pos < systolic_peaks.size and systolic_peaks[pos] - r <= max_lag:
            pairs.append((int(r), int(systolic_peaks[pos])))
    return pairs


def peak_indices_in_window(
    peaks: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """Peak indices falling in ``[start, stop)``, re-based to the window."""
    if stop < start:
        raise ValueError("stop must be >= start")
    peaks = np.asarray(peaks, dtype=np.intp)
    mask = (peaks >= start) & (peaks < stop)
    return peaks[mask] - start
