"""The adaptive-security decision engine.

"The core of this model is a *decision engine*, which can automatically
detect any types of constraints during compile time and runtime, and
decide which version of security app to run based on the detected resource
constraints."  The engine here does both: static constraints come from the
firmware toolchain at construction, dynamic constraints are sampled each
decision epoch, and the configured policy picks the build.
:meth:`DecisionEngine.simulate_deployment` plays the whole battery life
forward, producing the timeline the adaptive-security ablation plots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adaptive.constraints import (
    DynamicConstraints,
    StaticConstraints,
    detect_static_constraints,
)
from repro.adaptive.policy import SwitchingPolicy, VersionProfile
from repro.amulet.firmware import FirmwareToolchain
from repro.core.versions import DetectorVersion
from repro.sift_app.app import SIFTDetectorApp

__all__ = ["AdaptiveTimeline", "DecisionEngine", "TimelinePoint"]


@dataclass(frozen=True)
class TimelinePoint:
    """One decision epoch of a simulated deployment."""

    time_h: float
    battery_soc: float
    version: DetectorVersion
    accuracy: float
    switched: bool


@dataclass(frozen=True)
class AdaptiveTimeline:
    """A full simulated deployment."""

    points: tuple[TimelinePoint, ...]
    lifetime_h: float

    @property
    def lifetime_days(self) -> float:
        return self.lifetime_h / 24.0

    @property
    def n_switches(self) -> int:
        return sum(1 for p in self.points if p.switched)

    @property
    def time_weighted_accuracy(self) -> float:
        """Average detection accuracy over the deployment's lifetime."""
        if len(self.points) < 1 or self.lifetime_h <= 0:
            return 0.0
        total = 0.0
        for i, point in enumerate(self.points):
            end = (
                self.points[i + 1].time_h
                if i + 1 < len(self.points)
                else self.lifetime_h
            )
            total += point.accuracy * max(0.0, end - point.time_h)
        return total / self.lifetime_h

    def versions_used(self) -> list[DetectorVersion]:
        """The distinct versions in running order (consecutive dedup)."""
        seen: list[DetectorVersion] = []
        for point in self.points:
            if not seen or seen[-1] is not point.version:
                seen.append(point.version)
        return seen


class DecisionEngine:
    """Detect constraints and drive version switching.

    Parameters
    ----------
    candidates:
        Per-version knowledge: accuracy plus the ARP resource profile.
    policy:
        The switching policy.
    apps:
        The candidate QM apps, used to detect static constraints with the
        real toolchain; when omitted, fresh apps with dummy models are not
        built and all candidate versions are assumed deployable.
    toolchain:
        Toolchain for static-constraint detection.
    """

    def __init__(
        self,
        candidates: dict[DetectorVersion, VersionProfile],
        policy: SwitchingPolicy,
        apps: dict[DetectorVersion, SIFTDetectorApp] | None = None,
        toolchain: FirmwareToolchain | None = None,
    ) -> None:
        if not candidates:
            raise ValueError("the engine needs at least one candidate version")
        self.candidates = dict(candidates)
        self.policy = policy
        if apps is not None:
            self.static = detect_static_constraints(apps, toolchain)
        else:
            self.static = StaticConstraints(
                deployable=frozenset(candidates),
                rejections={},
                fram_headroom_bytes={},
                sram_headroom_bytes={},
            )

    def decide(self, dynamic: DynamicConstraints) -> DetectorVersion:
        """One decision: the version to run under the current constraints."""
        return self.policy.select(self.candidates, self.static, dynamic)

    def simulate_deployment(
        self,
        step_h: float = 6.0,
        hours_needed: float = 0.0,
        max_hours: float = 24.0 * 365,
    ) -> AdaptiveTimeline:
        """Play a full battery discharge under the engine's control.

        Starting from a full battery, every ``step_h`` hours the engine
        re-detects dynamic constraints and (possibly) switches versions;
        charge drains at the running version's profiled average current.
        The simulation ends when the battery empties or ``max_hours``
        elapses.
        """
        if step_h <= 0:
            raise ValueError("step_h must be positive")
        # All candidates share one battery model (they describe the same
        # physical device).
        battery = next(iter(self.candidates.values())).profile.battery
        usable_mah = battery.usable_mah

        points: list[TimelinePoint] = []
        soc = 1.0
        time_h = 0.0
        current_version: DetectorVersion | None = None
        while soc > 0.0 and time_h < max_hours:
            remaining_mission = max(0.0, hours_needed - time_h)
            dynamic = DynamicConstraints(
                battery_soc=soc, hours_needed=remaining_mission
            )
            version = self.decide(dynamic)
            switched = current_version is not None and version is not current_version
            current_version = version
            candidate = self.candidates[version]
            points.append(
                TimelinePoint(
                    time_h=time_h,
                    battery_soc=soc,
                    version=version,
                    accuracy=candidate.accuracy,
                    switched=switched,
                )
            )
            drain_ma = (
                candidate.average_current_ma + battery.self_discharge_current_ma
            )
            step_drain = drain_ma * step_h
            if step_drain >= soc * usable_mah:
                # Battery empties mid-step; end the timeline precisely.
                time_h += (soc * usable_mah) / drain_ma if drain_ma > 0 else step_h
                soc = 0.0
                break
            soc -= step_drain / usable_mah
            time_h += step_h
            # Time-aware policies (e.g. hysteresis) track the clock.
            advance = getattr(self.policy, "advance_clock", None)
            if advance is not None:
                advance(step_h)
        return AdaptiveTimeline(points=tuple(points), lifetime_h=time_h)
