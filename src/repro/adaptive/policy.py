"""Version-switching policies for the adaptive decision engine.

A policy answers the paper's second open question -- "based on the
detected resource constraints, how to decide which version of the security
app to switch to?" -- given each deployable version's resource profile and
detection accuracy.  Three reference policies:

* :class:`AccuracyFirstPolicy` -- always the most accurate deployable
  version (the non-adaptive baseline);
* :class:`SocThresholdPolicy` -- step down versions at battery-charge
  thresholds;
* :class:`LifetimeTargetPolicy` -- the heaviest version whose projected
  remaining lifetime still covers the wearer's mission time.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.adaptive.constraints import DynamicConstraints, StaticConstraints
from repro.amulet.profiler import ResourceProfile
from repro.core.versions import DetectorVersion

__all__ = [
    "AccuracyFirstPolicy",
    "LifetimeTargetPolicy",
    "SocThresholdPolicy",
    "SwitchingPolicy",
    "VersionProfile",
]


@dataclass(frozen=True)
class VersionProfile:
    """What the engine knows about one candidate version."""

    version: DetectorVersion
    accuracy: float
    profile: ResourceProfile

    @property
    def average_current_ma(self) -> float:
        return self.profile.average_current_ma


class SwitchingPolicy(abc.ABC):
    """Maps (static, dynamic) constraints to the version to run."""

    @abc.abstractmethod
    def select(
        self,
        candidates: dict[DetectorVersion, VersionProfile],
        static: StaticConstraints,
        dynamic: DynamicConstraints,
    ) -> DetectorVersion:
        """Choose among deployable candidates; raise if none exists."""

    @staticmethod
    def _deployable(
        candidates: dict[DetectorVersion, VersionProfile],
        static: StaticConstraints,
    ) -> list[VersionProfile]:
        usable = [
            candidate
            for version, candidate in candidates.items()
            if static.is_deployable(version)
        ]
        if not usable:
            raise RuntimeError(
                "no detector version passes the platform's static checks: "
                f"{static.rejections}"
            )
        return usable


class AccuracyFirstPolicy(SwitchingPolicy):
    """Ignore dynamic constraints; run the most accurate deployable build."""

    def select(
        self,
        candidates: dict[DetectorVersion, VersionProfile],
        static: StaticConstraints,
        dynamic: DynamicConstraints,
    ) -> DetectorVersion:
        usable = self._deployable(candidates, static)
        return max(usable, key=lambda c: c.accuracy).version


class SocThresholdPolicy(SwitchingPolicy):
    """Step down to lighter versions as the battery drains.

    Parameters
    ----------
    step_down_soc:
        ``{version: minimum state-of-charge}``.  At each decision point
    the policy picks the most accurate deployable version whose minimum
    SoC is at or below the current charge.
    """

    def __init__(
        self, step_down_soc: dict[DetectorVersion, float] | None = None
    ) -> None:
        self.step_down_soc = step_down_soc or {
            DetectorVersion.ORIGINAL: 0.5,
            DetectorVersion.SIMPLIFIED: 0.2,
            DetectorVersion.REDUCED: 0.0,
        }
        for version, soc in self.step_down_soc.items():
            if not 0.0 <= soc <= 1.0:
                raise ValueError(f"threshold for {version} must be in [0, 1]")

    def select(
        self,
        candidates: dict[DetectorVersion, VersionProfile],
        static: StaticConstraints,
        dynamic: DynamicConstraints,
    ) -> DetectorVersion:
        usable = self._deployable(candidates, static)
        allowed = [
            c
            for c in usable
            if self.step_down_soc.get(c.version, 0.0) <= dynamic.battery_soc
        ]
        pool = allowed or usable  # never leave the user unprotected
        return max(pool, key=lambda c: c.accuracy).version


class LifetimeTargetPolicy(SwitchingPolicy):
    """Heaviest version whose projected lifetime covers the mission time.

    The projection uses each version's profiled average current against
    the battery's *remaining* charge; if even the lightest version cannot
    cover ``dynamic.hours_needed``, the lightest one is selected (degrade
    as far as possible, never abandon detection).
    """

    def select(
        self,
        candidates: dict[DetectorVersion, VersionProfile],
        static: StaticConstraints,
        dynamic: DynamicConstraints,
    ) -> DetectorVersion:
        usable = self._deployable(candidates, static)
        feasible = []
        for candidate in usable:
            battery = candidate.profile.battery
            remaining_mah = battery.usable_mah * dynamic.battery_soc
            current = (
                candidate.average_current_ma + battery.self_discharge_current_ma
            )
            hours = remaining_mah / current if current > 0 else float("inf")
            if hours >= dynamic.hours_needed:
                feasible.append(candidate)
        if feasible:
            return max(feasible, key=lambda c: c.accuracy).version
        return min(usable, key=lambda c: c.average_current_ma).version
