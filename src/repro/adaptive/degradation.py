"""Quality-driven tier fallback with hysteresis.

The paper's adaptive-security vision switches detector versions on
*resource* pressure; under *signal* pressure the same lever applies: when
sustained low-quality input makes the heavy matrix features unreliable
(their occupancy grids smear under artifacts), stepping down to a lighter
build keeps some detection capability instead of abstaining outright.

:class:`DegradationController` consumes per-window
:class:`~repro.signals.quality.QualityReport` observations and selects a
tier from an ordered ladder (heaviest first).  It steps *down* after
``degrade_after`` consecutive degraded windows and *up* only after
``recover_after`` consecutive clean ones -- asymmetric thresholds are the
hysteresis (same spirit as
:class:`~repro.adaptive.hysteresis.HysteresisPolicy`'s dwell: stepping
down is an emergency, stepping back up must be earned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.versions import DetectorVersion
from repro.signals.quality import QualityReport

__all__ = ["DegradationController", "TierSwitch"]


@dataclass(frozen=True)
class TierSwitch:
    """One tier change, recorded at the window index that triggered it."""

    window_index: int
    version: DetectorVersion
    direction: str  # "down" | "up"


class DegradationController:
    """Hysteretic tier selector driven by signal quality.

    Parameters
    ----------
    tiers:
        The fallback ladder, heaviest build first (default: the paper's
        original -> simplified -> reduced).
    degrade_after:
        Consecutive degraded windows before stepping down one tier.
    recover_after:
        Consecutive clean windows before stepping back up one tier; kept
        larger than ``degrade_after`` by default so recovery lags
        degradation (hysteresis -- no tier thrash on a noisy boundary).
    sqi_floor:
        Quality level that counts as *degraded* for tier purposes.
        ``None`` uses each report's own ``usable`` verdict, so the
        controller degrades on the same evidence the gate abstains on.
    """

    def __init__(
        self,
        tiers: Sequence[DetectorVersion] = (
            DetectorVersion.ORIGINAL,
            DetectorVersion.SIMPLIFIED,
            DetectorVersion.REDUCED,
        ),
        degrade_after: int = 5,
        recover_after: int = 12,
        sqi_floor: float | None = None,
    ) -> None:
        if not tiers:
            raise ValueError("need at least one tier")
        if len(set(tiers)) != len(tiers):
            raise ValueError("tiers must be distinct")
        if degrade_after < 1 or recover_after < 1:
            raise ValueError("degrade_after and recover_after must be >= 1")
        if sqi_floor is not None and not 0.0 <= sqi_floor <= 1.0:
            raise ValueError("sqi_floor must be in [0, 1]")
        self.tiers = tuple(tiers)
        self.degrade_after = int(degrade_after)
        self.recover_after = int(recover_after)
        self.sqi_floor = sqi_floor
        self.reset()

    def clone(self) -> "DegradationController":
        """A fresh controller with identical parameters and no history.

        The ingestion gateway holds one template controller and spawns a
        clone per wearer session, so each wearer degrades and recovers on
        its own signal quality rather than on the interleaved stream's.
        """
        return DegradationController(
            tiers=self.tiers,
            degrade_after=self.degrade_after,
            recover_after=self.recover_after,
            sqi_floor=self.sqi_floor,
        )

    def reset(self) -> None:
        """Return to the heaviest tier and clear all history."""
        self._level = 0
        self._bad_streak = 0
        self._good_streak = 0
        self._observed = 0
        self.switches: list[TierSwitch] = []

    @property
    def active(self) -> DetectorVersion:
        """The tier currently in force."""
        return self.tiers[self._level]

    @property
    def n_observed(self) -> int:
        return self._observed

    def _degraded(self, report: QualityReport) -> bool:
        if self.sqi_floor is not None:
            return report.sqi < self.sqi_floor
        return not report.usable

    # -- snapshot/restore (gateway session persistence) -----------------

    def export_state(self) -> dict:
        """JSON-safe dump of the hysteresis state and switch history."""
        return {
            "level": self._level,
            "bad_streak": self._bad_streak,
            "good_streak": self._good_streak,
            "observed": self._observed,
            "switches": [
                [s.window_index, s.version.value, s.direction]
                for s in self.switches
            ],
        }

    def restore_state(self, exported: dict) -> None:
        """Resume from an :meth:`export_state` dump (round-trip exact)."""
        level = int(exported["level"])
        if not 0 <= level < len(self.tiers):
            raise ValueError(f"snapshot tier level {level} outside the ladder")
        self._level = level
        self._bad_streak = int(exported["bad_streak"])
        self._good_streak = int(exported["good_streak"])
        self._observed = int(exported["observed"])
        self.switches = [
            TierSwitch(
                int(index), DetectorVersion.from_name(version), str(direction)
            )
            for index, version, direction in exported["switches"]
        ]

    def observe(self, report: QualityReport) -> DetectorVersion:
        """Feed one window's quality report; returns the tier to use."""
        index = self._observed
        self._observed += 1
        if self._degraded(report):
            self._bad_streak += 1
            self._good_streak = 0
            if (
                self._bad_streak >= self.degrade_after
                and self._level < len(self.tiers) - 1
            ):
                self._level += 1
                self._bad_streak = 0
                self.switches.append(
                    TierSwitch(index, self.tiers[self._level], "down")
                )
        else:
            self._good_streak += 1
            self._bad_streak = 0
            if self._good_streak >= self.recover_after and self._level > 0:
                self._level -= 1
                self._good_streak = 0
                self.switches.append(
                    TierSwitch(index, self.tiers[self._level], "up")
                )
        return self.active
