"""Adaptive security (paper Insight #4, implemented).

The paper envisions "an adaptive security model with the ability to
automatically adjust the security level by switching between different
versions of one security app based on the available resources", driven by
a *decision engine* that observes two kinds of constraints:

- **static constraints** -- compile-time facts (memory, available
  libraries/APIs): :class:`~repro.adaptive.constraints.StaticConstraints`,
  derived from the firmware toolchain;
- **dynamic constraints** -- run-time facts (battery, CPU, memory):
  :class:`~repro.adaptive.constraints.DynamicConstraints`.

:class:`~repro.adaptive.engine.DecisionEngine` answers the paper's two
open questions concretely: constraints are detected from the toolchain's
static checks and the platform's battery/CPU state, and a pluggable
:class:`~repro.adaptive.policy.SwitchingPolicy` maps the detected state to
the detector version to run.
"""

from repro.adaptive.constraints import (
    DynamicConstraints,
    StaticConstraints,
    detect_static_constraints,
)
from repro.adaptive.degradation import DegradationController, TierSwitch
from repro.adaptive.engine import AdaptiveTimeline, DecisionEngine, TimelinePoint
from repro.adaptive.hysteresis import HysteresisPolicy
from repro.adaptive.policy import (
    AccuracyFirstPolicy,
    LifetimeTargetPolicy,
    SocThresholdPolicy,
    SwitchingPolicy,
)

__all__ = [
    "AccuracyFirstPolicy",
    "AdaptiveTimeline",
    "DecisionEngine",
    "DegradationController",
    "DynamicConstraints",
    "HysteresisPolicy",
    "LifetimeTargetPolicy",
    "SocThresholdPolicy",
    "StaticConstraints",
    "SwitchingPolicy",
    "TierSwitch",
    "TimelinePoint",
    "detect_static_constraints",
]
