"""Switching hysteresis: don't thrash between builds.

On the real device a version switch is not free -- the paper notes "the
Amulet device has to be flashed every time when switching to another
version of SIFT".  Even with dynamic loading, each switch costs energy and
a detection gap.  :class:`HysteresisPolicy` wraps any base policy with a
minimum dwell time: once a version is selected it stays in force until the
dwell elapses, unless the base policy wants to step *down* to a strictly
lighter build (battery emergencies never wait).
"""

from __future__ import annotations

from repro.adaptive.constraints import DynamicConstraints, StaticConstraints
from repro.adaptive.policy import SwitchingPolicy, VersionProfile
from repro.core.versions import DetectorVersion

__all__ = ["HysteresisPolicy"]

#: Heaviness order used to decide what counts as an emergency step-down.
_WEIGHT = {
    DetectorVersion.ORIGINAL: 2,
    DetectorVersion.SIMPLIFIED: 1,
    DetectorVersion.REDUCED: 0,
}


class HysteresisPolicy(SwitchingPolicy):
    """Minimum-dwell wrapper around another switching policy.

    Parameters
    ----------
    base:
        The wrapped policy.
    min_dwell_h:
        Hours a selection stays pinned before an *upward* (heavier or
        equal-weight lateral) switch is allowed.
    """

    def __init__(self, base: SwitchingPolicy, min_dwell_h: float = 24.0) -> None:
        if min_dwell_h < 0:
            raise ValueError("min_dwell_h must be non-negative")
        self.base = base
        self.min_dwell_h = float(min_dwell_h)
        self._current: DetectorVersion | None = None
        self._selected_at_h: float = 0.0
        self._clock_h: float = 0.0
        self.suppressed_switches = 0

    def advance_clock(self, hours: float) -> None:
        """Tell the policy how much deployment time has passed."""
        if hours < 0:
            raise ValueError("hours must be non-negative")
        self._clock_h += hours

    def reset(self) -> None:
        """Forget the pinned selection and restart the dwell clock."""
        self._current = None
        self._selected_at_h = 0.0
        self._clock_h = 0.0
        self.suppressed_switches = 0

    def select(
        self,
        candidates: dict[DetectorVersion, VersionProfile],
        static: StaticConstraints,
        dynamic: DynamicConstraints,
    ) -> DetectorVersion:
        wanted = self.base.select(candidates, static, dynamic)
        if self._current is None:
            self._current = wanted
            self._selected_at_h = self._clock_h
            return wanted
        if wanted is self._current:
            return wanted

        dwell_elapsed = self._clock_h - self._selected_at_h >= self.min_dwell_h
        stepping_down = _WEIGHT[wanted] < _WEIGHT[self._current]
        if stepping_down or dwell_elapsed:
            self._current = wanted
            self._selected_at_h = self._clock_h
            return wanted
        self.suppressed_switches += 1
        return self._current
