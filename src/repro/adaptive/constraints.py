"""Resource constraints, static and dynamic.

The paper's adaptive model "considers two types of resource constraints:
1) static constraints, which exist[] in the compile time, such as the
memory, available library, available API ...  2) dynamic constraints,
which exist[] in the runtime, such as the memory, CPU cycle, battery power
...".  Static constraints are *detected* here by actually running each
candidate build through the firmware toolchain -- a version that fails its
static checks (doesn't fit, needs an unavailable library) is simply not
deployable on this platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.amulet.firmware import FirmwareToolchain, StaticCheckError
from repro.amulet.qm import QMApp
from repro.core.versions import DetectorVersion

__all__ = ["DynamicConstraints", "StaticConstraints", "detect_static_constraints"]


@dataclass(frozen=True)
class StaticConstraints:
    """Compile-time feasibility of each candidate build.

    Attributes
    ----------
    deployable:
        Versions whose firmware image passed all static checks.
    rejections:
        For non-deployable versions, the toolchain's reason.
    fram_headroom_bytes / sram_headroom_bytes:
        Remaining device memory for the *largest* deployable image.
    """

    deployable: frozenset[DetectorVersion]
    rejections: dict[DetectorVersion, str]
    fram_headroom_bytes: dict[DetectorVersion, int]
    sram_headroom_bytes: dict[DetectorVersion, int]

    def is_deployable(self, version: DetectorVersion) -> bool:
        """Did this version pass every compile-time check?"""
        return version in self.deployable


@dataclass(frozen=True)
class DynamicConstraints:
    """A runtime resource snapshot.

    Attributes
    ----------
    battery_soc:
        State of charge in [0, 1].
    cpu_load:
        Fraction of CPU time already committed to other apps, in [0, 1).
    free_fram_bytes / free_sram_bytes:
        Memory currently available for app switching.
    hours_needed:
        How much longer the wearer needs the device to last (the
        mission-time input to lifetime-target policies).
    """

    battery_soc: float
    cpu_load: float = 0.0
    free_fram_bytes: int = 128 * 1024
    free_sram_bytes: int = 2 * 1024
    hours_needed: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.battery_soc <= 1.0:
            raise ValueError("battery_soc must be in [0, 1]")
        if not 0.0 <= self.cpu_load < 1.0:
            raise ValueError("cpu_load must be in [0, 1)")
        if self.hours_needed < 0:
            raise ValueError("hours_needed must be non-negative")


def detect_static_constraints(
    apps: dict[DetectorVersion, QMApp],
    toolchain: FirmwareToolchain | None = None,
) -> StaticConstraints:
    """Run every candidate build through the toolchain's static checks."""
    toolchain = toolchain or FirmwareToolchain()
    deployable: set[DetectorVersion] = set()
    rejections: dict[DetectorVersion, str] = {}
    fram_headroom: dict[DetectorVersion, int] = {}
    sram_headroom: dict[DetectorVersion, int] = {}
    for version, app in apps.items():
        try:
            image = toolchain.build([app])
        except StaticCheckError as error:
            rejections[version] = str(error)
            continue
        deployable.add(version)
        mcu = toolchain.hardware.mcu
        fram_headroom[version] = mcu.fram_bytes - image.total_fram_bytes
        sram_headroom[version] = mcu.sram_bytes - image.total_sram_bytes
    return StaticConstraints(
        deployable=frozenset(deployable),
        rejections=rejections,
        fram_headroom_bytes=fram_headroom,
        sram_headroom_bytes=sram_headroom,
    )
