"""Machine-learning substrate, implemented from scratch on numpy.

The paper trains a linear-kernel SVM offline ("we fed a set of positive and
negative feature points into the SVM classifier with a linear kernel") and
hand-translates the prediction function to C for the Amulet.  This
subpackage provides:

- :class:`~repro.ml.svm.SVC` -- an SMO-based support vector classifier
  (linear and RBF kernels);
- :class:`~repro.ml.scaler.StandardScaler` -- feature standardization;
- :mod:`~repro.ml.metrics` -- the paper's metrics (FP rate, FN rate,
  accuracy, F1);
- :mod:`~repro.ml.baselines` -- the "other algorithms we tried" (logistic
  regression, k-NN, nearest centroid);
- :mod:`~repro.ml.model_codegen` -- exports a trained linear model to a
  fixed-point integer decision function plus C source, the analogue of the
  paper's hand translation.
"""

from repro.ml.baselines import (
    KNearestNeighbors,
    LogisticRegression,
    NearestCentroid,
)
from repro.ml.kernels import Kernel, LinearKernel, RBFKernel, make_kernel
from repro.ml.metrics import (
    ClassificationCounts,
    DetectionReport,
    mean_report,
    score_predictions,
)
from repro.ml.model_codegen import FixedPointLinearModel, export_fixed_point
from repro.ml.model_selection import (
    CVResult,
    GridSearchResult,
    cross_validate,
    grid_search_c,
    stratified_folds,
)
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC

__all__ = [
    "CVResult",
    "ClassificationCounts",
    "DetectionReport",
    "FixedPointLinearModel",
    "GridSearchResult",
    "KNearestNeighbors",
    "Kernel",
    "LinearKernel",
    "LogisticRegression",
    "NearestCentroid",
    "RBFKernel",
    "SVC",
    "StandardScaler",
    "cross_validate",
    "export_fixed_point",
    "grid_search_c",
    "make_kernel",
    "mean_report",
    "score_predictions",
    "stratified_folds",
]
