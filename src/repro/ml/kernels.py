"""Kernel functions for the SVM."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Kernel", "LinearKernel", "RBFKernel", "make_kernel"]


class Kernel(abc.ABC):
    """A positive-semidefinite kernel ``k(x, z)``."""

    @abc.abstractmethod
    def __call__(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Gram matrix between row-sets ``x`` (m, d) and ``z`` (n, d)."""


class LinearKernel(Kernel):
    """``k(x, z) = x . z`` -- the kernel the paper deploys."""

    def __call__(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64) @ np.asarray(z, dtype=np.float64).T

    def __repr__(self) -> str:
        return "LinearKernel()"


class RBFKernel(Kernel):
    """``k(x, z) = exp(-gamma * ||x - z||^2)``.

    Included for the classifier-choice ablation; it cannot be deployed on
    the Amulet's Simplified/Reduced builds because evaluation requires
    ``exp`` from libm.
    """

    def __init__(self, gamma: float = 0.5) -> None:
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.gamma = float(gamma)

    def __call__(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        z = np.asarray(z, dtype=np.float64)
        # einsum keeps each row's cross term batch-size invariant (BLAS
        # gemm/gemv pick different kernels per shape), so scoring one row
        # at a time matches scoring a whole stream bit-for-bit.
        sq = (
            np.sum(x**2, axis=1)[:, None]
            - 2.0 * np.einsum("ik,jk->ij", x, z)
            + np.sum(z**2, axis=1)[None, :]
        )
        return np.exp(-self.gamma * np.maximum(sq, 0.0))

    def __repr__(self) -> str:
        return f"RBFKernel(gamma={self.gamma})"


def make_kernel(name: str, gamma: float = 0.5) -> Kernel:
    """Kernel factory: ``"linear"`` or ``"rbf"``."""
    if name == "linear":
        return LinearKernel()
    if name == "rbf":
        return RBFKernel(gamma=gamma)
    raise ValueError(f"unknown kernel: {name!r}")
