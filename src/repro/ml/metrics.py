"""Detection metrics, defined exactly as in the paper.

* *false positive rate* -- "the fraction of the cases in which an unaltered
  ECG sensor measurement is misclassified as altered";
* *false negative rate* -- "the fraction of the cases where an altered ECG
  sensor measurement is misclassified as unaltered";
* *accuracy rate* -- the fraction of all cases classified correctly;
* *F1* -- harmonic mean of precision and recall on the positive
  ("altered") class, as the paper's footnote defines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ClassificationCounts",
    "DetectionReport",
    "mean_report",
    "score_predictions",
]


@dataclass(frozen=True)
class ClassificationCounts:
    """Confusion-matrix counts ("altered" is the positive class)."""

    true_positive: int
    true_negative: int
    false_positive: int
    false_negative: int

    def __post_init__(self) -> None:
        for name in ("true_positive", "true_negative", "false_positive", "false_negative"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total(self) -> int:
        return (
            self.true_positive
            + self.true_negative
            + self.false_positive
            + self.false_negative
        )


@dataclass(frozen=True)
class DetectionReport:
    """The four rates the paper reports, as fractions in [0, 1]."""

    false_positive_rate: float
    false_negative_rate: float
    accuracy: float
    f1: float

    def as_percent_row(self) -> tuple[float, float, float, float]:
        """``(FP%, FN%, Acc%, F1%)`` -- the layout of the paper's Table II."""
        return (
            100.0 * self.false_positive_rate,
            100.0 * self.false_negative_rate,
            100.0 * self.accuracy,
            100.0 * self.f1,
        )


def _counts(predicted: np.ndarray, actual: np.ndarray) -> ClassificationCounts:
    predicted = np.asarray(predicted, dtype=bool)
    actual = np.asarray(actual, dtype=bool)
    if predicted.shape != actual.shape:
        raise ValueError("predicted and actual label arrays must match in shape")
    return ClassificationCounts(
        true_positive=int(np.sum(predicted & actual)),
        true_negative=int(np.sum(~predicted & ~actual)),
        false_positive=int(np.sum(predicted & ~actual)),
        false_negative=int(np.sum(~predicted & actual)),
    )


def score_predictions(
    predicted: Sequence[bool] | np.ndarray, actual: Sequence[bool] | np.ndarray
) -> DetectionReport:
    """Score boolean predictions (``True`` = classified as altered).

    Rates follow the paper's definitions: FP rate is normalized by the
    number of genuinely *unaltered* cases and FN rate by the number of
    genuinely *altered* cases.  Degenerate denominators yield a rate of
    0.0 (no cases of that kind, hence no errors of that kind).
    """
    c = _counts(np.asarray(predicted), np.asarray(actual))
    negatives = c.true_negative + c.false_positive
    positives = c.true_positive + c.false_negative
    fp_rate = c.false_positive / negatives if negatives else 0.0
    fn_rate = c.false_negative / positives if positives else 0.0
    accuracy = (c.true_positive + c.true_negative) / c.total if c.total else 0.0

    predicted_positive = c.true_positive + c.false_positive
    precision = c.true_positive / predicted_positive if predicted_positive else 0.0
    recall = c.true_positive / positives if positives else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return DetectionReport(
        false_positive_rate=fp_rate,
        false_negative_rate=fn_rate,
        accuracy=accuracy,
        f1=f1,
    )


def mean_report(reports: Iterable[DetectionReport]) -> DetectionReport:
    """Average per-subject reports, the paper's "Avg." columns."""
    reports = list(reports)
    if not reports:
        raise ValueError("cannot average zero reports")
    return DetectionReport(
        false_positive_rate=float(
            np.mean([r.false_positive_rate for r in reports])
        ),
        false_negative_rate=float(
            np.mean([r.false_negative_rate for r in reports])
        ),
        accuracy=float(np.mean([r.accuracy for r in reports])),
        f1=float(np.mean([r.f1 for r in reports])),
    )
