"""Model selection: cross-validation and hyper-parameter search.

The paper's choices (SVM, linear kernel, 20-minute training) came from a
tuning phase it only summarizes.  These utilities make that phase
reproducible: stratified k-fold cross-validation over a training set, a
grid search over the soft-margin penalty ``C``, and accuracy scoring that
matches the paper's metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml.metrics import score_predictions
from repro.ml.scaler import StandardScaler

__all__ = ["CVResult", "GridSearchResult", "cross_validate", "grid_search_c", "stratified_folds"]


def stratified_folds(
    y: np.ndarray, n_folds: int, rng: np.random.Generator | None = None
) -> list[np.ndarray]:
    """Index folds preserving the class balance.

    Each fold receives an equal share of the positive and of the negative
    examples (up to rounding), shuffled within class.
    """
    y = np.asarray(y, dtype=bool)
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    minority = int(min(y.sum(), (~y).sum()))
    if minority < n_folds:
        raise ValueError(
            f"cannot stratify: the smaller class has {minority} examples "
            f"for {n_folds} folds"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    for label in (True, False):
        indices = np.flatnonzero(y == label)
        rng.shuffle(indices)
        for i, index in enumerate(indices):
            folds[i % n_folds].append(int(index))
    return [np.sort(np.asarray(fold, dtype=np.intp)) for fold in folds]


@dataclass(frozen=True)
class CVResult:
    """Per-fold accuracies of one cross-validated configuration."""

    fold_accuracies: tuple[float, ...]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.fold_accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.fold_accuracies))


def cross_validate(
    classifier_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    rng: np.random.Generator | None = None,
) -> CVResult:
    """Stratified k-fold cross-validation of any project classifier.

    The classifier must expose ``fit(X, y)`` and ``predict_bool(X)``
    (every classifier in :mod:`repro.ml` does).  A fresh classifier and a
    fresh scaler are fitted per fold; the scaler is fitted on the training
    split only, so no information leaks into validation.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=bool)
    folds = stratified_folds(y, n_folds, rng)
    accuracies = []
    for held_out in folds:
        mask = np.ones(X.shape[0], dtype=bool)
        mask[held_out] = False
        scaler = StandardScaler()
        X_train = scaler.fit_transform(X[mask])
        clf = classifier_factory()
        clf.fit(X_train, y[mask])
        predictions = clf.predict_bool(scaler.transform(X[held_out]))
        accuracies.append(score_predictions(predictions, y[held_out]).accuracy)
    return CVResult(fold_accuracies=tuple(accuracies))


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of a hyper-parameter grid search."""

    scores: dict[float, CVResult]
    best_value: float

    @property
    def best_result(self) -> CVResult:
        return self.scores[self.best_value]


def grid_search_c(
    X: np.ndarray,
    y: np.ndarray,
    c_values: Sequence[float] = (0.1, 0.3, 1.0, 3.0, 10.0),
    n_folds: int = 5,
    rng: np.random.Generator | None = None,
) -> GridSearchResult:
    """Cross-validated search over the SVM's soft-margin penalty.

    Ties break toward the *smallest* ``C`` (the strongest regularization),
    the conventional choice for deployment on unseen wearers.
    """
    from repro.ml.svm import SVC  # local import to avoid a cycle

    if not c_values:
        raise ValueError("c_values must be non-empty")
    rng = rng if rng is not None else np.random.default_rng(0)
    scores: dict[float, CVResult] = {}
    for c in c_values:
        # Identical folds across C values for a paired comparison.
        fold_rng = np.random.default_rng(12345)
        scores[float(c)] = cross_validate(
            lambda c=c: SVC(C=float(c)), X, y, n_folds=n_folds, rng=fold_rng
        )
    best_value = min(
        scores,
        key=lambda c: (-round(scores[c].mean_accuracy, 12), c),
    )
    return GridSearchResult(scores=scores, best_value=best_value)
