"""Feature standardization.

SIFT's eight features live on wildly different scales (a spatial-filling
index near zero, squared distances up to two, AUC values in the tens), so
the SVM is trained on standardized features.  The fitted mean/scale become
part of the deployed model -- on the Amulet they are folded into the
fixed-point linear decision function by :mod:`repro.ml.model_codegen`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Standardize features to zero mean and unit variance.

    Constant features (zero variance) are centered but not scaled, so
    transforming never divides by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-feature means and scales."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (n_samples, n_features)")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a scaler on zero samples")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardize features with the fitted statistics."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.mean_.size:
            raise ValueError(
                f"expected {self.mean_.size} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit on ``X`` and return its standardized form."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Map standardized features back to raw units."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return np.atleast_2d(np.asarray(X, dtype=np.float64)) * self.scale_ + self.mean_
