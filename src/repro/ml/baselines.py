"""Baseline classifiers.

The paper chose the SVM because "it performed the best among the
algorithms we tried".  These are the standard alternatives such a study
tries, implemented from scratch so the classifier-choice ablation
(`benchmarks/bench_ablations.py`) can reproduce that comparison.

All baselines share the :class:`SVC` label conventions: training labels may
be boolean or {0,1} or {-1,+1}; ``predict_bool`` returns ``True`` for the
positive ("altered") class.
"""

from __future__ import annotations

import numpy as np

from repro.ml.svm import _canonical_labels

__all__ = ["KNearestNeighbors", "LogisticRegression", "NearestCentroid"]


class LogisticRegression:
    """L2-regularized logistic regression trained by batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        l2: float = 1e-3,
        n_iter: int = 500,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.learning_rate = float(learning_rate)
        self.l2 = float(l2)
        self.n_iter = int(n_iter)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Batch gradient descent on the regularized log-loss."""
        X = np.asarray(X, dtype=np.float64)
        target = (_canonical_labels(y) + 1.0) / 2.0  # {0, 1}
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iter):
            z = X @ w + b
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
            grad_w = X.T @ (p - target) / n + self.l2 * w
            grad_b = float(np.mean(p - target))
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.coef_ = w
        self.intercept_ = b
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """The linear logit; >= 0 means the positive class."""
        if self.coef_ is None:
            raise RuntimeError("LogisticRegression is not fitted")
        return np.atleast_2d(np.asarray(X, dtype=np.float64)) @ self.coef_ + self.intercept_

    def predict_bool(self, X: np.ndarray) -> np.ndarray:
        """Thresholded labels (``True`` = positive class)."""
        return self.decision_function(X) >= 0.0


class KNearestNeighbors:
    """k-nearest-neighbour majority vote with Euclidean distance."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighbors":
        """Memorize the training set."""
        X = np.asarray(X, dtype=np.float64)
        if X.shape[0] < self.k:
            raise ValueError("need at least k training samples")
        self._X = X
        self._y = _canonical_labels(y)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Mean neighbour label in [-1, 1]; >= 0 means positive class."""
        if self._X is None or self._y is None:
            raise RuntimeError("KNearestNeighbors is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        sq = (
            np.sum(X**2, axis=1)[:, None]
            - 2.0 * X @ self._X.T
            + np.sum(self._X**2, axis=1)[None, :]
        )
        nearest = np.argpartition(sq, self.k - 1, axis=1)[:, : self.k]
        return np.mean(self._y[nearest], axis=1)

    def predict_bool(self, X: np.ndarray) -> np.ndarray:
        """Majority-vote labels (``True`` = positive class)."""
        return self.decision_function(X) >= 0.0


class NearestCentroid:
    """Classify by the nearer class centroid -- the simplest baseline."""

    def __init__(self) -> None:
        self.centroid_pos_: np.ndarray | None = None
        self.centroid_neg_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NearestCentroid":
        """Compute the two class centroids."""
        X = np.asarray(X, dtype=np.float64)
        labels = _canonical_labels(y)
        if not (np.any(labels > 0) and np.any(labels < 0)):
            raise ValueError("training data must contain both classes")
        self.centroid_pos_ = X[labels > 0].mean(axis=0)
        self.centroid_neg_ = X[labels < 0].mean(axis=0)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Negative-centroid distance minus positive-centroid distance."""
        if self.centroid_pos_ is None or self.centroid_neg_ is None:
            raise RuntimeError("NearestCentroid is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        d_pos = np.linalg.norm(X - self.centroid_pos_, axis=1)
        d_neg = np.linalg.norm(X - self.centroid_neg_, axis=1)
        return d_neg - d_pos

    def predict_bool(self, X: np.ndarray) -> np.ndarray:
        """``True`` where the positive centroid is nearer."""
        return self.decision_function(X) >= 0.0
