"""Support vector classification via Sequential Minimal Optimization.

A from-scratch soft-margin SVM solver (Platt's SMO with the standard
pair-selection heuristics of the simplified variant).  Problem sizes in
this project are small -- a few hundred 8-dimensional feature points per
user model -- so the O(n^2) kernel matrix is precomputed.

Labels are ``{-1, +1}``; the convenience wrapper also accepts ``{0, 1}``
and boolean arrays (``True`` = positive = "altered window").
"""

from __future__ import annotations

import numpy as np

from repro.ml.kernels import Kernel, LinearKernel

__all__ = ["SVC"]


def _canonical_labels(y: np.ndarray) -> np.ndarray:
    """Map {0,1} / bool / {-1,+1} labels onto {-1.0, +1.0}."""
    y = np.asarray(y)
    if y.dtype == bool:
        return np.where(y, 1.0, -1.0)
    values = np.unique(y)
    if np.array_equal(values, [0, 1]) or np.array_equal(values, [0]) or np.array_equal(values, [1]):
        return np.where(y > 0, 1.0, -1.0)
    if not np.all(np.isin(values, (-1, 1))):
        raise ValueError(f"labels must be binary, got values {values}")
    return y.astype(np.float64)


class SVC:
    """Soft-margin kernel SVM trained with SMO.

    Parameters
    ----------
    C:
        Soft-margin penalty.
    kernel:
        A :class:`~repro.ml.kernels.Kernel`; defaults to linear, matching
        the paper's deployed model.
    tol:
        KKT violation tolerance.
    max_passes:
        Number of consecutive full passes without any multiplier update
        required before declaring convergence.
    max_iter:
        Hard cap on full passes over the data.
    seed:
        Seed for the internal pair-selection RNG (SMO picks the second
        multiplier randomly when no heuristic candidate works).
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: Kernel | None = None,
        tol: float = 1e-3,
        max_passes: int = 5,
        max_iter: int = 200,
        seed: int = 0,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.C = float(C)
        self.kernel = kernel or LinearKernel()
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.max_iter = int(max_iter)
        self.seed = int(seed)
        # Fitted state
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None  # alpha_i * y_i at SVs
        self.intercept_: float = 0.0
        self.coef_: np.ndarray | None = None  # primal w for linear kernels
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVC":
        """Train with SMO on labels in {-1,+1} / {0,1} / bool."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D (n_samples, n_features)")
        y = _canonical_labels(y)
        if y.shape != (X.shape[0],):
            raise ValueError("y must have one label per row of X")
        if np.unique(y).size < 2:
            raise ValueError("training data must contain both classes")

        n = X.shape[0]
        K = self.kernel(X, X)
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)

        def decision(i: int) -> float:
            return float(np.dot(alpha * y, K[:, i]) + b)

        passes = 0
        iteration = 0
        while passes < self.max_passes and iteration < self.max_iter:
            changed = 0
            for i in range(n):
                e_i = decision(i) - y[i]
                violates = (y[i] * e_i < -self.tol and alpha[i] < self.C) or (
                    y[i] * e_i > self.tol and alpha[i] > 0
                )
                if not violates:
                    continue
                j = int(rng.integers(n - 1))
                if j >= i:
                    j += 1
                e_j = decision(j) - y[j]

                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(self.C, self.C + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - self.C)
                    high = min(self.C, alpha[i] + alpha[j])
                if high - low < 1e-12:
                    continue
                eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                if eta >= 0:
                    continue
                alpha[j] = np.clip(alpha[j] - y[j] * (e_i - e_j) / eta, low, high)
                if abs(alpha[j] - alpha_j_old) < 1e-7:
                    continue
                alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j])

                b1 = (
                    b
                    - e_i
                    - y[i] * (alpha[i] - alpha_i_old) * K[i, i]
                    - y[j] * (alpha[j] - alpha_j_old) * K[i, j]
                )
                b2 = (
                    b
                    - e_j
                    - y[i] * (alpha[i] - alpha_i_old) * K[i, j]
                    - y[j] * (alpha[j] - alpha_j_old) * K[j, j]
                )
                if 0 < alpha[i] < self.C:
                    b = b1
                elif 0 < alpha[j] < self.C:
                    b = b2
                else:
                    b = 0.5 * (b1 + b2)
                changed += 1
            passes = passes + 1 if changed == 0 else 0
            iteration += 1

        self.n_iter_ = iteration
        support = alpha > 1e-8
        self.support_vectors_ = X[support]
        self.dual_coef_ = (alpha * y)[support]
        self.intercept_ = float(b)
        if isinstance(self.kernel, LinearKernel):
            self.coef_ = self.dual_coef_ @ self.support_vectors_
        else:
            self.coef_ = None
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed distance-like score; positive means the positive class.

        Scoring is *batch-size invariant*: each row's score is computed
        with the same reduction regardless of how many rows are scored at
        once (``np.einsum`` rather than BLAS, whose kernel choice -- and
        hence rounding -- depends on the matrix shape).  This is what lets
        ``SIFTDetector.decision_values`` score a whole stream in one pass
        and still agree bit-for-bit with the per-window scalar path.
        """
        if self.support_vectors_ is None or self.dual_coef_ is None:
            raise RuntimeError("SVC is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self.coef_ is not None:
            return np.einsum("ij,j->i", X, self.coef_) + self.intercept_
        return (
            np.einsum(
                "ij,j->i", self.kernel(X, self.support_vectors_), self.dual_coef_
            )
            + self.intercept_
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1)

    def predict_bool(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels as booleans (``True`` = positive = altered)."""
        return self.decision_function(X) >= 0.0
