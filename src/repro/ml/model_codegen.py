"""Deployment of a trained linear model as fixed-point integer code.

The paper: "we then translate the prediction function of the trained model
into C code and implemented the MLClassifier state."  The MSP430 has no
floating-point unit, so the practical translation quantizes the affine
decision function to integer arithmetic.  This module performs exactly
that:

1. the :class:`~repro.ml.scaler.StandardScaler` is *folded into* the SVM's
   primal weights, yielding a single affine function
   ``f(x) = w' . x + b'`` over raw (unstandardized) features;
2. ``w'`` and ``b'`` are quantized to a Qm.n fixed-point format;
3. :func:`FixedPointLinearModel.to_c_source` emits the corresponding C
   function -- the artifact a developer would paste into the QM model.

The resulting :class:`FixedPointLinearModel` is what the simulated Amulet
app executes, so Table II's "Amulet" rows reflect genuine quantization
error rather than a float model relabelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC

__all__ = [
    "FixedPointLinearModel",
    "c_double_literal",
    "export_fixed_point",
    "parse_c_double_literal",
]

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1


def c_double_literal(value: float) -> str:
    """A C ``double`` literal that round-trips ``value`` bit-for-bit.

    Decimal formatting is a minefield for exact code generation: ``%.17g``
    survives re-parsing, but shorter forms silently lose the last ulp, and
    negative zero or subnormals are easy to mangle.  Hexadecimal float
    literals (C99 6.4.4.2) sidestep the problem entirely -- the mantissa is
    written in base 16, so every finite float64 (including ``-0.0`` and
    subnormals like ``5e-324``) has an exact, unambiguous spelling that
    any conforming compiler parses back to the same bits.

    Non-finite values are rejected: model constants are validated finite
    upstream, and ``NAN``/``INFINITY`` would drag ``math.h`` macros into
    otherwise self-contained generated code.
    """
    value = float(value)
    if not np.isfinite(value):
        raise ValueError(f"cannot emit a C literal for non-finite value {value!r}")
    return value.hex()


def parse_c_double_literal(literal: str) -> float:
    """Parse a literal produced by :func:`c_double_literal` (for tests/audit).

    ``float.fromhex`` implements exactly the C99 hexadecimal-float grammar
    the compiler applies, so this is a faithful model of what the compiled
    constant's bits will be.
    """
    return float.fromhex(literal.strip())


def _saturate32(values: np.ndarray | int) -> np.ndarray | int:
    """Clamp to the int32 range, as MSP430 saturating code would."""
    return np.clip(values, _INT32_MIN, _INT32_MAX)


@dataclass(frozen=True)
class FixedPointLinearModel:
    """An affine decision function in Q(31-n).n fixed point.

    Attributes
    ----------
    weights_q:
        Quantized weights, int64 holding int32-range values.
    bias_q:
        Quantized bias at the *same* scale as the features and weights'
        product (see :meth:`decision_fixed`).
    frac_bits:
        Number of fractional bits ``n``; a real value ``v`` is represented
        as ``round(v * 2**n)``.
    """

    weights_q: np.ndarray
    bias_q: int
    frac_bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.frac_bits <= 30:
            raise ValueError("frac_bits must be in [1, 30]")
        weights = np.asarray(self.weights_q, dtype=np.int64)
        if weights.ndim != 1:
            raise ValueError("weights_q must be 1-D")
        object.__setattr__(self, "weights_q", weights)

    @property
    def n_features(self) -> int:
        return int(self.weights_q.size)

    @property
    def scale(self) -> int:
        return 1 << self.frac_bits

    # ------------------------------------------------------------------
    # Quantization helpers
    # ------------------------------------------------------------------

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Convert real-valued features to this model's fixed-point format."""
        q = np.round(np.asarray(values, dtype=np.float64) * self.scale)
        return np.asarray(_saturate32(q), dtype=np.int64)

    def dequantize(self, values_q: np.ndarray) -> np.ndarray:
        """Convert fixed-point values back to floats."""
        return np.asarray(values_q, dtype=np.float64) / self.scale

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def decision_fixed(self, features_q: np.ndarray) -> int:
        """Integer decision value for one quantized feature vector.

        Each product of two Qn values carries ``2n`` fractional bits and is
        shifted back down to ``n`` before accumulation (the standard
        embedded idiom); the accumulator saturates at int32 like the
        generated C code would.
        """
        features_q = np.asarray(features_q, dtype=np.int64)
        if features_q.shape != (self.n_features,):
            raise ValueError(
                f"expected {self.n_features} features, got shape {features_q.shape}"
            )
        acc = int(self.bias_q)
        for w, x in zip(self.weights_q.tolist(), features_q.tolist()):
            acc = int(_saturate32(acc + ((w * x) >> self.frac_bits)))
        return acc

    def predict_bool_fixed(self, features_q: np.ndarray) -> bool:
        """``True`` when the quantized decision value is non-negative."""
        return self.decision_fixed(features_q) >= 0

    def decision_float(self, features: np.ndarray) -> float:
        """Convenience: quantize real features, decide, dequantize."""
        return self.decision_fixed(self.quantize(features)) / self.scale

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------

    def to_c_source(self, function_name: str = "sift_classify") -> str:
        """Emit the MLClassifier decision function as C source.

        The emitted function takes the quantized feature array and returns
        1 for "altered", 0 for "unaltered" -- the paper's hand-translated
        prediction function, generated mechanically.
        """
        weights = ", ".join(str(int(w)) for w in self.weights_q)
        return (
            f"/* Auto-generated SIFT linear decision function.\n"
            f" * Fixed point: Q{31 - self.frac_bits}.{self.frac_bits}"
            f" (scale = {self.scale}). */\n"
            f"#define SIFT_N_FEATURES {self.n_features}\n"
            f"static const int32_t sift_weights[SIFT_N_FEATURES] = {{ {weights} }};\n"
            f"static const int32_t sift_bias = {int(self.bias_q)};\n"
            f"\n"
            f"int {function_name}(const int32_t features[SIFT_N_FEATURES]) {{\n"
            f"    int32_t acc = sift_bias;\n"
            f"    for (int i = 0; i < SIFT_N_FEATURES; i++) {{\n"
            f"        acc += (int32_t)(((int64_t)sift_weights[i] * features[i])"
            f" >> {self.frac_bits});\n"
            f"    }}\n"
            f"    return acc >= 0 ? 1 : 0;\n"
            f"}}\n"
        )

    @property
    def code_size_bytes(self) -> int:
        """Footprint estimate of the generated classifier.

        Weight and bias tables (4 bytes each) plus a fixed instruction
        budget for the multiply-accumulate loop on MSP430.
        """
        return 4 * (self.n_features + 1) + 96


def export_fixed_point(
    svc: SVC,
    scaler: StandardScaler,
    frac_bits: int = 14,
    feature_ranges: Sequence[tuple[float, float]] | tuple[float, float] | None = None,
) -> FixedPointLinearModel:
    """Fold a scaler into a trained linear SVC and quantize.

    Given standardization ``z = (x - mu) / sigma`` and the SVM decision
    ``f(z) = w . z + b``, the deployed function over raw features is
    ``f(x) = (w / sigma) . x + (b - w . (mu / sigma))``.

    When ``feature_ranges`` is given (one real-valued ``(lo, hi)`` pair,
    or one per feature), the OVF001 interval analysis from
    :mod:`repro.analysis.overflow` must *prove* that the int32
    accumulator cannot saturate for inputs in that range -- the static
    counterpart of the saturation guard in :meth:`decision_fixed`.

    Raises
    ------
    ValueError
        If the SVC was trained with a non-linear kernel (no primal
        weights), if the folded weights overflow the chosen format, or
        if the overflow analysis cannot prove the accumulator safe for
        the declared feature ranges.
    """
    if svc.coef_ is None:
        raise ValueError(
            "fixed-point export requires a linear kernel (primal weights); "
            "the paper's deployed model is linear for this reason"
        )
    if scaler.mean_ is None or scaler.scale_ is None:
        raise ValueError("scaler must be fitted")
    if scaler.mean_.size != svc.coef_.size:
        raise ValueError("scaler and SVC disagree on the number of features")

    weights = svc.coef_ / scaler.scale_
    bias = float(svc.intercept_ - np.dot(svc.coef_, scaler.mean_ / scaler.scale_))

    scale = 1 << frac_bits
    weights_q = np.round(weights * scale)
    bias_q = round(bias * scale)
    if np.any(np.abs(weights_q) > _INT32_MAX) or abs(bias_q) > _INT32_MAX:
        raise ValueError(
            f"model does not fit Q{31 - frac_bits}.{frac_bits}; "
            "reduce frac_bits or rescale features"
        )
    model = FixedPointLinearModel(
        weights_q=weights_q.astype(np.int64),
        bias_q=int(bias_q),
        frac_bits=int(frac_bits),
    )
    if feature_ranges is not None:
        # Imported lazily: repro.analysis.overflow type-references this
        # module, and the export path must stay importable without it.
        from repro.analysis.overflow import analyze_model

        report = analyze_model(model, feature_ranges)
        if report.saturation_reachable:
            raise ValueError(
                "OVF001: accumulator can saturate for the declared feature "
                f"ranges (worst case {report.worst_bits} bits, interval "
                f"[{report.lo}, {report.hi}]); reduce frac_bits or narrow "
                "the ranges"
            )
    return model
