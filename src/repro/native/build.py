"""Host-side build and loading of the generated scoring hot path.

The native backend is strictly optional: every capability it needs -- a C
compiler, numpy's bundled SVML ``atan2`` for the Original tier -- is probed
at runtime, and any missing piece downgrades the answer to "unavailable"
(the detector then stays on the NumPy path).  Nothing here is a hard
dependency and nothing raises during import.

Compiled artifacts are cached on disk, keyed by a digest of the generated
source, the compiler command line and the numpy version (the parity
contract is against a specific numpy's kernels).  A second process -- or a
supervised scoring child rebuilding its detectors after a crash -- reuses
the cached ``.so`` without recompiling; concurrent builders race benignly
via an atomic rename.

Loading prefers cffi's ABI mode and falls back to ctypes, so the backend
works even where cffi is absent.
"""

from __future__ import annotations

import ctypes
import getpass
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.versions import DetectorVersion
from repro.native.codegen import hot_path_cdef

__all__ = [
    "BuildError",
    "LoadedScoringLib",
    "cache_dir",
    "compile_flags",
    "compile_hot_path",
    "find_compiler",
    "svml_atan2_address",
    "svml_atan2_supported",
]

#: Mandatory flags: gcc defaults to ``-ffp-contract=fast`` at ``-O2``,
#: which fuses multiply-adds and breaks bit parity with numpy.
_BASE_FLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off")

#: The SVML routine numpy's ``np.arctan2`` dispatches to on AVX-512 hosts.
#: The ``_ha`` (high-accuracy) variant is the one numpy calls; the plain
#: ``__svml_atan28`` is a different polynomial and does NOT match.
_SVML_ATAN2 = "__svml_atan28_ha"


class BuildError(RuntimeError):
    """The native scoring library could not be built or loaded."""


def find_compiler() -> str | None:
    """Locate a C compiler (``$CC``, then ``cc``, then ``gcc``)."""
    env = os.environ.get("CC")
    if env:
        return shutil.which(env)
    for name in ("cc", "gcc"):
        found = shutil.which(name)
        if found:
            return found
    return None


def compile_flags(version: DetectorVersion) -> tuple[str, ...]:
    """The compiler flags for one tier's translation unit."""
    flags = _BASE_FLAGS
    if version is DetectorVersion.ORIGINAL:
        # immintrin's 512-bit intrinsics for the SVML atan2 call.
        flags = flags + ("-mavx512f",)
    return flags


def cache_dir() -> Path:
    """Where compiled artifacts live (override: ``$REPRO_NATIVE_CACHE``)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        path = Path(override)
    else:
        try:
            user = getpass.getuser()
        except (KeyError, OSError):  # no passwd entry in minimal containers
            user = f"uid{os.getuid()}"
        path = Path(tempfile.gettempdir()) / f"repro-native-{user}"
    path.mkdir(mode=0o700, parents=True, exist_ok=True)
    return path


def _artifact_key(source: str, compiler: str, flags: tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    for part in (source, compiler, " ".join(flags), np.__version__):
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:24]


def svml_atan2_supported() -> bool:
    """Whether this host can run the Original tier's SVML ``atan2``.

    Requires both the CPU feature set numpy's SVML dispatch keys on and
    the symbol itself in numpy's extension module (absent in non-x86 or
    differently-built numpys).
    """
    try:
        from numpy._core._multiarray_umath import __cpu_features__
    except ImportError:
        return False
    if not __cpu_features__.get("AVX512_SKX"):
        return False
    return svml_atan2_address() is not None


def svml_atan2_address() -> int | None:
    """Resolve ``__svml_atan28_ha`` from numpy's own extension module."""
    try:
        import numpy._core._multiarray_umath as umath

        lib = ctypes.CDLL(umath.__file__)
        fn = getattr(lib, _SVML_ATAN2)
        return ctypes.cast(fn, ctypes.c_void_p).value
    except (ImportError, AttributeError, OSError):
        return None


def compile_hot_path(source: str, version: DetectorVersion) -> Path:
    """Compile the generated source to a cached shared object.

    Returns the artifact path; raises :class:`BuildError` when no compiler
    is available or compilation fails.
    """
    compiler = find_compiler()
    if compiler is None:
        raise BuildError("no C compiler found (set $CC or install cc/gcc)")
    flags = compile_flags(version)
    key = _artifact_key(source, compiler, flags)
    directory = cache_dir()
    artifact = directory / f"sift-{version.value}-{key}.so"
    if artifact.exists():
        return artifact

    c_path = directory / f"sift-{version.value}-{key}.c"
    c_path.write_text(source)
    staging = directory / f"{artifact.name}.tmp{os.getpid()}"
    cmd = [compiler, *flags, str(c_path), "-o", str(staging), "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        if proc.returncode != 0:
            raise BuildError(
                f"native build failed ({' '.join(cmd)}):\n{proc.stderr.strip()}"
            )
        os.replace(staging, artifact)  # atomic: racing builders converge
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise BuildError(f"native build failed: {exc}") from exc
    finally:
        if staging.exists():
            try:
                staging.unlink()
            except OSError:
                pass
    return artifact


@dataclass
class _CtypesLib:
    lib: ctypes.CDLL

    def __post_init__(self) -> None:
        lp = ctypes.POINTER(ctypes.c_long)
        dp = ctypes.POINTER(ctypes.c_double)
        fn = self.lib.sift_score_windows
        fn.restype = ctypes.c_long
        fn.argtypes = [dp, dp, ctypes.c_long, ctypes.c_long, lp, lp, lp, lp, lp, dp]
        if hasattr(self.lib, "sift_set_atan2"):
            self.lib.sift_set_atan2.restype = None
            self.lib.sift_set_atan2.argtypes = [ctypes.c_void_p]

    def set_atan2(self, address: int) -> None:
        self.lib.sift_set_atan2(ctypes.c_void_p(address))

    def score_windows(self, *args) -> int:
        def dp(a: np.ndarray):
            return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))

        def lp(a: np.ndarray):
            return a.ctypes.data_as(ctypes.POINTER(ctypes.c_long))

        ecg, abp, r_idx, r_off, s_idx, s_off, max_lag, out = args
        return int(
            self.lib.sift_score_windows(
                dp(ecg), dp(abp),
                ctypes.c_long(ecg.shape[0]), ctypes.c_long(ecg.shape[1]),
                lp(r_idx), lp(r_off), lp(s_idx), lp(s_off), lp(max_lag),
                dp(out),
            )
        )


class _CffiLib:
    def __init__(self, path: Path, version: DetectorVersion) -> None:
        import cffi

        self._ffi = cffi.FFI()
        self._ffi.cdef(hot_path_cdef(version))
        self._lib = self._ffi.dlopen(str(path))

    def set_atan2(self, address: int) -> None:
        self._lib.sift_set_atan2(self._ffi.cast("void *", address))

    def score_windows(self, *args) -> int:
        ffi = self._ffi

        def dp(a: np.ndarray):
            return ffi.cast("double *", a.ctypes.data)

        def lp(a: np.ndarray):
            return ffi.cast("long *", a.ctypes.data)

        ecg, abp, r_idx, r_off, s_idx, s_off, max_lag, out = args
        return int(
            self._lib.sift_score_windows(
                dp(ecg), dp(abp),
                ecg.shape[0], ecg.shape[1],
                lp(r_idx), lp(r_off), lp(s_idx), lp(s_off), lp(max_lag),
                dp(out),
            )
        )


class LoadedScoringLib:
    """A compiled scoring library, bound via cffi (preferred) or ctypes."""

    def __init__(self, path: Path, version: DetectorVersion) -> None:
        self.path = Path(path)
        self.version = version
        self.binding: str
        try:
            self._impl = _CffiLib(self.path, version)
            self.binding = "cffi"
        except ImportError:
            self._impl = _CtypesLib(ctypes.CDLL(str(self.path)))
            self.binding = "ctypes"
        except OSError as exc:
            raise BuildError(f"cannot load {self.path}: {exc}") from exc
        if version is DetectorVersion.ORIGINAL:
            address = svml_atan2_address()
            if address is None:
                raise BuildError(
                    "numpy does not export the SVML atan2 this host build needs"
                )
            self._impl.set_atan2(address)

    def score_windows(
        self,
        ecg: np.ndarray,
        abp: np.ndarray,
        r_idx: np.ndarray,
        r_off: np.ndarray,
        s_idx: np.ndarray,
        s_off: np.ndarray,
        max_lag: np.ndarray,
    ) -> np.ndarray:
        """Score a uniform-length batch; arrays must be C-contiguous."""
        out = np.empty(ecg.shape[0], dtype=np.float64)
        status = self._impl.score_windows(
            ecg, abp, r_idx, r_off, s_idx, s_off, max_lag, out
        )
        if status != 0:
            raise BuildError(f"sift_score_windows failed with status {status}")
        return out
