"""The ``platform="native"`` scoring backend.

A :class:`NativeScorer` wraps one fitted linear detector's model constants
and scores windows through the generated C hot path
(:mod:`repro.native.codegen` / :mod:`repro.native.build`).  It enforces
the parity contract at three levels:

1. **Build-time self-check.**  Before the first real batch, deterministic
   probe windows (including a flat-lined window and a peakless window) are
   scored both natively and through the NumPy reference pipeline; any bit
   difference marks the backend unusable and the caller falls back.
2. **Eligibility gating.**  The C kernels assume finite samples and
   in-range peak indexes (NumPy propagates NaN through ``np.min`` and
   raises on bad indexes).  Windows that violate the preconditions are
   routed to the NumPy path window-by-window; batch-size invariance of the
   reference pipeline keeps the merged result bit-identical.
3. **Uniform-length batching.**  The C entry point scores equal-length
   windows; ragged streams are scored per length group and scattered back
   in order -- again bit-identical because scoring is per-window.
"""

from __future__ import annotations

import ctypes
from typing import Callable, Sequence

import numpy as np

from repro.core.versions import DetectorVersion, make_extractor
from repro.native.build import (
    BuildError,
    LoadedScoringLib,
    compile_hot_path,
    find_compiler,
    svml_atan2_supported,
)
from repro.native.codegen import generate_hot_path_source
from repro.signals.dataset import SignalWindow

__all__ = ["NativeScorer", "NativeUnavailableError", "native_status"]

_LONG = np.dtype(ctypes.c_long)

#: Default physiological pairing lag, mirroring ``build_portrait``.
_MAX_LAG_S = 0.6


class NativeUnavailableError(RuntimeError):
    """The native backend cannot be used on this host / for this model."""


def native_status(version: DetectorVersion | str) -> tuple[bool, str]:
    """Cheap host-capability probe: ``(available, reason)``.

    Does not compile anything; :class:`NativeScorer` may still fail later
    (e.g. a broken toolchain), which downgrades to a fallback at that
    point.
    """
    if isinstance(version, str):
        version = DetectorVersion.from_name(version)
    if _LONG.itemsize != 8:
        return False, "native backend requires a 64-bit long (LP64 host)"
    if find_compiler() is None:
        return False, "no C compiler found (set $CC or install cc/gcc)"
    if version is DetectorVersion.ORIGINAL and not svml_atan2_supported():
        return False, (
            "Original tier needs numpy's SVML atan2 (AVX-512 host with an "
            "SVML-enabled numpy build)"
        )
    return True, "ok"


def _probe_windows(version: DetectorVersion, window_s: float) -> list[SignalWindow]:
    """Deterministic windows exercising the hot path's edge cases."""
    rate = 125.0
    n = max(8, int(round(window_s * rate)))
    rng = np.random.default_rng(20170605)
    t = np.arange(n) / rate

    def window(ecg, abp, r, s):
        return SignalWindow(
            ecg=np.asarray(ecg, dtype=np.float64),
            abp=np.asarray(abp, dtype=np.float64),
            r_peaks=np.asarray(r, dtype=np.intp),
            systolic_peaks=np.asarray(s, dtype=np.intp),
            sample_rate=rate,
        )

    ecg = np.sin(2.0 * np.pi * 1.1 * t) + 0.05 * rng.standard_normal(n)
    abp = 80.0 + 30.0 * np.sin(2.0 * np.pi * 1.1 * t - 0.9)
    r = np.arange(5, n - 1, max(8, n // 4))
    s = np.minimum(r + max(2, n // 16), n - 1)
    windows = [
        window(ecg, abp, r, s),  # typical: peaks, pairs within the lag
        window(np.full(n, 1.0), np.full(n, 7.5), [], []),  # flat, peakless
        window(rng.standard_normal(n), rng.standard_normal(n), [0, n - 1], [1]),
        window(-ecg, abp[::-1].copy(), r[:1], []),  # pairs impossible
    ]
    return windows


def _reference_scores(
    version: DetectorVersion,
    grid_n: int,
    coef: np.ndarray,
    intercept: float,
    mean: np.ndarray,
    scale: np.ndarray,
    windows: Sequence[SignalWindow],
) -> np.ndarray:
    """The NumPy reference pipeline over explicit model constants."""
    extractor = make_extractor(version, grid_n=grid_n)
    features = extractor.extract_stream(list(windows))
    if features.shape[0] == 0:
        return np.empty(0, dtype=np.float64)
    standardized = (features - mean) / scale
    return np.einsum("ij,j->i", standardized, coef) + intercept


class NativeScorer:
    """Generated-C scoring for one fitted linear model.

    Parameters are the fitted model's constants; ``fallback`` is invoked
    with a list of windows whenever some of them are ineligible for the C
    path (non-finite samples, out-of-range peak indexes) and must return
    the NumPy-path scores for exactly those windows.
    """

    def __init__(
        self,
        version: DetectorVersion | str,
        grid_n: int,
        coef: np.ndarray,
        intercept: float,
        mean: np.ndarray,
        scale: np.ndarray,
        window_s: float = 3.0,
        fallback: Callable[[list[SignalWindow]], np.ndarray] | None = None,
    ) -> None:
        if isinstance(version, str):
            version = DetectorVersion.from_name(version)
        available, reason = native_status(version)
        if not available:
            raise NativeUnavailableError(reason)
        self.version = version
        self.grid_n = int(grid_n)
        self.coef = np.ascontiguousarray(coef, dtype=np.float64).reshape(-1)
        self.intercept = float(intercept)
        self.mean = np.ascontiguousarray(mean, dtype=np.float64).reshape(-1)
        self.scale = np.ascontiguousarray(scale, dtype=np.float64).reshape(-1)
        self._fallback = fallback
        source = generate_hot_path_source(
            version, grid_n, self.coef, self.intercept, self.mean, self.scale
        )
        self.source = source
        try:
            self.artifact = compile_hot_path(source, version)
            self._lib = LoadedScoringLib(self.artifact, version)
        except BuildError as exc:
            raise NativeUnavailableError(str(exc)) from exc
        self._self_check(window_s)

    # ------------------------------------------------------------------
    # Parity self-check
    # ------------------------------------------------------------------

    def _self_check(self, window_s: float) -> None:
        windows = _probe_windows(self.version, window_s)
        reference = _reference_scores(
            self.version,
            self.grid_n,
            self.coef,
            self.intercept,
            self.mean,
            self.scale,
            windows,
        )
        native = self._score_uniform(windows)
        if native.shape != reference.shape or not np.array_equal(
            native, reference
        ):
            raise NativeUnavailableError(
                "native self-check failed: generated code does not "
                "bit-match the NumPy reference on probe windows "
                f"(max diff {np.max(np.abs(native - reference)):.3e})"
            )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    @staticmethod
    def _eligible(window: SignalWindow) -> bool:
        n = window.n_samples
        if n < 1 or window.sample_rate <= 0:
            return False
        if not (
            np.all(np.isfinite(window.ecg)) and np.all(np.isfinite(window.abp))
        ):
            return False
        for peaks in (window.r_peaks, window.systolic_peaks):
            peaks = np.asarray(peaks)
            if peaks.size and (peaks.min() < 0 or peaks.max() >= n):
                return False
        return True

    @staticmethod
    def _pack(
        windows: Sequence[SignalWindow],
    ) -> tuple[np.ndarray, ...]:
        """Marshal equal-length windows into the C entry point's layout."""
        n_windows = len(windows)
        n_samples = windows[0].n_samples
        ecg = np.empty((n_windows, n_samples), dtype=np.float64)
        abp = np.empty((n_windows, n_samples), dtype=np.float64)
        r_off = np.zeros(n_windows + 1, dtype=_LONG)
        s_off = np.zeros(n_windows + 1, dtype=_LONG)
        max_lag = np.empty(n_windows, dtype=_LONG)
        r_parts: list[np.ndarray] = []
        s_parts: list[np.ndarray] = []
        for i, window in enumerate(windows):
            ecg[i] = window.ecg
            abp[i] = window.abp
            r = np.ascontiguousarray(window.r_peaks, dtype=_LONG)
            s = np.ascontiguousarray(window.systolic_peaks, dtype=_LONG)
            r_parts.append(r)
            s_parts.append(s)
            r_off[i + 1] = r_off[i] + r.size
            s_off[i + 1] = s_off[i] + s.size
            max_lag[i] = int(_MAX_LAG_S * window.sample_rate)
        r_idx = (
            np.concatenate(r_parts) if r_parts else np.empty(0, dtype=_LONG)
        ).astype(_LONG, copy=False)
        s_idx = (
            np.concatenate(s_parts) if s_parts else np.empty(0, dtype=_LONG)
        ).astype(_LONG, copy=False)
        return ecg, abp, r_idx, r_off, s_idx, s_off, max_lag

    @staticmethod
    def _packed_eligible(packed: tuple[np.ndarray, ...]) -> bool:
        """Whole-batch precondition check over the packed arrays.

        One reduction per array instead of several per window; this is the
        common-case fast path -- when it fails, the caller re-checks
        window by window to isolate the offenders.
        """
        ecg, abp, r_idx, _, s_idx, _, max_lag = packed
        n_samples = ecg.shape[1]
        if n_samples < 1 or not bool(np.all(max_lag >= 0)):
            return False
        if not (np.isfinite(ecg).all() and np.isfinite(abp).all()):
            return False
        for idx in (r_idx, s_idx):
            if idx.size and (idx.min() < 0 or idx.max() >= n_samples):
                return False
        return True

    def _score_uniform(self, windows: Sequence[SignalWindow]) -> np.ndarray:
        """Score equal-length, eligible windows through the C entry point."""
        return self._lib.score_windows(*self._pack(windows))

    def _score_group(
        self,
        windows: list[SignalWindow],
        indices: list[int],
        out: np.ndarray,
    ) -> None:
        """Score one equal-length group, isolating ineligible windows."""
        packed = self._pack(windows)
        if self._packed_eligible(packed):
            out[indices] = self._lib.score_windows(*packed)
            return
        ok_pos = [k for k, w in enumerate(windows) if self._eligible(w)]
        bad_pos = [k for k in range(len(windows)) if k not in set(ok_pos)]
        if bad_pos:
            if self._fallback is None:
                raise NativeUnavailableError(
                    f"{len(bad_pos)} window(s) are ineligible for the "
                    "native path and no fallback scorer is configured"
                )
            out[[indices[k] for k in bad_pos]] = self._fallback(
                [windows[k] for k in bad_pos]
            )
        if ok_pos:
            out[[indices[k] for k in ok_pos]] = self._score_uniform(
                [windows[k] for k in ok_pos]
            )

    def decision_values(self, windows: Sequence[SignalWindow]) -> np.ndarray:
        """Decision values for a window list, bit-identical to NumPy.

        Groups windows by length, routes ineligible windows to the
        fallback, and reassembles scores in input order.
        """
        windows = list(windows)
        if not windows:
            return np.empty(0, dtype=np.float64)
        out = np.empty(len(windows), dtype=np.float64)
        by_length: dict[int, list[int]] = {}
        for i, window in enumerate(windows):
            by_length.setdefault(window.n_samples, []).append(i)
        for n_samples, indices in by_length.items():
            group = [windows[i] for i in indices]
            if n_samples < 1:
                if self._fallback is None:
                    raise NativeUnavailableError(
                        "empty windows are ineligible for the native path "
                        "and no fallback scorer is configured"
                    )
                out[indices] = self._fallback(group)
                continue
            self._score_group(group, indices, out)
        return out
