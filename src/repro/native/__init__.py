"""Native-speed scoring: generated C for the full hot path.

The package behind ``SIFTDetector(platform="native")``: per-model C code
generation (:mod:`~repro.native.codegen`), host compilation with a cached
artifact (:mod:`~repro.native.build`), and the parity-checked scorer
(:mod:`~repro.native.backend`).  Everything degrades gracefully -- hosts
without a compiler (or, for the Original tier, without numpy's SVML
``atan2``) simply stay on the NumPy path.
"""

from repro.native.backend import NativeScorer, NativeUnavailableError, native_status
from repro.native.build import (
    BuildError,
    cache_dir,
    compile_flags,
    compile_hot_path,
    find_compiler,
    svml_atan2_supported,
)
from repro.native.codegen import generate_hot_path_source, hot_path_cdef

__all__ = [
    "BuildError",
    "NativeScorer",
    "NativeUnavailableError",
    "cache_dir",
    "compile_flags",
    "compile_hot_path",
    "find_compiler",
    "generate_hot_path_source",
    "hot_path_cdef",
    "native_status",
    "svml_atan2_supported",
]
