"""C code generation for the full native scoring hot path.

:mod:`repro.ml.model_codegen` translates the *decision function* to device
C.  This module extends code generation to the entire scoring pipeline --
window min-max normalization, occupancy-grid construction, feature
extraction and the standardized SVM decision value -- as a single
self-contained C translation unit per ``(version, grid_n, model)`` triple,
compiled on the host and loaded by :mod:`repro.native.build`.

The contract is **bit parity** with the NumPy reference path, not
approximate agreement.  Every floating-point reduction NumPy performs is
replicated with its exact association order:

* ``np.sum`` / ``np.mean`` / ``np.std`` / ``np.var`` / ``np.trapezoid``
  use pairwise summation with an unrolled 8-accumulator base case and a
  block size of 128 (``pairwise_sum`` below mirrors numpy's
  ``pairwise_sum@TYPE@`` scalar kernel);
* outer-axis reductions (``matrix.mean(axis=0)``) accumulate row by row
  sequentially (``sift_colmean``);
* the geometric features follow the repository's sequential-mean contract
  (plain left-to-right loops, like the device build);
* ``np.einsum("ij,j->i", X, w)`` for 8 and 5 features uses the exact
  lane-and-combine orders of numpy's AVX-512
  ``sum_of_products_contig_two`` kernel (``sift_dot8`` / ``sift_dot5``);
* ``np.arctan2`` is *not* libm ``atan2`` (they differ in the last ulp on
  a few percent of inputs): numpy dispatches to Intel SVML's
  ``__svml_atan28_ha``.  The generated Original-tier code calls the very
  same vector routine through a function pointer the loader resolves from
  numpy's own extension module, with tails padded to a full 8-lane vector.

Floating-point model constants are embedded as C99 hexadecimal-float
literals (:func:`repro.ml.model_codegen.c_double_literal`), which
round-trip float64 bit-for-bit -- including negative zero and subnormals.
The translation unit must be compiled with ``-ffp-contract=off``: fused
multiply-adds re-round differently from NumPy's mul-then-add sequences.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.versions import DetectorVersion
from repro.ml.model_codegen import c_double_literal

__all__ = ["generate_hot_path_source", "hot_path_cdef", "scoring_symbols"]

#: Return codes of the generated ``sift_score_windows`` entry point.
SIFT_OK = 0
SIFT_ENOMEM = 1
SIFT_ENOATAN2 = 2


def _literal_array(name: str, values: Sequence[float]) -> str:
    """A ``static const double`` array with exact hex-float initializers."""
    items = [c_double_literal(float(v)) for v in values]
    body = ",\n    ".join(items)
    return (
        f"static const double {name}[{len(items)}] = {{\n    {body}\n}};\n"
    )


def scoring_symbols(version: DetectorVersion) -> tuple[str, ...]:
    """Exported symbol names of the generated translation unit."""
    if version is DetectorVersion.ORIGINAL:
        return ("sift_score_windows", "sift_set_atan2")
    return ("sift_score_windows",)


def hot_path_cdef(version: DetectorVersion) -> str:
    """The cffi ``cdef`` declarations matching the generated source."""
    decls = [
        "long sift_score_windows(const double *ecg, const double *abp,"
        " long n_windows, long n_samples,"
        " const long *r_idx, const long *r_off,"
        " const long *s_idx, const long *s_off,"
        " const long *max_lag, double *out);"
    ]
    if version is DetectorVersion.ORIGINAL:
        decls.append("void sift_set_atan2(void *fn);")
    return "\n".join(decls)


_PAIRWISE_SUM = """\
/* numpy pairwise summation (PW_BLOCKSIZE = 128), scalar kernel order. */
static double pairwise_sum(const double *a, long n)
{
    if (n < 8) {
        long i;
        double res = 0.0;
        for (i = 0; i < n; i++)
            res += a[i];
        return res;
    }
    else if (n <= 128) {
        long i;
        double r[8], res;
        r[0] = a[0]; r[1] = a[1]; r[2] = a[2]; r[3] = a[3];
        r[4] = a[4]; r[5] = a[5]; r[6] = a[6]; r[7] = a[7];
        for (i = 8; i < n - (n % 8); i += 8) {
            r[0] += a[i + 0]; r[1] += a[i + 1];
            r[2] += a[i + 2]; r[3] += a[i + 3];
            r[4] += a[i + 4]; r[5] += a[i + 5];
            r[6] += a[i + 6]; r[7] += a[i + 7];
        }
        res = ((r[0] + r[1]) + (r[2] + r[3]))
            + ((r[4] + r[5]) + (r[6] + r[7]));
        for (; i < n; i++)
            res += a[i];
        return res;
    }
    else {
        long n2 = n / 2;
        n2 -= n2 % 8;
        return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
    }
}
"""

_SEQ_MEAN = """\
/* The repository's sequential-mean contract: left-to-right accumulation. */
static double seq_mean(const double *v, long n)
{
    double total = 0.0;
    long i;
    for (i = 0; i < n; i++)
        total = total + v[i];
    return total / (double)n;
}
"""

_COLMEAN = """\
/* matrix.mean(axis=0): numpy reduces the outer axis row by row. */
static void sift_colmean(const double *m, long nrow, long ncol, double *out)
{
    long i, j;
    for (j = 0; j < ncol; j++)
        out[j] = m[j];
    for (i = 1; i < nrow; i++)
        for (j = 0; j < ncol; j++)
            out[j] += m[i * ncol + j];
    for (j = 0; j < ncol; j++)
        out[j] /= (double)nrow;
}
"""

_DOT8 = """\
/* np.einsum("ij,j->i") for 8 features: AVX-512 kernel's exact order. */
static double sift_dot8(const double *x, const double *w)
{
    double l0 = x[0] * w[0] + (x[2] * w[2] + (x[4] * w[4] + x[6] * w[6]));
    double l1 = x[1] * w[1] + (x[3] * w[3] + (x[5] * w[5] + x[7] * w[7]));
    return l0 + l1;
}
"""

_DOT5 = """\
/* np.einsum("ij,j->i") for 5 features: partial-vector kernel order. */
static double sift_dot5(const double *x, const double *w)
{
    double l0 = (x[0] * w[0] + x[2] * w[2]) + x[4] * w[4];
    double l1 = x[1] * w[1] + x[3] * w[3];
    return l0 + l1;
}
"""

_NORM01 = """\
/* Min-max normalization to [0, 1]; constant windows map to all 0.5. */
static void sift_norm01(const double *a, long n, double *out)
{
    double lo = a[0], hi = a[0];
    long i;
    for (i = 1; i < n; i++) {
        if (a[i] < lo) lo = a[i];
        if (a[i] > hi) hi = a[i];
    }
    if (hi <= lo) {
        for (i = 0; i < n; i++)
            out[i] = 0.5;
        return;
    }
    for (i = 0; i < n; i++)
        out[i] = (a[i] - lo) / (hi - lo);
}
"""

_ATAN2 = """\
/* np.arctan2 == Intel SVML __svml_atan28_ha, resolved by the loader
 * from numpy's extension module and installed via sift_set_atan2.
 * Tails are padded with (1.0, 1.0) to fill the 8-lane vector. */
typedef __m512d (*sift_atan2_fn)(__m512d, __m512d);
static sift_atan2_fn sift_atan2_ptr = 0;

void sift_set_atan2(void *fn)
{
    sift_atan2_ptr = (sift_atan2_fn)fn;
}

static void batch_atan2(const double *y, const double *x, long n, double *out)
{
    long i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512d vy = _mm512_loadu_pd(y + i);
        __m512d vx = _mm512_loadu_pd(x + i);
        _mm512_storeu_pd(out + i, sift_atan2_ptr(vy, vx));
    }
    if (i < n) {
        double ty[8], tx[8], to[8];
        long j, r = n - i;
        for (j = 0; j < 8; j++) {
            ty[j] = 1.0;
            tx[j] = 1.0;
        }
        for (j = 0; j < r; j++) {
            ty[j] = y[i + j];
            tx[j] = x[i + j];
        }
        _mm512_storeu_pd(to,
            sift_atan2_ptr(_mm512_loadu_pd(ty), _mm512_loadu_pd(tx)));
        for (j = 0; j < r; j++)
            out[i + j] = to[j];
    }
}
"""

_PAIRING = """\
/* match_peaks: sort the systolic indexes, then pair each R peak with the
 * first strictly-later systolic peak within max_lag samples
 * (np.searchsorted side="right" == upper bound). */
static long sift_pair_peaks(const long *ri, long nr,
                            const long *si, long ns,
                            long max_lag, long *ss,
                            const double *nx, const double *ny,
                            double *prx, double *pry,
                            double *psx, double *psy)
{
    long i, j, npair = 0;
    for (i = 0; i < ns; i++) {
        long v = si[i];
        for (j = i; j > 0 && ss[j - 1] > v; j--)
            ss[j] = ss[j - 1];
        ss[j] = v;
    }
    for (i = 0; i < nr; i++) {
        long r = ri[i];
        long lo = 0, hi = ns;
        while (lo < hi) {
            long mid = (lo + hi) / 2;
            if (ss[mid] <= r)
                lo = mid + 1;
            else
                hi = mid;
        }
        if (lo < ns && ss[lo] - r <= max_lag) {
            prx[npair] = nx[r];
            pry[npair] = ny[r];
            psx[npair] = nx[ss[lo]];
            psy[npair] = ny[ss[lo]];
            npair++;
        }
    }
    return npair;
}
"""

_MATRIX_HELPERS = """\
/* Spatial filling index: n^2 * sum((c_ij / N)^2), 0.0 for an empty grid. */
static double sift_sfi(const double *grid, double *tmp)
{
    double total = pairwise_sum(grid, SIFT_G2);
    long i;
    if (total == 0.0)
        return 0.0;
    for (i = 0; i < SIFT_G2; i++) {
        double p = grid[i] / total;
        tmp[i] = p * p;
    }
    return (double)SIFT_G2 * pairwise_sum(tmp, SIFT_G2);
}

/* Occupancy grid: counts accumulated directly in double (exact for any
 * realistic window length; numpy casts the int64 grid to float64 before
 * every reduction anyway). */
static void sift_grid(const double *nx, const double *ny, long n, double *grid)
{
    long t;
    for (t = 0; t < SIFT_G2; t++)
        grid[t] = 0.0;
    for (t = 0; t < n; t++) {
        long col = (long)(ny[t] * (double)SIFT_GN);
        long row = (long)(nx[t] * (double)SIFT_GN);
        if (col > SIFT_GN - 1)
            col = SIFT_GN - 1;
        if (row > SIFT_GN - 1)
            row = SIFT_GN - 1;
        grid[row * SIFT_GN + col] += 1.0;
    }
}
"""

_STD_HELPER = """\
/* np.std: pairwise mean, squared deviations, pairwise mean, sqrt. */
static double sift_std(const double *a, long n, double *tmp)
{
    double mean = pairwise_sum(a, n) / (double)n;
    long i;
    for (i = 0; i < n; i++) {
        double d = a[i] - mean;
        tmp[i] = d * d;
    }
    return sqrt(pairwise_sum(tmp, n) / (double)n);
}

/* np.trapezoid over a unit-spaced curve. */
static double sift_trapz(const double *a, long n, double *tmp)
{
    long i;
    if (n < 2)
        return 0.0;
    for (i = 0; i + 1 < n; i++)
        tmp[i] = 1.0 * (a[i + 1] + a[i]) / 2.0;
    return pairwise_sum(tmp, n - 1);
}
"""

_VAR_HELPER = """\
/* np.var: pairwise mean, squared deviations, pairwise mean. */
static double sift_var(const double *a, long n, double *tmp)
{
    double mean = pairwise_sum(a, n) / (double)n;
    long i;
    for (i = 0; i < n; i++) {
        double d = a[i] - mean;
        tmp[i] = d * d;
    }
    return pairwise_sum(tmp, n) / (double)n;
}

/* The composite-sum AUC: 0.5 * sum(f_k + f_{k+1}). */
static double sift_auc_comp(const double *a, long n, double *tmp)
{
    long i;
    if (n < 2)
        return 0.0;
    for (i = 0; i + 1 < n; i++)
        tmp[i] = a[i] + a[i + 1];
    return 0.5 * pairwise_sum(tmp, n - 1);
}
"""

_GEOM_ORIGINAL = """\
/* Mean atan2(y, x) over peak points; 0.0 when there are none. */
static double sift_angle_avg(const double *px, const double *py,
                             long m, double *tmp)
{
    if (m == 0)
        return 0.0;
    batch_atan2(py, px, m, tmp);
    return seq_mean(tmp, m);
}

/* Mean Euclidean distance to the origin; 0.0 when there are none. */
static double sift_dist_avg(const double *px, const double *py,
                            long m, double *tmp)
{
    long i;
    if (m == 0)
        return 0.0;
    for (i = 0; i < m; i++)
        tmp[i] = sqrt(px[i] * px[i] + py[i] * py[i]);
    return seq_mean(tmp, m);
}

/* Mean distance between corresponding peak pairs. */
static double sift_pdist_avg(const double *prx, const double *pry,
                             const double *psx, const double *psy,
                             long m, double *tmp)
{
    long i;
    if (m == 0)
        return 0.0;
    for (i = 0; i < m; i++) {
        double dx = prx[i] - psx[i];
        double dy = pry[i] - psy[i];
        tmp[i] = sqrt(dx * dx + dy * dy);
    }
    return seq_mean(tmp, m);
}
"""

_GEOM_SIMPLIFIED = """\
/* Mean slope y / max(x, eps); 0.0 when there are no peaks. */
static double sift_slope_avg(const double *px, const double *py,
                             long m, double *tmp)
{
    long i;
    if (m == 0)
        return 0.0;
    for (i = 0; i < m; i++) {
        double d = px[i] >= SIFT_EPS ? px[i] : SIFT_EPS;
        tmp[i] = py[i] / d;
    }
    return seq_mean(tmp, m);
}

/* Mean squared distance to the origin; 0.0 when there are no peaks. */
static double sift_sqd_avg(const double *px, const double *py,
                           long m, double *tmp)
{
    long i;
    if (m == 0)
        return 0.0;
    for (i = 0; i < m; i++)
        tmp[i] = px[i] * px[i] + py[i] * py[i];
    return seq_mean(tmp, m);
}

/* Mean squared distance between corresponding peak pairs. */
static double sift_psqd_avg(const double *prx, const double *pry,
                            const double *psx, const double *psy,
                            long m, double *tmp)
{
    long i;
    if (m == 0)
        return 0.0;
    for (i = 0; i < m; i++) {
        double dx = prx[i] - psx[i];
        double dy = pry[i] - psy[i];
        tmp[i] = dx * dx + dy * dy;
    }
    return seq_mean(tmp, m);
}
"""


def _feature_block(version: DetectorVersion) -> str:
    """The per-window feature statements, in the extractor's array order."""
    if version is DetectorVersion.ORIGINAL:
        return """\
        sift_grid(nx, ny, n_samples, grid);
        sift_colmean(grid, SIFT_GN, SIFT_GN, colavg);
        f[0] = sift_sfi(grid, tmp);
        f[1] = sift_std(colavg, SIFT_GN, tmp);
        f[2] = sift_trapz(colavg, SIFT_GN, tmp);
        for (i = 0; i < nr; i++) {
            px[i] = nx[ri[i]];
            py[i] = ny[ri[i]];
        }
        f[3] = sift_angle_avg(px, py, nr, tmp);
        f[5] = sift_dist_avg(px, py, nr, tmp);
        for (i = 0; i < nsk; i++) {
            px[i] = nx[si[i]];
            py[i] = ny[si[i]];
        }
        f[4] = sift_angle_avg(px, py, nsk, tmp);
        f[6] = sift_dist_avg(px, py, nsk, tmp);
        npair = sift_pair_peaks(ri, nr, si, nsk, max_lag[w], ss,
                                nx, ny, prx, pry, psx, psy);
        f[7] = sift_pdist_avg(prx, pry, psx, psy, npair, tmp);
"""
    if version is DetectorVersion.SIMPLIFIED:
        return """\
        sift_grid(nx, ny, n_samples, grid);
        sift_colmean(grid, SIFT_GN, SIFT_GN, colavg);
        f[0] = sift_sfi(grid, tmp);
        f[1] = sift_var(colavg, SIFT_GN, tmp);
        f[2] = sift_auc_comp(colavg, SIFT_GN, tmp);
        for (i = 0; i < nr; i++) {
            px[i] = nx[ri[i]];
            py[i] = ny[ri[i]];
        }
        f[3] = sift_slope_avg(px, py, nr, tmp);
        f[5] = sift_sqd_avg(px, py, nr, tmp);
        for (i = 0; i < nsk; i++) {
            px[i] = nx[si[i]];
            py[i] = ny[si[i]];
        }
        f[4] = sift_slope_avg(px, py, nsk, tmp);
        f[6] = sift_sqd_avg(px, py, nsk, tmp);
        npair = sift_pair_peaks(ri, nr, si, nsk, max_lag[w], ss,
                                nx, ny, prx, pry, psx, psy);
        f[7] = sift_psqd_avg(prx, pry, psx, psy, npair, tmp);
"""
    return """\
        for (i = 0; i < nr; i++) {
            px[i] = nx[ri[i]];
            py[i] = ny[ri[i]];
        }
        f[0] = sift_slope_avg(px, py, nr, tmp);
        f[2] = sift_sqd_avg(px, py, nr, tmp);
        for (i = 0; i < nsk; i++) {
            px[i] = nx[si[i]];
            py[i] = ny[si[i]];
        }
        f[1] = sift_slope_avg(px, py, nsk, tmp);
        f[3] = sift_sqd_avg(px, py, nsk, tmp);
        npair = sift_pair_peaks(ri, nr, si, nsk, max_lag[w], ss,
                                nx, ny, prx, pry, psx, psy);
        f[4] = sift_psqd_avg(prx, pry, psx, psy, npair, tmp);
"""


def generate_hot_path_source(
    version: DetectorVersion | str,
    grid_n: int,
    coef: np.ndarray,
    intercept: float,
    mean: np.ndarray,
    scale: np.ndarray,
) -> str:
    """Generate the scoring translation unit for one fitted linear model.

    Parameters mirror the fitted detector: ``coef``/``intercept`` are the
    SVM primal weights, ``mean``/``scale`` the standardizer statistics.
    The scaler is *not* folded into the weights -- the reference path
    standardizes first and folding would re-round -- so the generated code
    computes ``z = (f - mean) / scale`` then ``dot(z, coef) + intercept``
    with NumPy's exact association orders.
    """
    if isinstance(version, str):
        version = DetectorVersion.from_name(version)
    grid_n = int(grid_n)
    if version.uses_matrix_features and grid_n < 2:
        raise ValueError("grid_n must be >= 2 for matrix-feature versions")
    coef = np.asarray(coef, dtype=np.float64).reshape(-1)
    mean = np.asarray(mean, dtype=np.float64).reshape(-1)
    scale = np.asarray(scale, dtype=np.float64).reshape(-1)
    n_features = version.n_features
    for name, arr in (("coef", coef), ("mean", mean), ("scale", scale)):
        if arr.shape != (n_features,):
            raise ValueError(
                f"{name} has shape {arr.shape}, expected ({n_features},) "
                f"for the {version.value} version"
            )
    if not (
        np.all(np.isfinite(coef))
        and np.all(np.isfinite(mean))
        and np.all(np.isfinite(scale))
        and np.isfinite(intercept)
    ):
        raise ValueError("model constants must be finite")

    original = version is DetectorVersion.ORIGINAL
    matrix = version.uses_matrix_features
    dot = "sift_dot8" if n_features == 8 else "sift_dot5"

    includes = ["#include <stdlib.h>"]
    if original:
        includes.append("#include <math.h>")
        includes.append("#include <immintrin.h>")

    defines = [f"#define SIFT_NF {n_features}"]
    if matrix:
        defines.append(f"#define SIFT_GN {grid_n}")
        defines.append(f"#define SIFT_G2 {grid_n * grid_n}")
    if not original:
        eps = c_double_literal(1.0 / (1 << 14))
        defines.append(f"#define SIFT_EPS {eps}")

    parts = [
        "/* Auto-generated native SIFT scoring hot path -- do not edit.\n"
        f" * version={version.value} grid_n={grid_n} n_features={n_features}\n"
        " * Bit-parity contract with the NumPy reference pipeline; compile\n"
        " * with -ffp-contract=off (FMA fusion re-rounds differently).\n"
        " */",
        "\n".join(includes),
        "\n".join(defines),
        _literal_array("sift_coef", coef),
        _literal_array("sift_mean", mean),
        _literal_array("sift_scale", scale),
        f"static const double sift_bias = {c_double_literal(float(intercept))};\n",
        _SEQ_MEAN,
        _NORM01,
        _PAIRING,
    ]
    if matrix:
        parts.append(_PAIRWISE_SUM)
        parts.append(_COLMEAN)
        parts.append(_MATRIX_HELPERS)
    if original:
        parts.append(_ATAN2)
        parts.append(_STD_HELPER)
        parts.append(_GEOM_ORIGINAL)
    else:
        if matrix:
            parts.append(_VAR_HELPER)
        parts.append(_GEOM_SIMPLIFIED)
    parts.append(_DOT8 if n_features == 8 else _DOT5)

    grid_doubles = "tmax + SIFT_G2 + SIFT_GN" if matrix else "n_samples"
    tmax_decl = (
        "    long tmax = n_samples > SIFT_G2 ? n_samples : SIFT_G2;\n"
        if matrix
        else ""
    )
    grid_ptrs = (
        "    double *grid = tmp + tmax;\n"
        "    double *colavg = grid + SIFT_G2;\n"
        if matrix
        else ""
    )
    atan2_guard = (
        "    if (sift_atan2_ptr == 0)\n        return 2;\n" if original else ""
    )

    parts.append(
        f"""\
/* Score n_windows equal-length windows; returns 0 on success.
 * ecg/abp are row-major (n_windows, n_samples); peak indexes arrive as
 * CSR-style (values, offsets) pairs; out receives one decision value per
 * window.  Scratch is one allocation per call, so the entry point is
 * re-entrant. */
long sift_score_windows(const double *ecg, const double *abp,
                        long n_windows, long n_samples,
                        const long *r_idx, const long *r_off,
                        const long *s_idx, const long *s_off,
                        const long *max_lag, double *out)
{{
    double *buf;
    long *ss;
    double *nx, *ny, *tmp, *px, *py, *prx, *pry, *psx, *psy;
    long w, i, npair;
{tmax_decl}{atan2_guard}\
    buf = (double *)malloc(sizeof(double) * (8 * n_samples + {grid_doubles}));
    ss = (long *)malloc(sizeof(long) * (n_samples > 0 ? n_samples : 1));
    if (buf == 0 || ss == 0) {{
        free(buf);
        free(ss);
        return 1;
    }}
    nx = buf;
    ny = nx + n_samples;
    px = ny + n_samples;
    py = px + n_samples;
    prx = py + n_samples;
    pry = prx + n_samples;
    psx = pry + n_samples;
    psy = psx + n_samples;
    tmp = psy + n_samples;
{grid_ptrs}\
    for (w = 0; w < n_windows; w++) {{
        const double *e = ecg + w * n_samples;
        const double *a = abp + w * n_samples;
        const long *ri = r_idx + r_off[w];
        const long *si = s_idx + s_off[w];
        long nr = r_off[w + 1] - r_off[w];
        long nsk = s_off[w + 1] - s_off[w];
        double f[SIFT_NF];
        long k;
        sift_norm01(e, n_samples, ny);
        sift_norm01(a, n_samples, nx);
{_feature_block(version)}\
        for (k = 0; k < SIFT_NF; k++)
            f[k] = (f[k] - sift_mean[k]) / sift_scale[k];
        out[w] = {dot}(f, sift_coef) + sift_bias;
    }}
    free(buf);
    free(ss);
    return 0;
}}
"""
    )
    return "\n".join(parts)
