"""Sensor-hijacking attack models.

The paper defines sensor-hijacking as "attacks that prevent sensors from
accurately collecting or reporting their measurements" and evaluates the
concrete case of replacing a user's ECG with someone else's.  This
subpackage implements that attack plus the other manifestations the paper's
threat model lists (reporting *old* measurements -> replay; sensory-channel
injection -> interference/morphology injection), and the scenario builder
that produces the paper's 2-minute, 50 %-altered evaluation streams.
"""

from repro.attacks.base import SensorHijackingAttack
from repro.attacks.injection import (
    InterferenceInjectionAttack,
    MorphologyInjectionAttack,
)
from repro.attacks.replacement import ReplacementAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario, LabeledStream

__all__ = [
    "AttackScenario",
    "InterferenceInjectionAttack",
    "LabeledStream",
    "MorphologyInjectionAttack",
    "ReplacementAttack",
    "ReplayAttack",
    "SensorHijackingAttack",
]
