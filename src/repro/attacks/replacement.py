"""Cross-subject ECG replacement -- the attack the paper evaluates.

"We simulated ECG measurement alteration due to sensor hijacking by
replacing a user's ECG with someone else's."  The donor signal comes from a
different subject's recording; its beat timing and morphology no longer
track the victim's ABP, which is the inconsistency SIFT detects.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import SensorHijackingAttack
from repro.signals.dataset import Record, SignalWindow
from repro.signals.peaks import peak_indices_in_window

__all__ = ["ReplacementAttack"]


class ReplacementAttack(SensorHijackingAttack):
    """Replace the victim's ECG with a segment of a donor subject's ECG.

    Parameters
    ----------
    donors:
        One or more donor :class:`~repro.signals.dataset.Record` objects
        (recordings of *other* subjects).  Each altered window draws a
        uniformly random segment from a uniformly random donor.
    """

    name = "replacement"

    def __init__(self, donors: list[Record] | Record) -> None:
        if isinstance(donors, Record):
            donors = [donors]
        if not donors:
            raise ValueError("at least one donor record is required")
        self.donors = list(donors)

    def alter(self, window: SignalWindow, rng: np.random.Generator) -> SignalWindow:
        donor = self.donors[int(rng.integers(len(self.donors)))]
        if donor.subject_id == window.subject_id:
            raise ValueError(
                "donor record belongs to the victim subject; replacement "
                "would not be an attack"
            )
        length = window.n_samples
        if donor.n_samples < length:
            raise ValueError(
                f"donor record ({donor.n_samples} samples) is shorter than "
                f"the window ({length} samples)"
            )
        start = int(rng.integers(donor.n_samples - length + 1))
        stop = start + length
        return self._rebuild(
            window,
            ecg=donor.ecg[start:stop].copy(),
            r_peaks=peak_indices_in_window(donor.r_peaks, start, stop),
        )
