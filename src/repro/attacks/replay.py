"""Replay attack: reporting *old* measurements.

The paper's definition of sensor hijacking explicitly includes "reporting
old ... physiological measurements".  A replay adversary records the
victim's own ECG and feeds it back later.  Morphology then still matches
the victim, but beat timing no longer tracks the live ABP -- a strictly
harder case for the detector than cross-subject replacement.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import SensorHijackingAttack
from repro.signals.dataset import Record, SignalWindow
from repro.signals.peaks import peak_indices_in_window

__all__ = ["ReplayAttack"]


class ReplayAttack(SensorHijackingAttack):
    """Replay a segment of the victim's own, previously captured ECG.

    Parameters
    ----------
    captured:
        A recording of the *victim* captured earlier by the adversary (for
        instance, an old training record).
    """

    name = "replay"

    def __init__(self, captured: Record) -> None:
        self.captured = captured

    def alter(self, window: SignalWindow, rng: np.random.Generator) -> SignalWindow:
        if self.captured.subject_id != window.subject_id:
            raise ValueError(
                "replay source must be a recording of the victim; use "
                "ReplacementAttack for cross-subject material"
            )
        length = window.n_samples
        if self.captured.n_samples < length:
            raise ValueError("captured record is shorter than the window")
        start = int(rng.integers(self.captured.n_samples - length + 1))
        stop = start + length
        return self._rebuild(
            window,
            ecg=self.captured.ecg[start:stop].copy(),
            r_peaks=peak_indices_in_window(self.captured.r_peaks, start, stop),
        )
