"""Sensory-channel injection attacks.

The paper's threat model includes hijacking "through the unprotected
sensory-channel" (EMI signal injection a la Ghost Talk, reference [5]).
Two models are provided:

* :class:`InterferenceInjectionAttack` -- additive narrow-band interference
  strong enough to corrupt QRS detection, as an EMI adversary would induce;
* :class:`MorphologyInjectionAttack` -- the reported waveform is the
  victim's, but time-shifted and amplitude-warped, modelling an adversary
  that manipulates the analog front end rather than substituting a signal.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import SensorHijackingAttack
from repro.signals.dataset import SignalWindow
from repro.signals.peaks import detect_r_peaks

__all__ = ["InterferenceInjectionAttack", "MorphologyInjectionAttack"]


class InterferenceInjectionAttack(SensorHijackingAttack):
    """Add narrow-band interference to the reported ECG.

    Parameters
    ----------
    amplitude:
        Interference amplitude in the ECG's units (mV).  The default is of
        the same order as the R wave, enough to spawn false QRS detections.
    frequency:
        Interference frequency in Hz.  Defaults to an in-band frequency a
        naive notch filter would not remove.
    """

    name = "interference"

    def __init__(self, amplitude: float = 0.8, frequency: float = 7.0) -> None:
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)

    def alter(self, window: SignalWindow, rng: np.random.Generator) -> SignalWindow:
        t = np.arange(window.n_samples) / window.sample_rate
        phase = rng.uniform(0.0, 2.0 * np.pi)
        ecg = window.ecg + self.amplitude * np.sin(
            2.0 * np.pi * self.frequency * t + phase
        )
        # The pipeline derives peak indexes from the reported signal, so
        # re-detect on the corrupted waveform.
        r_peaks = detect_r_peaks(ecg, window.sample_rate)
        return self._rebuild(window, ecg=ecg, r_peaks=r_peaks)


class MorphologyInjectionAttack(SensorHijackingAttack):
    """Time-shift and amplitude-warp the victim's own ECG.

    Parameters
    ----------
    max_shift_s:
        Maximum circular time shift in seconds; the actual shift is drawn
        uniformly from ``[0.25 * max, max]`` so every altered window is
        meaningfully misaligned.
    gain_range:
        ``(low, high)`` multiplicative amplitude distortion.
    """

    name = "morphology"

    def __init__(
        self, max_shift_s: float = 0.4, gain_range: tuple[float, float] = (0.5, 1.6)
    ) -> None:
        if max_shift_s <= 0:
            raise ValueError("max_shift_s must be positive")
        low, high = gain_range
        if not 0 < low <= high:
            raise ValueError("gain_range must satisfy 0 < low <= high")
        self.max_shift_s = float(max_shift_s)
        self.gain_range = (float(low), float(high))

    def alter(self, window: SignalWindow, rng: np.random.Generator) -> SignalWindow:
        shift_s = rng.uniform(0.25 * self.max_shift_s, self.max_shift_s)
        shift = max(1, int(shift_s * window.sample_rate))
        gain = rng.uniform(*self.gain_range)
        ecg = gain * np.roll(window.ecg, shift)
        r_peaks = np.sort((window.r_peaks + shift) % window.n_samples)
        return self._rebuild(window, ecg=ecg, r_peaks=r_peaks)
