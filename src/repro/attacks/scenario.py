"""Evaluation scenario builder.

Reproduces the paper's test protocol: take 2 minutes of *unseen* ECG and
ABP, alter about 50 % of it by applying a sensor-hijacking attack "in
random locations within the 2 minute snippet", and cut the stream into
w = 3 s windows -- 40 test examples per subject, each labelled with the
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import SensorHijackingAttack
from repro.signals.dataset import Record, SignalWindow

__all__ = ["AttackScenario", "LabeledStream"]


@dataclass(frozen=True)
class LabeledStream:
    """A sequence of windows as received by the base station, with truth."""

    windows: list[SignalWindow]
    subject_id: str
    attack_name: str

    def __post_init__(self) -> None:
        if any(w.altered is None for w in self.windows):
            raise ValueError("every window in a labeled stream needs a label")

    def __len__(self) -> int:
        return len(self.windows)

    @property
    def labels(self) -> np.ndarray:
        """Boolean ground truth: ``True`` where the window was altered."""
        return np.array([bool(w.altered) for w in self.windows])

    @property
    def n_altered(self) -> int:
        return int(self.labels.sum())

    @property
    def nbytes(self) -> int:
        """Summed resident size of the stream's windows, in bytes.

        Prices the stream for the experiment cache's LRU budget (altered
        windows own fresh arrays; unaltered ones view the source record,
        so this over-counts shared storage -- deliberately conservative).
        """
        return int(sum(w.nbytes for w in self.windows))


class AttackScenario:
    """Build labelled evaluation streams from a clean test record.

    Parameters
    ----------
    attack:
        The sensor-hijacking attack to apply.
    window_s:
        Detector window size; the paper uses 3 seconds.
    altered_fraction:
        Fraction of windows to alter; the paper alters about half.
    """

    def __init__(
        self,
        attack: SensorHijackingAttack,
        window_s: float = 3.0,
        altered_fraction: float = 0.5,
    ) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if not 0.0 <= altered_fraction <= 1.0:
            raise ValueError("altered_fraction must be in [0, 1]")
        self.attack = attack
        self.window_s = float(window_s)
        self.altered_fraction = float(altered_fraction)

    def build(self, record: Record, rng: np.random.Generator) -> LabeledStream:
        """Cut ``record`` into windows and attack a random subset.

        The altered windows are chosen uniformly at random without
        replacement (the paper's "random locations"); their count is
        ``round(altered_fraction * n_windows)``.
        """
        length = int(round(self.window_s * record.sample_rate))
        n_windows = record.n_samples // length
        if n_windows == 0:
            raise ValueError("record is shorter than one window")
        n_altered = int(round(self.altered_fraction * n_windows))
        altered_at = set(
            rng.choice(n_windows, size=n_altered, replace=False).tolist()
        )
        windows: list[SignalWindow] = []
        for i in range(n_windows):
            window = record.window(i * length, length, altered=False)
            if i in altered_at:
                window = self.attack.alter(window, rng)
            windows.append(window)
        return LabeledStream(
            windows=windows,
            subject_id=record.subject_id,
            attack_name=self.attack.name,
        )
