"""Attack interface.

A sensor-hijacking attack tampers with the ECG stream *as reported to the
base station*: the adversary controls what the ECG sensor sends, not the
user's physiology.  Consequently an attack rewrites a window's ECG samples
and the R-peak indexes derived from them, while the ABP samples and
systolic peaks -- the trusted reference signal in the paper's threat model
-- pass through untouched.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.signals.dataset import SignalWindow

__all__ = ["SensorHijackingAttack"]


class SensorHijackingAttack(abc.ABC):
    """Base class for attacks on the reported ECG stream."""

    #: Short machine-readable attack name (used in experiment reports).
    name: str = "abstract"

    @abc.abstractmethod
    def alter(self, window: SignalWindow, rng: np.random.Generator) -> SignalWindow:
        """Return the window as the adversary would report it.

        Implementations must leave ``window.abp`` and
        ``window.systolic_peaks`` unchanged and set ``altered=True`` on the
        returned window.
        """

    @staticmethod
    def _rebuild(
        window: SignalWindow, ecg: np.ndarray, r_peaks: np.ndarray
    ) -> SignalWindow:
        """Assemble the altered window, preserving the trusted ABP side."""
        if ecg.shape != window.ecg.shape:
            raise ValueError("altered ECG must keep the window length")
        return SignalWindow(
            ecg=np.asarray(ecg, dtype=np.float64),
            abp=window.abp,
            r_peaks=np.asarray(r_peaks, dtype=np.intp),
            systolic_peaks=window.systolic_peaks,
            sample_rate=window.sample_rate,
            subject_id=window.subject_id,
            altered=True,
        )
