"""Ablation studies over the design choices the paper fixes.

Each function sweeps one knob of the pipeline and returns one row per
setting (plain dicts, ready for tabulation).  All ablations run on the
reference pipeline unless the knob itself concerns the device (fixed-point
precision), and default to the Simplified version -- the build the paper
positions as the sweet spot.

The cohort-mean sweeps accept ``jobs``: each swept setting fans its
per-subject runs over a :class:`~repro.experiments.runner.CohortRunner`
worker pool (with the zero-copy dataset plane feeding the workers), so a
sweep costs roughly one setting's wall-clock times the number of
settings divided by the worker count.  Results are identical at any
``jobs``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Sequence

import numpy as np

from repro.attacks.base import SensorHijackingAttack
from repro.attacks.injection import (
    InterferenceInjectionAttack,
    MorphologyInjectionAttack,
)
from repro.attacks.replacement import ReplacementAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.scenario import AttackScenario
from repro.core.features.base import FeatureExtractor
from repro.core.features.matrix import (
    auc_composite,
    column_averages,
    spatial_filling_index,
)
from repro.core.portrait import Portrait
from repro.core.training import build_training_set
from repro.core.versions import DetectorVersion
from repro.experiments.pipeline import (
    ExperimentConfig,
    build_stream,
    make_dataset,
    train_detector,
)
from repro.ml.baselines import KNearestNeighbors, LogisticRegression, NearestCentroid
from repro.ml.kernels import make_kernel
from repro.ml.metrics import mean_report, score_predictions
from repro.ml.model_codegen import export_fixed_point
from repro.ml.scaler import StandardScaler
from repro.ml.svm import SVC

__all__ = [
    "attack_type_ablation",
    "classifier_ablation",
    "feature_class_ablation",
    "fixed_point_ablation",
    "grid_size_ablation",
    "mixed_attack_training_ablation",
    "training_duration_ablation",
    "window_size_ablation",
]


def _mean_accuracy(
    config: ExperimentConfig,
    version: DetectorVersion | str = "simplified",
    jobs: int = 1,
) -> dict[str, float]:
    """Reference-pipeline average metrics over the configured cohort."""
    from repro.experiments.runner import CohortRunner

    with CohortRunner(config=config, jobs=jobs, with_device=False) as runner:
        outcomes = runner.run_version(version)
    reports = [o.result.reference_report for o in outcomes if o.ok]
    mean = mean_report(reports)
    return {
        "accuracy": mean.accuracy,
        "fp_rate": mean.false_positive_rate,
        "fn_rate": mean.false_negative_rate,
        "f1": mean.f1,
    }


def window_size_ablation(
    config: ExperimentConfig,
    window_values: Sequence[float] = (1.5, 3.0, 6.0, 12.0),
    jobs: int = 1,
) -> list[dict[str, Any]]:
    """Sweep the detection window size w (the paper fixes w = 3 s)."""
    rows = []
    for window_s in window_values:
        swept = replace(config, window_s=float(window_s))
        rows.append({"window_s": float(window_s), **_mean_accuracy(swept, jobs=jobs)})
    return rows


def grid_size_ablation(
    config: ExperimentConfig,
    grid_values: Sequence[int] = (10, 25, 50, 100),
    jobs: int = 1,
) -> list[dict[str, Any]]:
    """Sweep the occupancy-grid size n (the paper fixes n = 50)."""
    rows = []
    for grid_n in grid_values:
        swept = replace(config, grid_n=int(grid_n))
        rows.append({"grid_n": int(grid_n), **_mean_accuracy(swept, jobs=jobs)})
    return rows


def training_duration_ablation(
    config: ExperimentConfig,
    durations_s: Sequence[float] = (120.0, 300.0, 600.0, 1200.0),
    jobs: int = 1,
) -> list[dict[str, Any]]:
    """Sweep Delta, the training-data duration (paper: 20 minutes)."""
    rows = []
    for duration in durations_s:
        swept = replace(config, train_duration_s=float(duration))
        rows.append(
            {"train_duration_s": float(duration), **_mean_accuracy(swept, jobs=jobs)}
        )
    return rows


class _MatrixOnlyExtractor(FeatureExtractor):
    """The three simplified matrix features alone (ablation-only build)."""

    requires_libm = False
    _NAMES = ("sfi", "col_avg_var", "col_avg_auc")

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self._NAMES

    def extract(self, portrait: Portrait) -> np.ndarray:
        matrix = portrait.occupancy_matrix(self.grid_n)
        col_avg = column_averages(matrix)
        return np.array(
            [
                spatial_filling_index(matrix),
                float(np.var(col_avg)),
                auc_composite(col_avg),
            ]
        )


def feature_class_ablation(
    config: ExperimentConfig, jobs: int = 1
) -> list[dict[str, Any]]:
    """Matrix-only vs geometric-only vs both (why Reduced loses accuracy)."""
    dataset = make_dataset(config)

    def evaluate_extractor(extractor_factory: Callable[[], FeatureExtractor]) -> dict:
        reports = []
        for subject in dataset.subjects:
            extractor = extractor_factory()
            stream = build_stream(dataset, subject, config)
            training_record = dataset.record(
                subject, config.train_duration_s, purpose="train"
            )
            donors = [
                dataset.record(d, config.donor_duration_s, purpose="train")
                for d in dataset.subjects
                if d is not subject
            ][: config.n_train_donors]
            training_set = build_training_set(
                extractor,
                training_record,
                donors,
                window_s=config.window_s,
                stride_s=config.train_stride_s,
            )
            scaler = StandardScaler()
            X = scaler.fit_transform(training_set.X)
            svc = SVC(
                C=config.svm_c,
                kernel=make_kernel(config.kernel, gamma=config.svm_gamma),
            )
            svc.fit(X, training_set.y)
            features = scaler.transform(extractor.extract_many(stream.windows))
            predictions = svc.predict_bool(features)
            reports.append(score_predictions(predictions, stream.labels))
        mean = mean_report(reports)
        return {"accuracy": mean.accuracy, "f1": mean.f1}

    grid_n = config.grid_n
    rows = [
        {
            "features": "matrix_only",
            "n_features": 3,
            **evaluate_extractor(lambda: _MatrixOnlyExtractor(grid_n=grid_n)),
        },
        {
            "features": "geometric_only (reduced)",
            "n_features": 5,
            **_subset(
                _mean_accuracy(config, version="reduced", jobs=jobs),
                ("accuracy", "f1"),
            ),
        },
        {
            "features": "both (simplified)",
            "n_features": 8,
            **_subset(
                _mean_accuracy(config, version="simplified", jobs=jobs),
                ("accuracy", "f1"),
            ),
        },
    ]
    return rows


def _subset(values: dict[str, float], keys: Sequence[str]) -> dict[str, float]:
    return {key: values[key] for key in keys}


def classifier_ablation(config: ExperimentConfig) -> list[dict[str, Any]]:
    """The "other algorithms we tried" comparison (paper: SVM won)."""
    dataset = make_dataset(config)
    classifiers: dict[str, Callable[[], Any]] = {
        "svm_linear": lambda: SVC(C=config.svm_c, kernel=make_kernel("linear")),
        "svm_rbf": lambda: SVC(
            C=config.svm_c, kernel=make_kernel("rbf", gamma=config.svm_gamma)
        ),
        "logistic": lambda: LogisticRegression(),
        "knn5": lambda: KNearestNeighbors(k=5),
        "centroid": lambda: NearestCentroid(),
    }
    rows = []
    for name, factory in classifiers.items():
        reports = []
        for subject in dataset.subjects:
            detector = train_detector(dataset, subject, "simplified", config)
            stream = build_stream(dataset, subject, config)
            # Rebuild the training set once per subject for the classifier.
            training_record = dataset.record(
                subject, config.train_duration_s, purpose="train"
            )
            donors = [
                dataset.record(d, config.donor_duration_s, purpose="train")
                for d in dataset.subjects
                if d is not subject
            ][: config.n_train_donors]
            training_set = build_training_set(
                detector.extractor,
                training_record,
                donors,
                window_s=config.window_s,
                stride_s=config.train_stride_s,
            )
            scaler = StandardScaler()
            X = scaler.fit_transform(training_set.X)
            clf = factory()
            clf.fit(X, training_set.y)
            features = scaler.transform(
                detector.extractor.extract_many(stream.windows)
            )
            predictions = clf.predict_bool(features)
            reports.append(score_predictions(predictions, stream.labels))
        mean = mean_report(reports)
        rows.append(
            {"classifier": name, "accuracy": mean.accuracy, "f1": mean.f1}
        )
    return rows


def fixed_point_ablation(
    config: ExperimentConfig, frac_bits_values: Sequence[int] = (4, 6, 8, 10, 14, 20)
) -> list[dict[str, Any]]:
    """Quantization error of the deployed model vs fractional bits."""
    dataset = make_dataset(config)
    rows = []
    for frac_bits in frac_bits_values:
        reports = []
        agreements = []
        for subject in dataset.subjects:
            detector = train_detector(dataset, subject, "simplified", config)
            stream = build_stream(dataset, subject, config)
            model = export_fixed_point(
                detector.svc, detector.scaler, frac_bits=int(frac_bits)
            )
            features = detector.extractor.extract_many(stream.windows)
            fixed_pred = np.array(
                [model.predict_bool_fixed(model.quantize(f)) for f in features]
            )
            float_pred = detector.svc.predict_bool(
                detector.scaler.transform(features)
            )
            agreements.append(float(np.mean(fixed_pred == float_pred)))
            reports.append(score_predictions(fixed_pred, stream.labels))
        mean = mean_report(reports)
        rows.append(
            {
                "frac_bits": int(frac_bits),
                "accuracy": mean.accuracy,
                "agreement_with_float": float(np.mean(agreements)),
            }
        )
    return rows


def mixed_attack_training_ablation(
    config: ExperimentConfig,
) -> list[dict[str, Any]]:
    """Does training against a broader threat model close blind spots?

    Compares the paper's replacement-only positive class with a mixed
    positive class (replacement + interference + morphology), evaluated
    against each attack type.  One row per (training regime, eval attack).
    """
    from repro.core.detector import SIFTDetector

    dataset = make_dataset(config)
    eval_attacks = ("replacement", "interference", "morphology")
    collected: dict[tuple[str, str], list] = {
        (regime, attack): []
        for regime in ("replacement_only", "mixed")
        for attack in eval_attacks
    }
    for index, subject in enumerate(dataset.subjects):
        others = [s for s in dataset.subjects if s is not subject]
        training_record = dataset.record(
            subject, config.train_duration_s, purpose="train"
        )
        train_donors = [
            dataset.record(d, config.donor_duration_s, purpose="train")
            for d in others[: config.n_train_donors]
        ]
        test_record = dataset.record(
            subject, config.test_duration_s, purpose="test"
        )
        test_donors = [
            dataset.record(d, config.donor_duration_s, purpose="test")
            for d in others[config.n_train_donors :][: config.n_test_donors]
        ]
        regimes = {
            "replacement_only": None,
            "mixed": [
                ReplacementAttack(train_donors),
                InterferenceInjectionAttack(amplitude=1.0),
                MorphologyInjectionAttack(),
            ],
        }
        evaluations = {
            "replacement": ReplacementAttack(test_donors),
            "interference": InterferenceInjectionAttack(amplitude=1.0),
            "morphology": MorphologyInjectionAttack(),
        }
        for regime, attacks in regimes.items():
            detector = SIFTDetector(
                version="simplified",
                window_s=config.window_s,
                grid_n=config.grid_n,
                C=config.svm_c,
            )
            detector.fit(
                training_record,
                train_donors,
                stride_s=config.train_stride_s,
                attacks=attacks,
            )
            for name, attack in evaluations.items():
                scenario = AttackScenario(
                    attack,
                    window_s=config.window_s,
                    altered_fraction=config.altered_fraction,
                )
                stream = scenario.build(
                    test_record,
                    np.random.default_rng([config.scenario_seed, index, 3]),
                )
                collected[(regime, name)].append(detector.evaluate(stream))
    rows = []
    for (regime, attack), reports in collected.items():
        mean = mean_report(reports)
        rows.append(
            {
                "training": regime,
                "eval_attack": attack,
                "accuracy": mean.accuracy,
                "fn_rate": mean.false_negative_rate,
                "fp_rate": mean.false_positive_rate,
            }
        )
    return rows


def attack_type_ablation(config: ExperimentConfig) -> list[dict[str, Any]]:
    """Detection performance across the threat model's attack classes."""
    dataset = make_dataset(config)

    def build_attacks(
        subject, test_donors
    ) -> dict[str, SensorHijackingAttack]:
        captured = dataset.record(subject, config.donor_duration_s, purpose="extra")
        return {
            "replacement": ReplacementAttack(test_donors),
            "replay": ReplayAttack(captured),
            "interference": InterferenceInjectionAttack(),
            "morphology": MorphologyInjectionAttack(),
        }

    names = ("replacement", "replay", "interference", "morphology")
    collected: dict[str, list] = {name: [] for name in names}
    for index, subject in enumerate(dataset.subjects):
        detector = train_detector(dataset, subject, "simplified", config)
        others = [s for s in dataset.subjects if s is not subject]
        test_donors = [
            dataset.record(d, config.donor_duration_s, purpose="test")
            for d in others[: config.n_test_donors]
        ]
        test_record = dataset.record(
            subject, config.test_duration_s, purpose="test"
        )
        for name, attack in build_attacks(subject, test_donors).items():
            scenario = AttackScenario(
                attack,
                window_s=config.window_s,
                altered_fraction=config.altered_fraction,
            )
            stream = scenario.build(
                test_record, np.random.default_rng([config.scenario_seed, index])
            )
            collected[name].append(detector.evaluate(stream))
    rows = []
    for name in names:
        mean = mean_report(collected[name])
        rows.append(
            {
                "attack": name,
                "accuracy": mean.accuracy,
                "fn_rate": mean.false_negative_rate,
                "fp_rate": mean.false_positive_rate,
            }
        )
    return rows
