"""Parallel cohort execution, hardened against worker faults.

The paper's protocol is embarrassingly parallel across subjects: each
:func:`~repro.experiments.pipeline.run_subject` call trains and evaluates
one (subject, version) pair independently.  :class:`CohortRunner` fans
those calls out over a ``ProcessPoolExecutor`` while keeping the serial
path (``jobs=1``) bit-identical to calling ``run_subject`` in a loop:

* **Deterministic ordering** -- results always come back in cohort order
  regardless of which worker finishes first.
* **Per-subject error capture** -- one failing subject yields a
  :class:`CohortOutcome` with a structured :class:`TaskFaultReport`
  instead of killing the whole cohort.
* **Per-worker caching** -- each worker process keeps its dataset and the
  process-local :data:`~repro.experiments.cache.EXPERIMENT_CACHE`, so a
  worker that handles several versions of the same subject trains from
  cached records.
* **Zero-copy dataset plane** -- the parent realizes the cohort's record
  working set once and publishes it via
  :mod:`repro.experiments.dataplane`; workers attach shared-memory views
  instead of re-synthesizing recordings per process (``share_dataset``,
  on by default).

Hardening (deployment-grade behaviour under faulty workers):

* **Per-task timeouts** -- ``task_timeout_s`` bounds how long the runner
  waits for any one result; a hung worker is terminated rather than
  wedging the cohort.  Timeouts are terminal for the task that hung
  (deterministic tasks that hang once hang again), but never for its
  innocent pool-mates, which are requeued.
* **Bounded retry with jittered exponential backoff** -- ``max_retries``
  re-runs failed tasks, sleeping ``retry_backoff_s * 2**(attempt-1)``
  (capped, then jittered by ``retry_jitter`` through the shared
  :class:`~repro.core.backoff.JitteredBackoff` helper) between attempts,
  so simultaneous worker failures do not retry in lockstep.
* **Broken-pool recovery** -- a crashed worker (``BrokenProcessPool``)
  kills the pool; the runner rebuilds it once and requeues the undone
  tasks.  If the rebuilt pool breaks too, the remaining tasks fall back
  to plain in-process execution.

The parallel path strips the non-picklable ``runner`` handle (the live
simulated-Amulet harness) from results before they cross the process
boundary; the reports it produced travel fine.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, replace

from repro.core.backoff import JitteredBackoff
from repro.core.versions import DetectorVersion
from repro.experiments.cache import EXPERIMENT_CACHE, set_cache_budget
from repro.experiments.dataplane import (
    PUBLISH_ERRORS,
    DatasetPlane,
    PlaneManifest,
    realize_cohort_records,
    seed_worker_cache,
)
from repro.experiments.pipeline import (
    ExperimentConfig,
    SubjectRunResult,
    make_dataset,
    run_subject,
)
from repro.signals.dataset import SyntheticFantasia

__all__ = [
    "CohortOutcome",
    "CohortRunner",
    "TaskFaultReport",
    "effective_workers",
]

logger = logging.getLogger(__name__)


def effective_workers(jobs: int) -> int:
    """Clamp a requested worker count to the CPUs actually available.

    The cohort tasks are CPU-bound; oversubscribing a small container
    only adds scheduling churn and duplicates worker-local caches across
    processes that then time-slice one core.
    """
    available = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    return max(1, min(int(jobs), available))


@dataclass(frozen=True)
class TaskFaultReport:
    """Structured account of why one (subject, version) task failed.

    ``kind`` distinguishes the failure avenue:

    - ``"exception"`` -- the task ran and raised (captured in-worker);
    - ``"timeout"`` -- no result within ``task_timeout_s``; the pool was
      terminated to unwedge the cohort;
    - ``"broken-pool"`` -- the worker process died (crash, OOM-kill)
      before returning a result.

    ``attempts`` counts every submission of the task, including the
    failing one.
    """

    kind: str  # "exception" | "timeout" | "broken-pool"
    error_type: str
    message: str
    attempts: int

    def __post_init__(self) -> None:
        if self.kind not in ("exception", "timeout", "broken-pool"):
            raise ValueError(f"unknown fault kind: {self.kind!r}")

    @property
    def error(self) -> str:
        """The legacy ``"TypeName: message"`` rendering."""
        return f"{self.error_type}: {self.message}"

    def describe(self) -> str:
        """One human-readable line for logs and CLI warnings."""
        return (
            f"[{self.kind}] {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )


@dataclass(frozen=True)
class CohortOutcome:
    """One (subject, version) cell of a cohort run.

    Exactly one of ``result`` / ``fault`` is set; ``error`` keeps the
    historical ``"TypeName: message"`` string rendering of the fault.
    """

    subject_id: str
    version: DetectorVersion
    result: SubjectRunResult | None
    error: str | None = None
    fault: TaskFaultReport | None = None

    @property
    def ok(self) -> bool:
        return self.fault is None and self.error is None


#: Per-worker-process dataset cache, keyed by the dataset knobs of the
#: config.  Re-synthesizing cohort parameters per task would be cheap but
#: pointless; records themselves are cached by the pipeline layer.
_WORKER_DATASETS: dict[tuple, SyntheticFantasia] = {}


def _worker_dataset(config: ExperimentConfig) -> SyntheticFantasia:
    key = (config.n_subjects, config.seed, config.sample_rate)
    dataset = _WORKER_DATASETS.get(key)
    if dataset is None:
        # Keep only the current config: long-lived workers that serve
        # sweeps with varying dataset knobs otherwise accumulate one
        # cohort (and its realized records, via references) per config
        # for the life of the process.
        _WORKER_DATASETS.clear()
        dataset = _WORKER_DATASETS[key] = make_dataset(config)
    return dataset


def _run_subject_task(
    config: ExperimentConfig,
    subject_index: int,
    version_name: str,
    with_device: bool,
    chunk_size: int | None = None,
    cache_bytes: int | None = None,
    plane_manifest: PlaneManifest | None = None,
) -> tuple[SubjectRunResult | None, tuple[str, str] | None]:
    """Top-level (picklable) per-subject task with error capture.

    ``cache_bytes`` (when given) rebudgets the worker process's local
    experiment cache before the run -- each worker holds its own LRU.
    ``plane_manifest`` (when given) attaches the parent's published
    dataset plane and seeds this worker's cache with zero-copy record
    views, so the task trains and evaluates without re-synthesizing any
    recording.  Errors come back as ``(type_name, message)`` so the
    parent can build a structured fault report.
    """
    try:
        if cache_bytes is not None:
            set_cache_budget(cache_bytes)
        if plane_manifest is not None:
            seed_worker_cache(plane_manifest)
        dataset = _worker_dataset(config)
        result = run_subject(
            dataset,
            dataset.subjects[subject_index],
            version_name,
            config,
            with_device=with_device,
            chunk_size=chunk_size,
        )
        # The live Amulet harness does not pickle; its reports already do.
        return replace(result, runner=None), None
    except Exception as exc:  # noqa: BLE001 -- the whole point is capture
        return None, (type(exc).__name__, str(exc))


class CohortRunner:
    """Fan a cohort of ``run_subject`` calls over worker processes.

    Parameters
    ----------
    config:
        The protocol configuration; defaults to the paper's.
    jobs:
        Worker process count.  ``jobs=1`` runs serially in-process and is
        bit-identical to a plain ``run_subject`` loop (it also keeps the
        live ``runner`` handle on each result, which parallel runs must
        strip for pickling).
    with_device:
        Forwarded to ``run_subject``: also deploy on the simulated Amulet.
    chunk_size:
        Windows scored per chunk by the reference evaluation (``None`` =
        the detector default).  Bit-identical results at any size; only
        each worker's peak memory changes.
    cache_bytes:
        LRU budget for the experiment cache, in bytes.  ``None`` leaves
        the process-wide default untouched; a value is applied in the
        parent *and* in every worker process (workers keep process-local
        caches).
    task_timeout_s:
        Maximum seconds to wait for any one task's result (``None`` =
        wait forever, the historical behaviour).  On expiry the pool is
        terminated (a hung worker never unwedges on its own), the timed
        out task gets a ``"timeout"`` fault, and undone pool-mates are
        requeued on a fresh pool.
    max_retries:
        Re-submissions allowed per task after a failed attempt
        (exceptions and broken pools; timeouts are terminal).  0 disables
        retries -- with retries disabled and no timeout the runner is
        behaviourally identical to the unhardened one.
    retry_backoff_s:
        Base of the exponential backoff slept before each retry
        (``retry_backoff_s * 2**(attempt-1)``, capped at 30 s).
    retry_jitter:
        Fraction of each backoff delay eligible to be randomly
        subtracted (uniform in ``[raw * (1 - retry_jitter), raw]``), so
        workers that failed together do not retry in lockstep.  ``0``
        restores the exact deterministic schedule.
    backoff_seed:
        Seed of the jitter stream; identical seeds replay identical
        delay sequences.
    share_dataset:
        Publish the realized cohort records once into a shared-memory
        dataset plane (``.npz`` artifact where shared memory is
        unavailable) and have workers attach zero-copy views instead of
        re-synthesizing recordings per process (default).  ``False``
        restores the historical per-worker synthesis.  Results are
        bit-identical either way; only fan-out cost changes.

    A parallel runner keeps its worker pool alive across ``run_version``
    calls (pool start-up costs more than a quick cohort); use it as a
    context manager, or call :meth:`close`, to release the workers.  The
    dataset plane has the same lifetime: it is published lazily on the
    first parallel run, survives task timeouts and pool rebuilds (the
    rebuilt pool's workers re-attach it), and its segment is unlinked by
    :meth:`close`/context exit, by any exception unwinding a run
    (including ``KeyboardInterrupt``), or -- as a last resort -- when the
    runner is garbage collected or the interpreter exits.
    """

    #: Pool rebuilds allowed per ``run_version`` before the runner stops
    #: trusting process pools and finishes the cohort in-process.
    max_pool_rebuilds = 1

    #: Upper bound on any single backoff sleep, in seconds.
    max_backoff_s = 30.0

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        jobs: int = 1,
        with_device: bool = True,
        chunk_size: int | None = None,
        cache_bytes: int | None = None,
        task_timeout_s: float | None = None,
        max_retries: int = 0,
        retry_backoff_s: float = 0.5,
        retry_jitter: float = 0.5,
        backoff_seed: int = 0,
        share_dataset: bool = True,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if cache_bytes is not None and cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if not 0.0 <= retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")
        self.config = config or ExperimentConfig()
        self.jobs = int(jobs)
        self.with_device = bool(with_device)
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self.cache_bytes = None if cache_bytes is None else int(cache_bytes)
        self.task_timeout_s = (
            None if task_timeout_s is None else float(task_timeout_s)
        )
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.retry_jitter = float(retry_jitter)
        self.backoff_seed = int(backoff_seed)
        self._backoff = JitteredBackoff(
            self.retry_backoff_s,
            cap_s=self.max_backoff_s,
            jitter=self.retry_jitter,
            seed=self.backoff_seed,
        )
        self.share_dataset = bool(share_dataset)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_rebuilds = 0
        self._plane: DatasetPlane | None = None
        self._plane_subjects: set[int] = set()
        self._plane_manifest: PlaneManifest | None = None

    @property
    def dataset(self) -> SyntheticFantasia:
        # Goes through the worker memo on purpose: fork-started workers
        # inherit the already-built dataset instead of rebuilding it.
        return _worker_dataset(self.config)

    @property
    def pool_rebuilds(self) -> int:
        """Pools rebuilt after hangs/crashes during the last run."""
        return self._pool_rebuilds

    @property
    def plane(self) -> DatasetPlane | None:
        """The live dataset plane (``None`` before the first parallel run)."""
        return self._plane

    def close(self) -> None:
        """Shut down the worker pool and unlink the dataset plane."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._cleanup_plane()

    def _cleanup_plane(self) -> None:
        """Unlink the published segment (idempotent; workers' mappings
        stay valid -- on Linux an attached segment survives unlinking)."""
        plane, self._plane = self._plane, None
        self._plane_manifest = None
        self._plane_subjects = set()
        if plane is not None:
            plane.unlink()

    def _ensure_plane(self, indices: list[int]) -> PlaneManifest | None:
        """Publish (or extend) the dataset plane covering ``indices``.

        The plane is reused across ``run_version`` calls as long as it
        covers the requested subjects; asking for new subjects republishes
        a segment covering the union (and unlinks the old one first).
        Publishing failures degrade to per-worker synthesis -- the plane
        is an optimization, never a correctness dependency -- but the
        degradation is *logged*: every worker quietly re-synthesizing the
        cohort is exactly the cost the plane exists to remove, so a run
        that silently fell back would be undiagnosable from its numbers.
        """
        if not self.share_dataset:
            return None
        needed = set(indices)
        if self._plane is not None and needed <= self._plane_subjects:
            return self._plane_manifest
        covered = needed | self._plane_subjects
        self._cleanup_plane()
        try:
            records = realize_cohort_records(
                self.config, dataset=self.dataset, subjects=sorted(covered)
            )
            self._plane = DatasetPlane.publish(records)
        except PUBLISH_ERRORS as exc:
            logger.warning(
                "dataset-plane publish failed; workers will re-synthesize "
                "the cohort per process: error=%s message=%r subjects=%d "
                "jobs=%d",
                type(exc).__name__,
                str(exc),
                len(covered),
                self.jobs,
            )
            self._plane = None
            return None
        self._plane_subjects = covered
        self._plane_manifest = self._plane.manifest
        return self._plane_manifest

    def __enter__(self) -> "CohortRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """One pool reused across run_version calls (pools are expensive)."""
        if self._pool is None:
            context = (
                multiprocessing.get_context("fork")
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=effective_workers(self.jobs), mp_context=context
            )
        return self._pool

    def _kill_pool(self) -> None:
        """Terminate the pool's workers (hung or crashed) and forget it.

        A plain ``shutdown`` would *join* a hung worker and wedge forever;
        terminating first guarantees the join returns.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            process.terminate()
        pool.shutdown(wait=True, cancel_futures=True)

    def _backoff_sleep(self, attempt: int) -> None:
        """Jittered exponential backoff before retry number ``attempt``.

        Delegates the delay schedule to the shared
        :class:`~repro.core.backoff.JitteredBackoff` (the gateway's
        scoring supervisor sleeps by the same rules), but sleeps through
        this module's ``time.sleep`` so tests can intercept it.  The
        knobs are re-synced per call because tests (and callers) may
        adjust ``max_backoff_s`` after construction.
        """
        if self.retry_backoff_s <= 0:
            return
        self._backoff.base_s = self.retry_backoff_s
        self._backoff.cap_s = self.max_backoff_s
        time.sleep(self._backoff.delay(attempt))

    def _retry_after_failure(self, attempts: int) -> bool:
        """Whether a task that has failed ``attempts`` times may retry.

        This is the *only* gate between a failure and its backoff sleep,
        so the exponential sleep can never be paid unless a retry
        actually follows: the final failed attempt returns ``False``
        without sleeping (a capped backoff before giving up would delay
        the fault report for nothing).  With ``retry_jitter=0`` the
        total sleep for ``max_retries=N`` is exactly ``sum(min(cap,
        base * 2**(k-1)) for k in 1..N)``; with jitter it is the seeded
        :class:`~repro.core.backoff.JitteredBackoff` sequence -- the
        regression tests assert both, per path.
        """
        if attempts > self.max_retries:
            return False
        self._backoff_sleep(attempts)
        return True

    def run_version(
        self,
        version: DetectorVersion | str,
        subjects: list[int] | None = None,
    ) -> list[CohortOutcome]:
        """Run one detector version over the cohort (or a subject subset)."""
        if isinstance(version, str):
            version = DetectorVersion.from_name(version)
        indices = (
            list(range(len(self.dataset.subjects)))
            if subjects is None
            else list(subjects)
        )
        tasks = [(index, version) for index in indices]
        return self._run_tasks(tasks)

    def run(
        self,
        versions: tuple[DetectorVersion | str, ...] = tuple(DetectorVersion),
        subjects: list[int] | None = None,
    ) -> list[CohortOutcome]:
        """Run several versions; outcomes ordered version-major."""
        outcomes: list[CohortOutcome] = []
        for version in versions:
            outcomes.extend(self.run_version(version, subjects=subjects))
        return outcomes

    # ------------------------------------------------------------------
    # Task execution
    # ------------------------------------------------------------------

    def _run_tasks(
        self, tasks: list[tuple[int, DetectorVersion]]
    ) -> list[CohortOutcome]:
        if self.cache_bytes is not None:
            set_cache_budget(self.cache_bytes)
        self._pool_rebuilds = 0
        if self.jobs == 1 or len(tasks) <= 1:
            pairs = [
                self._run_serial_with_retries(index, version)
                for index, version in tasks
            ]
        else:
            self._ensure_plane([index for index, _ in tasks])
            try:
                pairs = self._run_parallel(tasks)
            except BaseException:
                # Guaranteed unlink on every abnormal exit -- including
                # KeyboardInterrupt -- before the exception propagates.
                self._cleanup_plane()
                raise
        return [
            CohortOutcome(
                subject_id=self.dataset.subjects[index].subject_id,
                version=version,
                result=result,
                error=None if fault is None else fault.error,
                fault=fault,
            )
            for (index, version), (result, fault) in zip(tasks, pairs)
        ]

    def _submit(self, pool: ProcessPoolExecutor, task):
        index, version = task
        return pool.submit(
            _run_subject_task,
            self.config,
            index,
            version.value,
            self.with_device,
            self.chunk_size,
            self.cache_bytes,
            self._plane_manifest,
        )

    def _run_serial_with_retries(
        self, subject_index: int, version: DetectorVersion
    ) -> tuple[SubjectRunResult | None, TaskFaultReport | None]:
        """In-process execution with the same retry budget as workers.

        Keeps the live ``runner`` handle on results (nothing crosses a
        process boundary).  Timeouts are not enforceable in-process.
        """
        attempts = 0
        while True:
            attempts += 1
            try:
                result = run_subject(
                    self.dataset,
                    self.dataset.subjects[subject_index],
                    version,
                    self.config,
                    with_device=self.with_device,
                    chunk_size=self.chunk_size,
                )
                return result, None
            except Exception as exc:  # noqa: BLE001 -- capture is the point
                if self._retry_after_failure(attempts):
                    continue
                return None, TaskFaultReport(
                    kind="exception",
                    error_type=type(exc).__name__,
                    message=str(exc),
                    attempts=attempts,
                )

    def _finish_in_process(
        self, task, attempts_so_far: int
    ) -> tuple[SubjectRunResult | None, TaskFaultReport | None]:
        """Last-resort avenue once process pools have proven unreliable.

        Runs the task in the parent, stripping the runner handle for
        parity with pool results.  Always grants at least one attempt,
        then honours whatever retry budget remains.
        """
        index, version = task
        attempts = attempts_so_far
        while True:
            attempts += 1
            result, error = _run_subject_task(
                self.config,
                index,
                version.value,
                self.with_device,
                self.chunk_size,
                self.cache_bytes,
            )
            if error is None:
                return result, None
            if self._retry_after_failure(attempts):
                continue
            return None, TaskFaultReport(
                kind="exception",
                error_type=error[0],
                message=error[1],
                attempts=attempts,
            )

    def _run_parallel(
        self, tasks: list[tuple[int, DetectorVersion]]
    ) -> list[tuple[SubjectRunResult | None, TaskFaultReport | None]]:
        n = len(tasks)
        out: list = [None] * n
        attempts = [0] * n
        pending = list(range(n))

        while pending:
            if self._pool_rebuilds > self.max_pool_rebuilds:
                # Pools have failed twice; stop trusting them.
                for i in pending:
                    out[i] = self._finish_in_process(tasks[i], attempts[i])
                break

            pool = self._ensure_pool()
            futures = {}
            for i in pending:
                attempts[i] += 1
                futures[i] = self._submit(pool, tasks[i])

            next_pending: list[int] = []
            kill_reason: str | None = None  # "timeout" | "broken"

            def settle(i: int, result, error) -> None:
                """Record a worker's return: success, retry queue, or fault."""
                if error is None:
                    out[i] = (result, None)
                elif attempts[i] <= self.max_retries:
                    next_pending.append(i)
                else:
                    out[i] = (
                        None,
                        TaskFaultReport(
                            kind="exception",
                            error_type=error[0],
                            message=error[1],
                            attempts=attempts[i],
                        ),
                    )

            def requeue_refund(i: int) -> None:
                """Requeue a casualty of a runner-initiated pool kill.

                The runner terminated the pool to unwedge a *different*
                task; this one never failed, so its submission is refunded
                rather than charged against its retry budget.
                """
                attempts[i] -= 1
                next_pending.append(i)

            def charge_or_fault(i: int, message: str) -> None:
                """Dispose of a task whose worker pool broke under it.

                With a crashed worker the culprit is unidentifiable, so
                every undone task is charged one attempt: retried within
                the ``max_retries`` budget, faulted as ``broken-pool``
                beyond it.  Run with ``max_retries >= 1`` to tolerate
                worker crashes without losing innocent pool-mates.
                """
                if attempts[i] <= self.max_retries:
                    next_pending.append(i)
                else:
                    out[i] = (
                        None,
                        TaskFaultReport(
                            kind="broken-pool",
                            error_type="BrokenProcessPool",
                            message=message,
                            attempts=attempts[i],
                        ),
                    )

            def timeout_fault(i: int) -> None:
                """Terminal fault for the task the runner timed out on."""
                out[i] = (
                    None,
                    TaskFaultReport(
                        kind="timeout",
                        error_type="TimeoutError",
                        message=(
                            f"no result within {self.task_timeout_s:g}s; "
                            "worker terminated"
                        ),
                        attempts=attempts[i],
                    ),
                )

            def dispose_casualty(i: int) -> None:
                """Requeue or fault a task orphaned by the pool's death."""
                if kill_reason == "timeout":
                    requeue_refund(i)
                else:
                    charge_or_fault(
                        i, "worker pool broke before the task completed"
                    )

            for i in pending:
                future = futures[i]
                if kill_reason is not None:
                    # The pool died collecting an earlier task.  Harvest
                    # results that finished before it died; requeue or
                    # fault the rest (never resubmit to the dead pool --
                    # retryable failures go to next round's fresh pool).
                    if future.done() and not future.cancelled():
                        try:
                            result, error = future.result(timeout=0)
                        except Exception:  # noqa: BLE001 -- died with pool
                            dispose_casualty(i)
                        else:
                            settle(i, result, error)
                    else:
                        dispose_casualty(i)
                    continue

                try:
                    result, error = future.result(timeout=self.task_timeout_s)
                except FutureTimeoutError:
                    kill_reason = "timeout"
                    self._kill_pool()
                    timeout_fault(i)
                    continue
                except BrokenExecutor as exc:
                    kill_reason = "broken"
                    self._kill_pool()
                    charge_or_fault(
                        i, str(exc) or "worker process died abruptly"
                    )
                    continue

                # The worker returned.  Retry captured exceptions inline on
                # the same pool (it is healthy -- the task itself failed).
                # _retry_after_failure sleeps only when the retry follows,
                # never after the final failed attempt.
                while error is not None and self._retry_after_failure(
                    attempts[i]
                ):
                    attempts[i] += 1
                    retry_future = self._submit(pool, tasks[i])
                    try:
                        result, error = retry_future.result(
                            timeout=self.task_timeout_s
                        )
                    except FutureTimeoutError:
                        kill_reason = "timeout"
                        self._kill_pool()
                        timeout_fault(i)
                        break
                    except BrokenExecutor as exc:
                        kill_reason = "broken"
                        self._kill_pool()
                        charge_or_fault(
                            i, str(exc) or "worker process died abruptly"
                        )
                        break
                else:
                    settle(i, result, error)

            if kill_reason is not None:
                self._pool_rebuilds += 1
            pending = next_pending

        return out


def _run_subject_serial(
    dataset: SyntheticFantasia,
    config: ExperimentConfig,
    subject_index: int,
    version: DetectorVersion,
    with_device: bool,
    chunk_size: int | None = None,
) -> tuple[SubjectRunResult | None, str | None]:
    """In-process twin of :func:`_run_subject_task` (keeps the runner)."""
    try:
        result = run_subject(
            dataset,
            dataset.subjects[subject_index],
            version,
            config,
            with_device=with_device,
            chunk_size=chunk_size,
        )
        return result, None
    except Exception as exc:  # noqa: BLE001
        return None, f"{type(exc).__name__}: {exc}"


def clear_experiment_cache() -> None:
    """Drop the process-local experiment cache (counters reset too)."""
    EXPERIMENT_CACHE.clear()
