"""Parallel cohort execution.

The paper's protocol is embarrassingly parallel across subjects: each
:func:`~repro.experiments.pipeline.run_subject` call trains and evaluates
one (subject, version) pair independently.  :class:`CohortRunner` fans
those calls out over a ``ProcessPoolExecutor`` while keeping the serial
path (``jobs=1``) bit-identical to calling ``run_subject`` in a loop:

* **Deterministic ordering** -- results always come back in cohort order
  regardless of which worker finishes first.
* **Per-subject error capture** -- one failing subject yields a
  :class:`CohortOutcome` with ``error`` set instead of killing the whole
  cohort.
* **Per-worker caching** -- each worker process keeps its dataset and the
  process-local :data:`~repro.experiments.cache.EXPERIMENT_CACHE`, so a
  worker that handles several versions of the same subject trains from
  cached records.

The parallel path strips the non-picklable ``runner`` handle (the live
simulated-Amulet harness) from results before they cross the process
boundary; the reports it produced travel fine.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from repro.core.versions import DetectorVersion
from repro.experiments.cache import EXPERIMENT_CACHE, set_cache_budget
from repro.experiments.pipeline import (
    ExperimentConfig,
    SubjectRunResult,
    make_dataset,
    run_subject,
)
from repro.signals.dataset import SyntheticFantasia

__all__ = ["CohortOutcome", "CohortRunner", "effective_workers"]


def effective_workers(jobs: int) -> int:
    """Clamp a requested worker count to the CPUs actually available.

    The cohort tasks are CPU-bound; oversubscribing a small container
    only adds scheduling churn and duplicates worker-local caches across
    processes that then time-slice one core.
    """
    available = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    return max(1, min(int(jobs), available))


@dataclass(frozen=True)
class CohortOutcome:
    """One (subject, version) cell of a cohort run.

    Exactly one of ``result`` / ``error`` is set; ``error`` holds the
    worker-side exception rendered as ``"TypeName: message"``.
    """

    subject_id: str
    version: DetectorVersion
    result: SubjectRunResult | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


#: Per-worker-process dataset cache, keyed by the dataset knobs of the
#: config.  Re-synthesizing cohort parameters per task would be cheap but
#: pointless; records themselves are cached by the pipeline layer.
_WORKER_DATASETS: dict[tuple, SyntheticFantasia] = {}


def _worker_dataset(config: ExperimentConfig) -> SyntheticFantasia:
    key = (config.n_subjects, config.seed, config.sample_rate)
    dataset = _WORKER_DATASETS.get(key)
    if dataset is None:
        dataset = _WORKER_DATASETS[key] = make_dataset(config)
    return dataset


def _run_subject_task(
    config: ExperimentConfig,
    subject_index: int,
    version_name: str,
    with_device: bool,
    chunk_size: int | None = None,
    cache_bytes: int | None = None,
) -> tuple[SubjectRunResult | None, str | None]:
    """Top-level (picklable) per-subject task with error capture.

    ``cache_bytes`` (when given) rebudgets the worker process's local
    experiment cache before the run -- each worker holds its own LRU.
    """
    try:
        if cache_bytes is not None:
            set_cache_budget(cache_bytes)
        dataset = _worker_dataset(config)
        result = run_subject(
            dataset,
            dataset.subjects[subject_index],
            version_name,
            config,
            with_device=with_device,
            chunk_size=chunk_size,
        )
        # The live Amulet harness does not pickle; its reports already do.
        return replace(result, runner=None), None
    except Exception as exc:  # noqa: BLE001 -- the whole point is capture
        return None, f"{type(exc).__name__}: {exc}"


class CohortRunner:
    """Fan a cohort of ``run_subject`` calls over worker processes.

    Parameters
    ----------
    config:
        The protocol configuration; defaults to the paper's.
    jobs:
        Worker process count.  ``jobs=1`` runs serially in-process and is
        bit-identical to a plain ``run_subject`` loop (it also keeps the
        live ``runner`` handle on each result, which parallel runs must
        strip for pickling).
    with_device:
        Forwarded to ``run_subject``: also deploy on the simulated Amulet.
    chunk_size:
        Windows scored per chunk by the reference evaluation (``None`` =
        the detector default).  Bit-identical results at any size; only
        each worker's peak memory changes.
    cache_bytes:
        LRU budget for the experiment cache, in bytes.  ``None`` leaves
        the process-wide default untouched; a value is applied in the
        parent *and* in every worker process (workers keep process-local
        caches).

    A parallel runner keeps its worker pool alive across ``run_version``
    calls (pool start-up costs more than a quick cohort); use it as a
    context manager, or call :meth:`close`, to release the workers.  On
    platforms with ``fork`` the workers inherit the parent's already-built
    dataset instead of re-synthesizing it.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        jobs: int = 1,
        with_device: bool = True,
        chunk_size: int | None = None,
        cache_bytes: int | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if cache_bytes is not None and cache_bytes < 0:
            raise ValueError("cache_bytes must be >= 0")
        self.config = config or ExperimentConfig()
        self.jobs = int(jobs)
        self.with_device = bool(with_device)
        self.chunk_size = None if chunk_size is None else int(chunk_size)
        self.cache_bytes = None if cache_bytes is None else int(cache_bytes)
        self._pool: ProcessPoolExecutor | None = None

    @property
    def dataset(self) -> SyntheticFantasia:
        # Goes through the worker memo on purpose: fork-started workers
        # inherit the already-built dataset instead of rebuilding it.
        return _worker_dataset(self.config)

    def close(self) -> None:
        """Shut down the worker pool (no-op when none was started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CohortRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """One pool reused across run_version calls (pools are expensive)."""
        if self._pool is None:
            context = (
                multiprocessing.get_context("fork")
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=effective_workers(self.jobs), mp_context=context
            )
        return self._pool

    def run_version(
        self,
        version: DetectorVersion | str,
        subjects: list[int] | None = None,
    ) -> list[CohortOutcome]:
        """Run one detector version over the cohort (or a subject subset)."""
        if isinstance(version, str):
            version = DetectorVersion.from_name(version)
        indices = (
            list(range(len(self.dataset.subjects)))
            if subjects is None
            else list(subjects)
        )
        tasks = [(index, version) for index in indices]
        return self._run_tasks(tasks)

    def run(
        self,
        versions: tuple[DetectorVersion | str, ...] = tuple(DetectorVersion),
        subjects: list[int] | None = None,
    ) -> list[CohortOutcome]:
        """Run several versions; outcomes ordered version-major."""
        outcomes: list[CohortOutcome] = []
        for version in versions:
            outcomes.extend(self.run_version(version, subjects=subjects))
        return outcomes

    # ------------------------------------------------------------------

    def _run_tasks(
        self, tasks: list[tuple[int, DetectorVersion]]
    ) -> list[CohortOutcome]:
        if self.cache_bytes is not None:
            set_cache_budget(self.cache_bytes)
        if self.jobs == 1 or len(tasks) <= 1:
            pairs = [
                _run_subject_serial(
                    self.dataset,
                    self.config,
                    index,
                    version,
                    self.with_device,
                    self.chunk_size,
                )
                for index, version in tasks
            ]
        else:
            pool = self._ensure_pool()
            futures = [
                pool.submit(
                    _run_subject_task,
                    self.config,
                    index,
                    version.value,
                    self.with_device,
                    self.chunk_size,
                    self.cache_bytes,
                )
                for index, version in tasks
            ]
            # Collect in submission order: deterministic regardless of
            # worker completion order.
            pairs = [future.result() for future in futures]
        return [
            CohortOutcome(
                subject_id=self.dataset.subjects[index].subject_id,
                version=version,
                result=result,
                error=error,
            )
            for (index, version), (result, error) in zip(tasks, pairs)
        ]


def _run_subject_serial(
    dataset: SyntheticFantasia,
    config: ExperimentConfig,
    subject_index: int,
    version: DetectorVersion,
    with_device: bool,
    chunk_size: int | None = None,
) -> tuple[SubjectRunResult | None, str | None]:
    """In-process twin of :func:`_run_subject_task` (keeps the runner)."""
    try:
        result = run_subject(
            dataset,
            dataset.subjects[subject_index],
            version,
            config,
            with_device=with_device,
            chunk_size=chunk_size,
        )
        return result, None
    except Exception as exc:  # noqa: BLE001
        return None, f"{type(exc).__name__}: {exc}"


def clear_experiment_cache() -> None:
    """Drop the process-local experiment cache (counters reset too)."""
    EXPERIMENT_CACHE.clear()
