"""Robustness studies beyond the paper's evaluation.

Three operational questions a deployment would ask next:

* **Channel loss** -- how does detection degrade as the body-area link
  drops packets?  (Windows missing a half are skipped, so loss costs
  *coverage*, not per-window correctness.)
* **Artifact load** -- how do motion artifacts, the realistic enemy of
  wearable signal quality, move the FP/FN balance?
* **Alert debouncing** -- how much episode-level precision does the k-of-n
  streaming debouncer buy over the paper's per-window alerting?
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

import numpy as np

from repro.attacks.replacement import ReplacementAttack
from repro.attacks.scenario import AttackScenario
from repro.core.streaming import StreamingDetector
from repro.experiments.pipeline import (
    ExperimentConfig,
    build_stream,
    make_dataset,
    train_detector,
)
from repro.ml.metrics import mean_report, score_predictions
from repro.wiot.channel import WirelessChannel
from repro.wiot.environment import WIoTEnvironment

__all__ = [
    "artifact_load_study",
    "channel_loss_study",
    "debounce_study",
]


def channel_loss_study(
    config: ExperimentConfig,
    loss_values: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
) -> list[dict[str, Any]]:
    """Sweep the wireless loss probability through the full environment."""
    dataset = make_dataset(config)
    rows = []
    for loss in loss_values:
        coverages, accuracies = [], []
        for index, subject in enumerate(dataset.subjects):
            detector = train_detector(dataset, subject, "simplified", config)
            others = [s for s in dataset.subjects if s is not subject]
            donors = [
                dataset.record(d, config.donor_duration_s, purpose="test")
                for d in others[: config.n_test_donors]
            ]
            record = dataset.record(
                subject, config.test_duration_s, purpose="test"
            )
            environment = WIoTEnvironment(
                detector,
                channel=WirelessChannel(
                    loss_probability=float(loss), seed=1000 + index
                ),
            )
            summary = environment.run(
                record,
                attack=ReplacementAttack(donors),
                attack_after_s=config.test_duration_s / 2,
                rng=np.random.default_rng([7, index]),
            )
            coverages.append(
                summary.n_windows_classified / summary.n_windows_sent
            )
            if summary.report is not None:
                accuracies.append(summary.report.accuracy)
        rows.append(
            {
                "loss_probability": float(loss),
                "window_coverage": float(np.mean(coverages)),
                "accuracy_on_classified": float(np.mean(accuracies)),
            }
        )
    return rows


def artifact_load_study(
    config: ExperimentConfig,
    artifact_rates: Sequence[float] = (0.0, 2.0, 6.0, 12.0),
) -> list[dict[str, Any]]:
    """Sweep the per-minute motion-artifact rate of the *test* subjects.

    Models deteriorating wear conditions (loose electrodes, exercise):
    training happened under nominal conditions, evaluation under the swept
    rate, so the model faces a distribution shift.
    """
    dataset = make_dataset(config)
    rows = []
    for rate in artifact_rates:
        reports = []
        for index, subject in enumerate(dataset.subjects):
            detector = train_detector(dataset, subject, "simplified", config)
            noisy_subject = replace(
                subject,
                ecg_artifact_rate=float(rate),
                abp_artifact_rate=float(rate) / 2.0,
            )
            record = dataset.record(
                noisy_subject, config.test_duration_s, purpose="test"
            )
            if config.peak_source == "detected":
                record = record.redetect_peaks()
            others = [s for s in dataset.subjects if s is not subject]
            donors = [
                dataset.record(d, config.donor_duration_s, purpose="test")
                for d in others[: config.n_test_donors]
            ]
            scenario = AttackScenario(
                ReplacementAttack(donors),
                window_s=config.window_s,
                altered_fraction=config.altered_fraction,
            )
            stream = scenario.build(record, np.random.default_rng([11, index]))
            reports.append(detector.evaluate(stream))
        mean = mean_report(reports)
        rows.append(
            {
                "artifact_rate_per_min": float(rate),
                "accuracy": mean.accuracy,
                "fp_rate": mean.false_positive_rate,
                "fn_rate": mean.false_negative_rate,
            }
        )
    return rows


def debounce_study(
    config: ExperimentConfig,
    settings: Sequence[tuple[int, int]] = ((1, 1), (2, 3), (3, 4)),
) -> list[dict[str, Any]]:
    """Compare per-window alerting with k-of-n debounced episodes.

    The stream alternates genuine and attacked halves; window-level
    predictions are scored as usual, while episode openings inside the
    genuine half count as false episodes.
    """
    dataset = make_dataset(config)
    rows = []
    for votes_needed, vote_window in settings:
        window_reports = []
        false_episodes = []
        attacks_caught = []
        for index, subject in enumerate(dataset.subjects):
            detector = train_detector(dataset, subject, "simplified", config)
            stream = build_stream(dataset, subject, config)
            # Re-order into genuine-then-attacked halves for episode truth.
            genuine = [w for w in stream.windows if not w.altered]
            altered = [w for w in stream.windows if w.altered]
            streaming = StreamingDetector(
                detector, votes_needed=votes_needed, vote_window=vote_window
            )
            # Chunked batch scoring (bit-identical to the per-window loop);
            # flush=True closes an attack still in progress at end-of-stream.
            streaming.process_stream(genuine + altered, flush=True)

            boundary = len(genuine)
            false_episodes.append(
                sum(1 for e in streaming.episodes if e.start_index < boundary)
            )
            attacks_caught.append(
                any(e.end_index >= boundary for e in streaming.episodes)
            )
            predictions = np.array(
                [detector.classify_window(w) for w in genuine + altered]
            )
            labels = np.array([False] * len(genuine) + [True] * len(altered))
            window_reports.append(score_predictions(predictions, labels))
        mean = mean_report(window_reports)
        rows.append(
            {
                "votes_needed": votes_needed,
                "vote_window": vote_window,
                "window_accuracy": mean.accuracy,
                "false_episodes_per_run": float(np.mean(false_episodes)),
                "attack_catch_rate": float(np.mean(attacks_caught)),
            }
        )
    return rows
