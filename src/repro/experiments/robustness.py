"""Robustness studies beyond the paper's evaluation.

Three operational questions a deployment would ask next:

* **Channel loss** -- how does detection degrade as the body-area link
  drops packets?  (Windows missing a half are skipped, so loss costs
  *coverage*, not per-window correctness.)
* **Artifact load** -- how do motion artifacts, the realistic enemy of
  wearable signal quality, move the FP/FN balance?
* **Alert debouncing** -- how much episode-level precision does the k-of-n
  streaming debouncer buy over the paper's per-window alerting?
* **Fault matrix** -- how do accuracy, coverage and abstain rate move as
  each named sensor/channel fault is injected at increasing severity?
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

import numpy as np

from repro.attacks.replacement import ReplacementAttack
from repro.attacks.scenario import AttackScenario
from repro.core.streaming import StreamingDetector
from repro.experiments.pipeline import (
    ExperimentConfig,
    build_stream,
    make_dataset,
    train_detector,
)
from repro.faults import build_fault_cell, fault_names
from repro.ml.metrics import mean_report, score_predictions
from repro.signals.dataset import Record, SyntheticFantasia
from repro.signals.quality import SignalQualityIndex
from repro.signals.subjects import SubjectParameters
from repro.wiot.channel import WirelessChannel
from repro.wiot.environment import WIoTEnvironment

__all__ = [
    "artifact_load_study",
    "channel_loss_study",
    "debounce_study",
    "fault_matrix_study",
    "format_fault_matrix",
]


def _test_materials(
    dataset: SyntheticFantasia,
    subject: SubjectParameters,
    config: ExperimentConfig,
) -> tuple[Record, list[Record]]:
    """The subject's test recording plus the attack donor pool."""
    others = [s for s in dataset.subjects if s is not subject]
    donors = [
        dataset.record(d, config.donor_duration_s, purpose="test")
        for d in others[: config.n_test_donors]
    ]
    record = dataset.record(subject, config.test_duration_s, purpose="test")
    return record, donors


def channel_loss_study(
    config: ExperimentConfig,
    loss_values: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
) -> list[dict[str, Any]]:
    """Sweep the wireless loss probability through the full environment.

    Subject-major iteration: each subject's detector is trained (or pulled
    from the experiment cache) and its test materials built exactly once,
    then reused across the whole loss sweep -- the channel is the only
    thing that varies between sweep points, so it is the only thing reset.
    The per-(subject, loss) RNG streams match the historical loss-major
    iteration, so the numbers are unchanged.
    """
    dataset = make_dataset(config)
    loss_values = [float(loss) for loss in loss_values]
    coverages: dict[float, list[float]] = {loss: [] for loss in loss_values}
    accuracies: dict[float, list[float]] = {loss: [] for loss in loss_values}
    for index, subject in enumerate(dataset.subjects):
        detector = train_detector(dataset, subject, "simplified", config)
        record, donors = _test_materials(dataset, subject, config)
        channel = WirelessChannel(seed=1000 + index)
        for loss in loss_values:
            channel.reset(loss_probability=loss)
            environment = WIoTEnvironment(detector, channel=channel)
            summary = environment.run(
                record,
                attack=ReplacementAttack(donors),
                attack_after_s=config.test_duration_s / 2,
                rng=np.random.default_rng([7, index]),
            )
            coverages[loss].append(summary.coverage)
            if summary.report is not None:
                accuracies[loss].append(summary.report.accuracy)
    return [
        {
            "loss_probability": loss,
            "window_coverage": float(np.mean(coverages[loss])),
            "accuracy_on_classified": float(np.mean(accuracies[loss])),
        }
        for loss in loss_values
    ]


def fault_matrix_study(
    config: ExperimentConfig,
    faults: Sequence[str] | None = None,
    severities: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    subjects: int | None = None,
    quality_threshold: float = 0.6,
) -> list[dict[str, Any]]:
    """Sweep every named fault across severities through the environment.

    Each (fault, severity) cell deploys a fresh, seeded
    :class:`~repro.faults.FaultCell` -- the sensor-side injector and/or
    faulty channel -- around each subject's attacked test stream, with an
    SQI gate on the base station so unusable windows become *abstentions*:
    counted coverage loss, never silent skips.  Per cell the study reports

    - ``accuracy_on_decided`` -- accuracy over the windows the detector
      actually decided (NaN when the fault starved it of every window);
    - ``coverage`` -- decided windows / sent windows (loss + abstention);
    - ``abstain_rate`` -- the quality gate's share of the coverage loss;
    - ``delivery_rate`` and the corrupted/duplicated packet counts.

    Detectors are trained once per subject (the experiment cache makes the
    repeated ``train_detector`` calls free) and reused across all cells.
    """
    if not 0.0 <= quality_threshold <= 1.0:
        raise ValueError("quality_threshold must be in [0, 1]")
    names = tuple(faults) if faults is not None else fault_names()
    dataset = make_dataset(config)
    cohort = list(enumerate(dataset.subjects))
    if subjects is not None:
        if subjects < 1:
            raise ValueError("subjects must be >= 1")
        cohort = cohort[:subjects]

    materials = []
    for index, subject in cohort:
        detector = train_detector(dataset, subject, "simplified", config)
        record, donors = _test_materials(dataset, subject, config)
        materials.append((index, detector, record, donors))

    rows = []
    for name in names:
        for severity in severities:
            accs: list[float] = []
            covs: list[float] = []
            abst: list[float] = []
            deliv: list[float] = []
            corrupted = duplicated = 0
            for index, detector, record, donors in materials:
                cell = build_fault_cell(
                    name, float(severity), seed=1000 + index
                )
                environment = WIoTEnvironment(
                    detector,
                    channel=cell.channel,
                    quality_gate=SignalQualityIndex(
                        threshold=quality_threshold
                    ),
                )
                summary = environment.run(
                    record,
                    attack=ReplacementAttack(donors),
                    attack_after_s=config.test_duration_s / 2,
                    rng=np.random.default_rng([7, index]),
                    sensor_faults=cell.injector,
                )
                covs.append(summary.coverage)
                abst.append(summary.abstain_rate)
                deliv.append(summary.channel_delivery_rate)
                corrupted += summary.n_packets_corrupted
                duplicated += summary.n_packets_duplicated
                if summary.report is not None:
                    accs.append(summary.report.accuracy)
            rows.append(
                {
                    "fault": name,
                    "severity": float(severity),
                    "accuracy_on_decided": (
                        float(np.mean(accs)) if accs else float("nan")
                    ),
                    "coverage": float(np.mean(covs)),
                    "abstain_rate": float(np.mean(abst)),
                    "delivery_rate": float(np.mean(deliv)),
                    "n_packets_corrupted": int(corrupted),
                    "n_packets_duplicated": int(duplicated),
                }
            )
    return rows


def format_fault_matrix(rows: Sequence[dict[str, Any]]) -> str:
    """Render fault-matrix rows as an aligned text table."""
    header = (
        f"{'fault':<16} {'sev':>5} {'accuracy':>9} {'coverage':>9} "
        f"{'abstain':>8} {'deliver':>8}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        accuracy = row["accuracy_on_decided"]
        accuracy_text = "--" if np.isnan(accuracy) else f"{accuracy:.3f}"
        lines.append(
            f"{row['fault']:<16} {row['severity']:>5.2f} "
            f"{accuracy_text:>9} {row['coverage']:>9.3f} "
            f"{row['abstain_rate']:>8.3f} {row['delivery_rate']:>8.3f}"
        )
    return "\n".join(lines)


def artifact_load_study(
    config: ExperimentConfig,
    artifact_rates: Sequence[float] = (0.0, 2.0, 6.0, 12.0),
) -> list[dict[str, Any]]:
    """Sweep the per-minute motion-artifact rate of the *test* subjects.

    Models deteriorating wear conditions (loose electrodes, exercise):
    training happened under nominal conditions, evaluation under the swept
    rate, so the model faces a distribution shift.
    """
    dataset = make_dataset(config)
    rows = []
    for rate in artifact_rates:
        reports = []
        for index, subject in enumerate(dataset.subjects):
            detector = train_detector(dataset, subject, "simplified", config)
            noisy_subject = replace(
                subject,
                ecg_artifact_rate=float(rate),
                abp_artifact_rate=float(rate) / 2.0,
            )
            record = dataset.record(
                noisy_subject, config.test_duration_s, purpose="test"
            )
            if config.peak_source == "detected":
                record = record.redetect_peaks()
            others = [s for s in dataset.subjects if s is not subject]
            donors = [
                dataset.record(d, config.donor_duration_s, purpose="test")
                for d in others[: config.n_test_donors]
            ]
            scenario = AttackScenario(
                ReplacementAttack(donors),
                window_s=config.window_s,
                altered_fraction=config.altered_fraction,
            )
            stream = scenario.build(record, np.random.default_rng([11, index]))
            reports.append(detector.evaluate(stream))
        mean = mean_report(reports)
        rows.append(
            {
                "artifact_rate_per_min": float(rate),
                "accuracy": mean.accuracy,
                "fp_rate": mean.false_positive_rate,
                "fn_rate": mean.false_negative_rate,
            }
        )
    return rows


def debounce_study(
    config: ExperimentConfig,
    settings: Sequence[tuple[int, int]] = ((1, 1), (2, 3), (3, 4)),
) -> list[dict[str, Any]]:
    """Compare per-window alerting with k-of-n debounced episodes.

    The stream alternates genuine and attacked halves; window-level
    predictions are scored as usual, while episode openings inside the
    genuine half count as false episodes.
    """
    dataset = make_dataset(config)
    rows = []
    for votes_needed, vote_window in settings:
        window_reports = []
        false_episodes = []
        attacks_caught = []
        for index, subject in enumerate(dataset.subjects):
            detector = train_detector(dataset, subject, "simplified", config)
            stream = build_stream(dataset, subject, config)
            # Re-order into genuine-then-attacked halves for episode truth.
            genuine = [w for w in stream.windows if not w.altered]
            altered = [w for w in stream.windows if w.altered]
            streaming = StreamingDetector(
                detector, votes_needed=votes_needed, vote_window=vote_window
            )
            # Chunked batch scoring (bit-identical to the per-window loop);
            # flush=True closes an attack still in progress at end-of-stream.
            streaming.process_stream(genuine + altered, flush=True)

            boundary = len(genuine)
            false_episodes.append(
                sum(1 for e in streaming.episodes if e.start_index < boundary)
            )
            attacks_caught.append(
                any(e.end_index >= boundary for e in streaming.episodes)
            )
            predictions = np.array(
                [detector.classify_window(w) for w in genuine + altered]
            )
            labels = np.array([False] * len(genuine) + [True] * len(altered))
            window_reports.append(score_predictions(predictions, labels))
        mean = mean_report(window_reports)
        rows.append(
            {
                "votes_needed": votes_needed,
                "vote_window": vote_window,
                "window_accuracy": mean.accuracy,
                "false_episodes_per_run": float(np.mean(false_episodes)),
                "attack_catch_rate": float(np.mean(attacks_caught)),
            }
        )
    return rows
