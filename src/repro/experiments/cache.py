"""Content-keyed, budget-bounded caching of experiment intermediates.

Every experiment module re-derives the same intermediates over and over:
table2, table3, fig3 and the ablations all synthesize the same cohort
``Record`` objects and re-train identical per-(config, subject, version)
detectors.  Both derivations are *deterministic* -- records come from a
fresh RNG keyed on (dataset seed, subject, purpose) and training re-seeds
its RNGs from the config -- so caching them is purely an optimization:
cached and uncached runs produce bit-identical results, and so do runs
whose entries were evicted and re-derived.

Keys are content keys: every knob that influences the value is part of
the key (``ExperimentConfig`` is a frozen dataclass, hence hashable).
The cache is process-local; parallel :class:`~repro.experiments.runner.
CohortRunner` workers each maintain their own.

Residency is bounded: each entry is priced by :func:`entry_cost`
(records, streams and detectors expose ``nbytes``-style costs), and when
the resident total exceeds ``max_bytes`` the least-recently-used entries
are evicted.  Long ablation sweeps therefore hold a working set instead
of every record they ever synthesized.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Mapping

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "EXPERIMENT_CACHE",
    "ExperimentCache",
    "cache_disabled",
    "entry_cost",
    "set_cache_budget",
]

#: Default residency budget of the process-wide cache.  Large enough that
#: quick/test configurations never evict; a full 12-subject sweep (whose
#: synthesized records alone run to hundreds of megabytes) recycles its
#: least-recently-used entries instead of growing without bound.
DEFAULT_CACHE_BYTES = 128 * 1024 * 1024


def entry_cost(value: Any) -> int:
    """Approximate resident size of a cached value, in bytes.

    Uses the value's own ``nbytes`` when it has one (NumPy arrays,
    :class:`~repro.signals.dataset.Record`,
    :class:`~repro.attacks.scenario.LabeledStream`,
    :class:`~repro.core.detector.SIFTDetector`).  Containers (dict,
    list, tuple, set) are priced by *recursing* into their members and
    summing: a shallow ``sys.getsizeof`` would bill a dict of arrays at
    ~64 B regardless of the hundreds of megabytes it pins, so budget
    eviction would never fire for composite values.  Scalars and other
    leaves fall back to ``sys.getsizeof``.  Costs are budget heuristics,
    not exact heap accounting; every entry is billed at least one byte
    so unpriceable values still count toward the budget.
    """
    return max(1, _cost(value, set()))


def _cost(value: Any, seen: set[int]) -> int:
    """Recursive cost of one value; ``seen`` guards shared/cyclic refs.

    An object reachable twice is billed once -- it is resident once --
    and reference cycles terminate instead of recursing forever.
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        if id(value) in seen:
            return 0
        seen.add(id(value))
        return int(nbytes)
    if isinstance(value, (str, bytes, bytearray, memoryview)):
        # Sized leaves: getsizeof is exact enough, and iterating a str
        # yields strs (infinite recursion without this case).
        return int(sys.getsizeof(value))
    if isinstance(value, (Mapping, list, tuple, set, frozenset)):
        if id(value) in seen:
            return 0
        seen.add(id(value))
        total = int(sys.getsizeof(value))  # the container's own overhead
        items: Iterable[Any]
        if isinstance(value, Mapping):
            items = (member for pair in value.items() for member in pair)
        else:
            items = iter(value)
        for member in items:
            total += _cost(member, seen)
        return total
    return int(sys.getsizeof(value))


@dataclass
class ExperimentCache:
    """An LRU memo table with hit/miss/eviction accounting.

    ``max_bytes`` bounds the resident total of entry costs (``None`` =
    unbounded).  Entries are evicted least-recently-used first; a lookup
    hit refreshes recency.  An entry whose own cost exceeds the whole
    budget is created, returned, and immediately dropped -- it would
    otherwise pin the cache at over-budget residency.
    """

    enabled: bool = True
    max_bytes: int | None = DEFAULT_CACHE_BYTES
    _store: OrderedDict[Hashable, tuple[Any, int]] = field(
        default_factory=OrderedDict
    )
    _resident_bytes: int = 0
    _hits: int = 0
    _misses: int = 0
    _evictions: int = 0

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The cached value for ``key``, creating it via ``factory``."""
        if not self.enabled:
            return factory()
        try:
            value, _ = self._store[key]
        except KeyError:
            self._misses += 1
            value = factory()
            self._insert(key, value)
        else:
            self._hits += 1
            self._store.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any, cost: int | None = None) -> None:
        """Insert (or refresh) an entry, optionally at an explicit cost.

        The dataset plane seeds worker caches with records whose arrays
        are views into a shared-memory segment; billing those at
        :func:`entry_cost` (their apparent ``nbytes``) would charge every
        worker for memory that exists once machine-wide, so callers may
        override the cost.  Re-putting an existing key replaces its value
        and refreshes its LRU recency.  Disabled caches ignore puts.
        """
        if not self.enabled:
            return
        existing = self._store.pop(key, None)
        if existing is not None:
            self._resident_bytes -= existing[1]
        billed = entry_cost(value) if cost is None else max(1, int(cost))
        self._store[key] = (value, billed)
        self._resident_bytes += billed
        self._evict_over_budget()

    def _insert(self, key: Hashable, value: Any) -> None:
        self._store[key] = (value, cost := entry_cost(value))
        self._resident_bytes += cost
        self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        """Pop LRU entries until residency fits the budget."""
        if self.max_bytes is None:
            return
        while self._resident_bytes > self.max_bytes and self._store:
            _, (_, cost) = self._store.popitem(last=False)
            self._resident_bytes -= cost
            self._evictions += 1

    def clear(self) -> None:
        """Drop all cached values and reset the statistics counters.

        Counters reset too (via :meth:`reset_stats`): sweep drivers clear
        the cache between configurations, and carrying hit/miss counts
        across a clear made ``stats()`` report stale hit rates for the
        runs that followed.
        """
        self._store.clear()
        self._resident_bytes = 0
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters (cached values survive)."""
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def stats(self) -> dict[str, int]:
        """Hit/miss/size/eviction/residency counters, for diagnostics.

        ``resident_bytes`` is the summed :func:`entry_cost` of live
        entries; ``max_bytes`` echoes the configured budget (-1 when
        unbounded, so the mapping stays ``dict[str, int]``).
        """
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._store),
            "evictions": self._evictions,
            "resident_bytes": self._resident_bytes,
            "max_bytes": -1 if self.max_bytes is None else int(self.max_bytes),
        }


#: The process-wide cache the pipeline helpers consult.
EXPERIMENT_CACHE = ExperimentCache()


def set_cache_budget(max_bytes: int | None) -> int | None:
    """Set the process-wide cache budget; returns the previous budget.

    ``None`` removes the bound.  Shrinking the budget evicts immediately.
    :class:`~repro.experiments.runner.CohortRunner` calls this in every
    worker process so ``--cache-budget-mb`` governs each worker's local
    cache, not just the parent's.
    """
    previous = EXPERIMENT_CACHE.max_bytes
    EXPERIMENT_CACHE.max_bytes = max_bytes
    EXPERIMENT_CACHE._evict_over_budget()
    return previous


class cache_disabled:
    """Context manager: run a block with the experiment cache bypassed."""

    def __enter__(self) -> ExperimentCache:
        self._was_enabled = EXPERIMENT_CACHE.enabled
        EXPERIMENT_CACHE.enabled = False
        return EXPERIMENT_CACHE

    def __exit__(self, *exc_info) -> None:
        EXPERIMENT_CACHE.enabled = self._was_enabled
