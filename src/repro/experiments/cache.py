"""Content-keyed caching of experiment intermediates.

Every experiment module re-derives the same intermediates over and over:
table2, table3, fig3 and the ablations all synthesize the same cohort
``Record`` objects and re-train identical per-(config, subject, version)
detectors.  Both derivations are *deterministic* -- records come from a
fresh RNG keyed on (dataset seed, subject, purpose) and training re-seeds
its RNGs from the config -- so caching them is purely an optimization:
cached and uncached runs produce bit-identical results.

Keys are content keys: every knob that influences the value is part of
the key (``ExperimentConfig`` is a frozen dataclass, hence hashable).
The cache is process-local; parallel :class:`~repro.experiments.runner.
CohortRunner` workers each maintain their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

__all__ = ["EXPERIMENT_CACHE", "ExperimentCache", "cache_disabled"]


@dataclass
class ExperimentCache:
    """A dict-backed memo table with hit/miss accounting."""

    enabled: bool = True
    _store: dict[Hashable, Any] = field(default_factory=dict)
    _hits: int = 0
    _misses: int = 0

    def get_or_create(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """The cached value for ``key``, creating it via ``factory``."""
        if not self.enabled:
            return factory()
        try:
            value = self._store[key]
        except KeyError:
            self._misses += 1
            value = self._store[key] = factory()
        else:
            self._hits += 1
        return value

    def clear(self) -> None:
        """Drop all cached values (keeps the enabled flag and counters)."""
        self._store.clear()

    def stats(self) -> dict[str, int]:
        """Hit/miss/size counters, for tests and diagnostics."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._store),
        }


#: The process-wide cache the pipeline helpers consult.
EXPERIMENT_CACHE = ExperimentCache()


class cache_disabled:
    """Context manager: run a block with the experiment cache bypassed."""

    def __enter__(self) -> ExperimentCache:
        self._was_enabled = EXPERIMENT_CACHE.enabled
        EXPERIMENT_CACHE.enabled = False
        return EXPERIMENT_CACHE

    def __exit__(self, *exc_info) -> None:
        EXPERIMENT_CACHE.enabled = self._was_enabled
